"""Targeted tests for the fair-loss recovery machinery.

These drive the `ProposalRequest` / `Decided` / checkpoint paths through
surgically placed partitions rather than random loss, so each mechanism
is exercised deterministically.
"""

from repro.cluster.builder import build_cluster
from repro.net.addresses import replica_address

from tests.conftest import small_profile


def partitioned_run(
    system="idem",
    isolate=2,
    isolate_from=(0, 1),
    heal_at=0.6,
    duration=1.5,
    drain=2.0,
    clients=5,
    overrides=None,
):
    """Run with replica ``isolate`` cut off from peers until ``heal_at``."""
    cluster = build_cluster(
        system,
        clients,
        seed=3,
        profile=small_profile(),
        overrides=overrides or {},
        stop_time=duration,
    )
    target = replica_address(isolate)
    for peer in isolate_from:
        cluster.network.partition(target, replica_address(peer))
    cluster.loop.call_at(
        heal_at,
        lambda: [
            cluster.network.heal(target, replica_address(peer))
            for peer in isolate_from
        ],
    )
    cluster.run_until(duration)
    cluster.stop_clients()
    cluster.run_until(duration + drain)
    return cluster


class TestDecidedCatchUp:
    def test_short_isolation_recovers_without_state_transfer(self):
        """A briefly isolated replica catches up through Decided batches
        (its gap stays inside the implicit-GC window of r_max instances)."""
        cluster = partitioned_run(heal_at=0.1, duration=1.0, clients=3)
        lagger = cluster.replicas[2]
        reference = cluster.replicas[0]
        assert lagger.exec_sqn == reference.exec_sqn
        assert lagger.app.digest() == reference.app.digest()
        assert lagger.stats["state_transfers"] == 0

    def test_long_isolation_needs_a_checkpoint(self):
        """A long gap exceeds the implicit-GC horizon: only a checkpoint
        can bridge it."""
        cluster = partitioned_run(
            heal_at=1.2,
            duration=1.6,
            clients=10,
            overrides={"reject_threshold": 10, "checkpoint_interval": 64},
        )
        lagger = cluster.replicas[2]
        reference = cluster.replicas[0]
        assert lagger.stats["state_transfers"] >= 1
        assert lagger.exec_sqn == reference.exec_sqn
        assert lagger.app.digest() == reference.app.digest()

    def test_catching_up_does_not_force_view_changes(self):
        """The lag probe lets a healthy group stay in its view."""
        cluster = partitioned_run(heal_at=0.1, duration=1.0, clients=3)
        assert all(replica.view == 0 for replica in cluster.replicas)


class TestIsolatedLeader:
    def test_group_abandons_an_unreachable_leader(self):
        """Isolating the leader is indistinguishable from a crash to the
        rest of the group: they elect a new view and move on."""
        cluster = partitioned_run(
            isolate=0,
            isolate_from=(1, 2),
            heal_at=2.5,
            duration=3.0,
            drain=2.0,
            overrides={"view_change_timeout": 0.4},
        )
        followers = [cluster.replicas[1], cluster.replicas[2]]
        assert all(replica.view >= 1 for replica in followers)
        # After healing, the old leader rejoins the group's view and state.
        old_leader = cluster.replicas[0]
        assert old_leader.view == followers[0].view
        assert old_leader.app.digest() == followers[0].app.digest()


class TestPaxosRecovery:
    def test_follower_isolation_recovers(self):
        cluster = partitioned_run(system="paxos", heal_at=0.35, duration=1.0)
        lagger = cluster.replicas[2]
        assert lagger.exec_sqn == cluster.replicas[0].exec_sqn
        assert lagger.app.digest() == cluster.replicas[0].app.digest()

    def test_bftsmart_follower_isolation_recovers(self):
        cluster = partitioned_run(system="bftsmart", heal_at=0.35, duration=1.0)
        lagger = cluster.replicas[2]
        assert lagger.exec_sqn == cluster.replicas[0].exec_sqn
        assert lagger.app.digest() == cluster.replicas[0].app.digest()

"""Tests for ``repro.resilience``: retry/hedge policies, their client
integration, and the campaign cache garbage collector that rode along
in the same change.

The acceptance properties:

* policy decision logic is pure and deterministic (caps checked in a
  fixed order, jitter drawn only from the policy's own stream);
* the default ``none`` policy is inert: its knobs change nothing, and
  retrying policies draw from a new ``client.{cid}.resilience`` stream
  that the default never creates;
* enabled retries/hedges keep runs seed-deterministic, safety-clean and
  observer-pure (identical results with tracing on and off);
* ``collect_garbage`` only removes cache entries no kept run manifest
  references, with conservative fallbacks when manifests are missing.
"""

import os
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.campaign import ResultCache, collect_garbage, record_run, result_fingerprint
from repro.campaign.plan import sim_job
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec, run_experiment
from repro.protocols.config import ProtocolConfig
from repro.resilience import (
    ABANDON,
    RETRY,
    ExponentialBackoffPolicy,
    NoRetryPolicy,
    TokenBucket,
    make_retry_policy,
)
from repro.sim.rng import RngRegistry


def make_policy(cid: int = 3, seed: int = 7, **config_overrides):
    """A policy plus the registry it draws from."""
    config = ProtocolConfig(**config_overrides)
    rng = RngRegistry(seed)
    timing = rng.stream(f"client.{cid}.timing")
    return make_retry_policy(config, cid, rng, timing), rng


class TestRetryPolicyUnits:
    def test_none_policy_always_abandons(self):
        policy, _ = make_policy(retry_policy="none")
        assert isinstance(policy, NoRetryPolicy)
        decision = policy.next_action("timeout", 1, 0.1, 0.1)
        assert decision.kind == ABANDON and decision.reason == "no-retry"

    def test_none_policy_reject_backoff_comes_from_timing_stream(self):
        """The abandon backoff is the client's historical 50-100 ms
        draw, taken from the *timing* stream (byte-identity contract)."""
        policy, _ = make_policy(retry_policy="none")
        shadow = RngRegistry(7).stream("client.3.timing")
        config = ProtocolConfig()
        for _ in range(5):
            expected = shadow.uniform(
                config.reject_backoff_min, config.reject_backoff_max
            )
            assert policy.next_action("reject", 1, 0.0, 0.0).delay == expected

    def test_none_policy_timeout_delay_is_think_time(self):
        policy, _ = make_policy(retry_policy="none", think_time=0.25)
        assert policy.next_action("timeout", 1, 0.0, 0.0).delay == 0.25

    def test_none_policy_does_not_create_resilience_stream(self):
        _, rng = make_policy(retry_policy="none")
        assert "client.3.resilience" not in rng

    def test_retrying_policy_creates_resilience_stream(self):
        _, rng = make_policy(retry_policy="exponential")
        assert "client.3.resilience" in rng

    def test_immediate_retries_until_max_attempts(self):
        policy, _ = make_policy(retry_policy="immediate", retry_max_attempts=3)
        for attempt in (1, 2):
            decision = policy.next_action("timeout", attempt, 0.0, 0.0)
            assert decision.kind == RETRY and decision.delay == 0.0
        final = policy.next_action("timeout", 3, 0.0, 0.0)
        assert final.kind == ABANDON and final.reason == "max-attempts"

    def test_fixed_delay_is_base_delay(self):
        policy, _ = make_policy(retry_policy="fixed", retry_base_delay=0.03)
        assert policy.next_action("timeout", 1, 0.0, 0.0).delay == 0.03

    def test_cap_order_attempts_before_deadline_before_budget(self):
        """When several caps bind at once the reason is deterministic."""
        policy, _ = make_policy(
            retry_policy="immediate",
            retry_max_attempts=2,
            request_deadline=0.1,
            retry_budget_rate=0.001,
            retry_budget_cap=1.0,
        )
        policy.budget.tokens = 0.0
        assert policy.next_action("timeout", 2, 0.5, 0.5).reason == "max-attempts"
        assert policy.next_action("timeout", 1, 0.5, 0.5).reason == "deadline"
        assert policy.next_action("timeout", 1, 0.0, 0.0).reason == "budget"

    def test_retry_on_timeout_ignores_rejects_without_spending_budget(self):
        policy, _ = make_policy(
            retry_policy="immediate",
            retry_on="timeout",
            retry_budget_rate=0.001,
            retry_budget_cap=1.0,
        )
        before = policy.budget.tokens
        decision = policy.next_action("reject", 1, 0.0, 0.0)
        assert decision.kind == ABANDON and decision.reason == "no-retry"
        assert policy.budget.tokens == before
        assert policy.next_action("timeout", 1, 0.0, 0.0).kind == RETRY

    def test_retry_on_reject_ignores_timeouts(self):
        policy, _ = make_policy(retry_policy="immediate", retry_on="reject")
        assert policy.next_action("timeout", 1, 0.0, 0.0).reason == "no-retry"
        assert policy.next_action("reject", 1, 0.0, 0.0).kind == RETRY

    def test_exponential_no_jitter_doubles_and_caps(self):
        policy, _ = make_policy(
            retry_policy="exponential",
            retry_jitter="none",
            retry_base_delay=0.01,
            retry_max_delay=0.05,
            retry_max_attempts=10,
        )
        delays = [
            policy.next_action("timeout", attempt, 0.0, 0.0).delay
            for attempt in (1, 2, 3, 4)
        ]
        assert delays == [0.01, 0.02, 0.04, 0.05]

    def test_exponential_full_jitter_within_raw_envelope(self):
        policy, _ = make_policy(
            retry_policy="exponential",
            retry_jitter="full",
            retry_base_delay=0.01,
            retry_max_delay=0.05,
            retry_max_attempts=10,
        )
        for attempt in range(1, 6):
            raw = min(0.05, 0.01 * 2 ** (attempt - 1))
            delay = policy.next_action("timeout", attempt, 0.0, 0.0).delay
            assert 0.0 <= delay <= raw

    def test_decorrelated_jitter_resets_on_operation_start(self):
        policy, _ = make_policy(
            retry_policy="exponential",
            retry_jitter="decorrelated",
            retry_base_delay=0.01,
            retry_max_delay=0.5,
            retry_max_attempts=10,
        )
        assert isinstance(policy, ExponentialBackoffPolicy)
        previous = 0.01
        for attempt in range(1, 5):
            delay = policy.next_action("timeout", attempt, 0.0, 0.0).delay
            assert 0.01 <= delay <= min(0.5, 3.0 * previous) + 1e-12
            previous = delay
        policy.on_operation_start(1.0)
        assert policy._previous == 0.01


class TestTokenBucket:
    def test_spend_down_then_refill(self):
        bucket = TokenBucket(rate=2.0, cap=2.0)
        assert bucket.try_spend(0.0) and bucket.try_spend(0.0)
        assert not bucket.try_spend(0.0)
        assert bucket.try_spend(0.5)  # 0.5 s * 2/s = 1 token back
        assert not bucket.try_spend(0.5)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=10.0, cap=3.0)
        assert bucket.try_spend(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, cap=5.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, cap=0.5)


class TestConfigValidation:
    def test_unknown_retry_policy_rejected(self):
        with pytest.raises(ValueError, match="retry_policy"):
            ProtocolConfig(retry_policy="always")

    def test_unknown_retry_on_rejected(self):
        with pytest.raises(ValueError, match="retry_on"):
            ProtocolConfig(retry_on="rejection")

    def test_unknown_jitter_rejected(self):
        with pytest.raises(ValueError, match="retry_jitter"):
            ProtocolConfig(retry_jitter="equal")


def heavy_profile() -> ClusterProfile:
    """Execution so slow that ten closed-loop clients saturate it."""
    return replace(ClusterProfile(), execution_cost=2e-3)


def timeout_retry_spec(seed: int = 3, **extra) -> RunSpec:
    overrides = {
        "request_timeout": 0.01,
        "retransmit_interval": 30.0,
        "retry_policy": "exponential",
        "retry_on": "timeout",
        "retry_max_attempts": 3,
        "retry_base_delay": 0.005,
        "retry_max_delay": 0.02,
    }
    overrides.update(extra.pop("overrides", {}))
    return RunSpec(
        system="paxos", clients=10, duration=0.8, warmup=0.2, seed=seed,
        profile=heavy_profile(), overrides=overrides, **extra,
    )


class TestClientIntegration:
    def test_timeout_retries_amplify_load(self):
        result = run_experiment(timeout_retry_spec())
        stats = result.client_stats
        assert stats["retries"] > 0
        assert stats["give_ups"] > 0
        assert stats["sends"] > stats["commands"]
        assert stats["load_amplification"] > 1.0

    def test_reject_retries_are_safe_under_dedup(self):
        """Retries re-issue the same command under a new rid; the
        protocols' dedup must keep the log linearizable regardless."""
        result = run_experiment(
            RunSpec(
                system="idem", clients=12, duration=0.8, warmup=0.2, seed=3,
                overrides={
                    "reject_threshold": 2,
                    "retry_policy": "immediate",
                    "retry_on": "reject",
                    "retry_max_attempts": 4,
                },
                safety=True,
            )
        )
        assert result.client_stats["retries"] > 0
        assert result.safety_violations == []

    def test_hedges_fire_and_duplicates_are_suppressed(self):
        result = run_experiment(
            RunSpec(
                system="paxos", clients=6, duration=0.8, warmup=0.2, seed=3,
                overrides={"hedge_delay": 0.0008},
                safety=True,
            )
        )
        stats = result.client_stats
        assert stats["hedges"] > 0
        assert stats["successes"] > 0
        assert result.safety_violations == []

    def test_retry_runs_are_seed_deterministic(self):
        a = run_experiment(timeout_retry_spec())
        b = run_experiment(timeout_retry_spec())
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_none_policy_ignores_retry_knobs(self):
        """With the default policy, every retry knob is inert: results
        are byte-identical whatever values the knobs hold."""
        plain = run_experiment(timeout_retry_spec(overrides={"retry_policy": "none"}))
        knobs = run_experiment(
            timeout_retry_spec(
                overrides={
                    "retry_policy": "none",
                    "retry_max_attempts": 9,
                    "retry_base_delay": 0.5,
                    "retry_budget_rate": 3.0,
                }
            )
        )
        assert result_fingerprint(plain) == result_fingerprint(knobs)

    def test_observer_purity_with_retries_and_hedging(self):
        """Tracing must not perturb a run even when the policy layer is
        busy (retry/hedge/give-up events flow through the observer)."""
        spec = timeout_retry_spec(overrides={"hedge_delay": 0.008})
        plain = run_experiment(spec)
        traced = run_experiment(replace(spec, observe=True))
        assert traced.obs is not None
        for name in ("throughput", "latency", "timeouts"):
            assert getattr(plain, name) == getattr(traced, name), name
        assert plain.traffic == traced.traffic
        assert plain.replica_stats == traced.replica_stats
        assert plain.client_stats == traced.client_stats


def _run_retry_slice_with_hash_seed(hash_seed: str) -> str:
    """Fingerprint a retry-heavy run in a subprocess with PYTHONHASHSEED."""
    code = (
        "from dataclasses import replace\n"
        "from repro.campaign import result_fingerprint\n"
        "from repro.cluster.profile import ClusterProfile\n"
        "from repro.cluster.runner import RunSpec, run_experiment\n"
        "spec = RunSpec(\n"
        "    system='paxos', clients=10, duration=0.8, warmup=0.2, seed=3,\n"
        "    profile=replace(ClusterProfile(), execution_cost=2e-3),\n"
        "    overrides={'request_timeout': 0.01, 'retransmit_interval': 30.0,\n"
        "               'retry_policy': 'exponential', 'retry_on': 'timeout',\n"
        "               'retry_max_attempts': 3, 'retry_base_delay': 0.005,\n"
        "               'retry_max_delay': 0.02, 'hedge_delay': 0.008})\n"
        "print(result_fingerprint(run_experiment(spec)))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", code],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_retry_slice_identical_across_hash_seeds():
    """Hash randomization must not leak into the resilience layer."""
    assert _run_retry_slice_with_hash_seed("1") == _run_retry_slice_with_hash_seed(
        "4242"
    )


@pytest.fixture(scope="module")
def gc_result():
    """One tiny real result to populate cache entries with."""
    return run_experiment(
        RunSpec(system="idem", clients=2, duration=0.3, warmup=0.1, seed=0)
    )


def _fill_cache(tmp_path, result, seeds):
    """Store one entry per seed; returns the cache and the keys."""
    cache = ResultCache(tmp_path)
    keys = []
    for seed in seeds:
        job = sim_job(
            "gc-test",
            RunSpec(system="idem", clients=2, duration=0.3, warmup=0.1, seed=seed),
        )
        cache.store(job.key, result, job)
        keys.append(job.key)
    return cache, keys


class TestGarbageCollection:
    def test_record_run_writes_sorted_manifest(self, tmp_path, gc_result):
        cache, keys = _fill_cache(tmp_path, gc_result, range(3))
        path = record_run(cache.root, reversed(keys), started=1000.0)
        assert path.parent.name == "runs"
        import json

        manifest = json.loads(path.read_text())
        assert manifest["keys"] == sorted(keys)

    def test_unreferenced_entries_are_removed(self, tmp_path, gc_result):
        cache, keys = _fill_cache(tmp_path, gc_result, range(4))
        record_run(cache.root, keys[:2], started=1000.0)
        report = collect_garbage(cache, keep_runs=5)
        assert report.examined == 4
        assert report.kept == 2 and report.removed == 2
        assert report.reclaimed_bytes > 0
        assert not report.references_unknown
        entries, _ = cache.size()
        assert entries == 2

    def test_no_manifests_means_no_reference_pruning(self, tmp_path, gc_result):
        cache, _ = _fill_cache(tmp_path, gc_result, range(3))
        report = collect_garbage(cache, keep_runs=5)
        assert report.removed == 0 and report.kept == 3
        assert report.references_unknown

    def test_unreadable_kept_manifest_disables_pruning(self, tmp_path, gc_result):
        cache, keys = _fill_cache(tmp_path, gc_result, range(3))
        path = record_run(cache.root, keys[:1], started=1000.0)
        path.write_text("{not json")
        report = collect_garbage(cache, keep_runs=5)
        assert report.removed == 0
        assert report.references_unknown

    def test_manifests_beyond_keep_window_are_pruned(self, tmp_path, gc_result):
        cache, keys = _fill_cache(tmp_path, gc_result, range(2))
        for start in (1000.0, 2000.0, 3000.0):
            record_run(cache.root, keys, started=start)
        report = collect_garbage(cache, keep_runs=2)
        assert report.manifests_kept == 2 and report.manifests_removed == 1
        assert report.removed == 0  # all entries still referenced

    def test_age_cutoff_removes_regardless_of_references(
        self, tmp_path, gc_result
    ):
        cache, keys = _fill_cache(tmp_path, gc_result, range(2))
        record_run(cache.root, keys, started=1000.0)
        future = 10 * 86400.0
        for path in cache.root.glob("*/*.pkl"):
            os.utime(path, (1.0, 1.0))
        report = collect_garbage(cache, keep_runs=5, max_age_days=1.0, now=future)
        assert report.removed == 2

    def test_keep_runs_must_be_positive(self, tmp_path, gc_result):
        cache, _ = _fill_cache(tmp_path, gc_result, range(1))
        with pytest.raises(ValueError):
            collect_garbage(cache, keep_runs=0)

    def test_report_renders_counts(self, tmp_path, gc_result):
        cache, keys = _fill_cache(tmp_path, gc_result, range(2))
        record_run(cache.root, keys, started=1000.0)
        text = collect_garbage(cache, keep_runs=5).render()
        assert "kept 2, removed 0" in text

"""Tests for the fault-plan DSL, crash recovery, and the chaos runner."""

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.chaos import (
    ChaosOptions,
    SafetyChecker,
    generate_plan,
    run_chaos,
)
from repro.cluster.faults import (
    CrashFault,
    FaultSchedule,
    HealFault,
    LatencySpike,
    LossWindow,
    PartitionFault,
    RecoverFault,
    SlowReplica,
    resolve_target,
)
from repro.net.addresses import replica_address
from repro.net.latency import ConstantLatency
from repro.net.network import Network, NetworkNode
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry

from tests.conftest import small_profile


class TestFaultTargeting:
    """Regression tests for crash-target resolution edge cases."""

    def test_out_of_range_index_is_ignored(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        assert resolve_target(cluster, 99) is None
        assert resolve_target(cluster, -1) is None

    def test_out_of_range_crash_fault_fires_without_error(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        FaultSchedule().crash_replica(0.01, 99).install(cluster)
        cluster.run_until(0.05)  # must not raise
        assert all(not replica.halted for replica in cluster.replicas)

    def test_leader_target_with_all_replicas_down(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        for index in range(len(cluster.replicas)):
            cluster.crash_replica(index)
        assert resolve_target(cluster, "leader") is None
        assert resolve_target(cluster, "follower") is None

    def test_crashing_an_already_halted_index_is_a_noop(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        cluster.crash_replica(1)
        assert resolve_target(cluster, 1) is None
        FaultSchedule().crash_replica(0.01, 1).install(cluster)
        cluster.run_until(0.05)  # must not raise
        assert sum(replica.halted for replica in cluster.replicas) == 1

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            CrashFault(-1.0, "leader")
        with pytest.raises(ValueError):
            CrashFault(1.0, "bystander")
        with pytest.raises(ValueError):
            LossWindow(1.0, 0.5, 1.0)
        with pytest.raises(ValueError):
            SlowReplica(1.0, 0, 0.5, 1.0)
        with pytest.raises(ValueError):
            LatencySpike(1.0, 0, 3.0, -0.1)

    def test_schedule_chaining_and_describe(self):
        schedule = (
            FaultSchedule()
            .crash_leader(1.0)
            .recover_replica(2.0)
            .partition_replicas(3.0, 0, 1)
            .heal_replicas(4.0, 0, 1)
            .loss_window(5.0, 0.5, 0.1)
            .slow_replica(6.0, 1, 2.0, 0.5)
            .latency_spike(7.0, 2, 4.0, 0.5)
        )
        assert len(schedule.faults) == 7
        described = schedule.describe()
        assert described[0].startswith("t=1.000 CrashFault")
        assert described == sorted(described, key=lambda s: float(s[2:7]))


class _Sink(NetworkNode):
    def __init__(self, address):
        self.address = address
        self.received = []

    def deliver(self, src, message):
        self.received.append((src, message))


class _Probe:
    """Minimal message with the Network's expected interface."""

    def type_name(self):
        return "probe"

    def size_bytes(self):
        return 100


class TestDetachPurgesState:
    def _network(self, egress=None):
        loop = EventLoop()
        return loop, Network(
            loop,
            RngRegistry(0),
            latency_model=ConstantLatency(0.001),
            egress_bandwidth=egress,
        )

    def test_detach_clears_crash_marking(self):
        loop, network = self._network()
        a = replica_address(0)
        network.attach(_Sink(a))
        network.crash(a)
        network.detach(a)
        assert not network.is_crashed(a)

    def test_detach_clears_partitions_and_egress(self):
        loop, network = self._network(egress=1000.0)
        a, b = replica_address(0), replica_address(1)
        network.attach(_Sink(a))
        network.attach(_Sink(b))
        network.send(a, b, _Probe())  # queues serialisation backlog on a
        assert network.egress_backlog(a) > 0
        network.partition(a, b)
        network.detach(a)
        assert network.egress_backlog(a) == 0.0
        # Re-attach under the same address: the partition must be gone.
        fresh = _Sink(a)
        network.attach(fresh)
        sink_b = network.node(b)
        network.send(a, b, _Probe())
        loop.run_until(1.0)
        # Both the in-flight and the fresh message deliver: detach purged
        # the partition, so neither is dropped at delivery time.
        assert len(sink_b.received) == 2

    def test_detach_clears_latency_scale(self):
        _, network = self._network()
        a = replica_address(0)
        network.attach(_Sink(a))
        network.set_latency_scale(a, 5.0)
        network.detach(a)
        assert network.latency_scale(a) == 1.0


class TestPartitionHealDelivery:
    def test_message_in_flight_across_a_heal_is_delivered(self):
        loop = EventLoop()
        network = Network(loop, RngRegistry(0), latency_model=ConstantLatency(0.010))
        a, b = replica_address(0), replica_address(1)
        sink = _Sink(b)
        network.attach(_Sink(a))
        network.attach(sink)
        network.send(a, b, _Probe())  # arrives at t=10 ms
        loop.run_until(0.002)
        network.partition(a, b)  # partition forms mid-flight...
        loop.run_until(0.005)
        network.heal(a, b)  # ...and heals before delivery
        loop.run_until(0.020)
        assert len(sink.received) == 1

    def test_message_in_flight_into_an_unhealed_partition_is_dropped(self):
        loop = EventLoop()
        network = Network(loop, RngRegistry(0), latency_model=ConstantLatency(0.010))
        a, b = replica_address(0), replica_address(1)
        sink = _Sink(b)
        network.attach(_Sink(a))
        network.attach(sink)
        network.send(a, b, _Probe())
        loop.run_until(0.002)
        network.partition(a, b)
        loop.run_until(0.020)
        assert sink.received == []
        assert network.dropped_messages == 1


class TestRecovery:
    def test_recovered_replica_catches_up(self):
        cluster = build_cluster(
            "idem", 4, seed=1, profile=small_profile(), stop_time=2.0
        )
        cluster.run_until(0.8)
        cluster.crash_replica(1)
        cluster.run_until(1.5)
        recovered = cluster.recover_replica(1)
        assert recovered.incarnation == 1
        assert not cluster.network.is_crashed(recovered.address)
        cluster.run_until(2.0)
        cluster.stop_clients()
        cluster.run_until(3.0)
        positions = [replica.exec_sqn for replica in cluster.replicas]
        lag = max(positions) - min(positions)
        assert lag <= cluster.replicas[0]._lag_threshold()
        digests = {replica.app.digest() for replica in cluster.replicas}
        assert len(digests) == 1
        assert recovered.stats["state_transfers"] >= 1

    def test_recovering_a_live_replica_is_a_noop(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        replica = cluster.replicas[2]
        assert cluster.recover_replica(2) is replica
        assert cluster.recoveries == 0

    def test_recover_fault_without_target_recovers_all_crashed(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        cluster.crash_replica(1)
        RecoverFault(0.0, None).fire(cluster)
        assert not cluster.replicas[1].halted
        assert cluster.recoveries == 1

    def test_scheduled_crash_recover_cycle(self):
        cluster = build_cluster(
            "paxos", 3, seed=2, profile=small_profile(), stop_time=2.5
        )
        schedule = FaultSchedule().crash_leader(0.8).recover_replica(1.6)
        schedule.install(cluster)
        cluster.run_until(2.5)
        cluster.stop_clients()
        cluster.run_until(4.0)
        assert all(not replica.halted for replica in cluster.replicas)
        assert cluster.recoveries == 1
        digests = {replica.app.digest() for replica in cluster.replicas}
        assert len(digests) == 1


class TestGrayFailures:
    def test_slow_replica_degrades_and_restores_speed(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        SlowReplica(0.0, 1, 4.0, 0.5).fire(cluster)
        assert cluster.replicas[1].processor.speed == pytest.approx(0.25)
        cluster.run_until(0.6)
        assert cluster.replicas[1].processor.speed == pytest.approx(1.0)

    def test_latency_spike_sets_and_clears_scale(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        address = cluster.replicas[2].address
        LatencySpike(0.0, 2, 6.0, 0.5).fire(cluster)
        assert cluster.network.latency_scale(address) == pytest.approx(6.0)
        cluster.run_until(0.6)
        assert cluster.network.latency_scale(address) == 1.0

    def test_loss_window_restores_base_probability(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        base = cluster.network.loss_probability
        LossWindow(0.0, 0.5, 0.2).fire(cluster)
        assert cluster.network.loss_probability == pytest.approx(0.2)
        cluster.run_until(0.6)
        assert cluster.network.loss_probability == pytest.approx(base)

    def test_gray_faults_on_crashed_or_invalid_targets_are_noops(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        cluster.crash_replica(0)
        SlowReplica(0.0, 0, 4.0, 0.5).fire(cluster)  # halted target
        SlowReplica(0.0, 99, 4.0, 0.5).fire(cluster)  # out of range
        LatencySpike(0.0, 99, 4.0, 0.5).fire(cluster)
        assert cluster.replicas[0].processor.speed == pytest.approx(1.0)


class TestSafetyChecker:
    class _FakeReplica:
        def __init__(self, index, incarnation=0):
            self.index = index
            self.incarnation = incarnation

    def test_detects_divergent_batches(self):
        checker = SafetyChecker()
        a, b = self._FakeReplica(0), self._FakeReplica(1)
        checker._note_execution(a, 1, (1, 1))
        checker._note_execution(b, 1, (2, 1))
        checker._check_agreement()
        assert any("agreement" in v for v in checker.violations)

    def test_detects_double_execution_on_one_incarnation(self):
        checker = SafetyChecker()
        a = self._FakeReplica(0)
        checker._note_execution(a, 1, (1, 1))
        checker._note_execution(a, 2, (1, 1))
        assert any("at-most-once" in v for v in checker.violations)

    def test_fresh_incarnation_may_reexecute(self):
        checker = SafetyChecker()
        old = self._FakeReplica(0, incarnation=0)
        new = self._FakeReplica(0, incarnation=1)
        checker._note_execution(old, 1, (1, 1))
        checker._note_execution(new, 1, (1, 1))
        checker._check_agreement()
        assert checker.violations == []

    def test_detects_rid_under_two_sqns(self):
        checker = SafetyChecker()
        a, b = self._FakeReplica(0), self._FakeReplica(1)
        checker._note_execution(a, 1, (1, 1))
        checker._note_execution(b, 2, (1, 1))
        assert any("sqn 1 and sqn 2" in v for v in checker.violations)

    def test_detects_out_of_order_execution(self):
        checker = SafetyChecker()
        a = self._FakeReplica(0)
        checker._note_execution(a, 5, (1, 1))
        checker._note_execution(a, 3, (2, 1))
        assert any("order" in v for v in checker.violations)

    def test_detects_unbacked_client_reply(self):
        class _FakeClient:
            reply_log = [(9, 9)]

        checker = SafetyChecker()
        checker._clients = [_FakeClient()]
        checker._check_replies()
        assert any("reply validity" in v for v in checker.violations)


class TestChaosRunner:
    def test_plan_generation_is_deterministic_and_self_healing(self):
        plan_a = generate_plan(5, 12.0, 3)
        plan_b = generate_plan(5, 12.0, 3)
        assert plan_a.describe() == plan_b.describe()
        crashes = sum(isinstance(f, CrashFault) for f in plan_a.faults)
        recovers = sum(isinstance(f, RecoverFault) for f in plan_a.faults)
        partitions = sum(isinstance(f, PartitionFault) for f in plan_a.faults)
        heals = sum(isinstance(f, HealFault) for f in plan_a.faults)
        assert crashes == recovers
        assert partitions == heals
        # Nothing fires in the settle tail.
        horizon = 12.0 - 3.0
        assert all(fault.time <= horizon for fault in plan_a.faults)

    def test_chaos_run_is_deterministic(self):
        options = ChaosOptions(system="idem", clients=4, duration=6.0, seed=11)
        first = run_chaos(options).summary()
        second = run_chaos(options).summary()
        assert first == second

    def test_chaos_run_holds_invariants_and_recovers(self):
        # Seed chosen so the plan includes a crash + recovery.
        report = run_chaos(
            ChaosOptions(system="idem", clients=5, duration=8.0, seed=3)
        )
        assert report.ok, report.violations
        assert report.recoveries >= 1
        assert report.executions > 0
        assert len(set(report.app_digests)) == 1
        assert "safety: OK (0 violations)" in report.summary()

    def test_options_validation(self):
        with pytest.raises(ValueError):
            ChaosOptions(duration=2.0, warmup=1.0, settle=3.0)

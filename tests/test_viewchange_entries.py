"""View-change payloads: what each protocol carries through a view change."""

from repro.app.commands import Command, KvOp
from repro.app.kvstore import KeyValueStore
from repro.core.config import IdemConfig
from repro.core.replica import IdemReplica
from repro.net.addresses import client_address, replica_address
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.protocols.base import Instance
from repro.protocols.config import ProtocolConfig
from repro.protocols.bftsmart.replica import BftSmartReplica
from repro.protocols.messages import Request
from repro.protocols.paxos.config import PaxosConfig
from repro.protocols.paxos.replica import PaxosReplica
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry


def build(replica_class, config):
    loop = EventLoop()
    rng = RngRegistry(3)
    network = Network(loop, rng, latency_model=ConstantLatency(1e-5))
    replica = replica_class(0, loop, network, config, KeyValueStore(), rng)
    network.attach(replica)
    return replica


def instance_with_bodies(sqn=1):
    request = Request((0, 1), Command(KvOp.UPDATE, "k", 10))
    instance = Instance(sqn, 0, ((0, 1),))
    instance.bodies = {(0, 1): request}
    return instance, request


def test_idem_entries_carry_ids_only():
    replica = build(IdemReplica, IdemConfig(cpu_jitter_sigma=0.0))
    instance, _ = instance_with_bodies()
    entry = replica._make_window_entry(instance)
    assert entry.rids == ((0, 1),)
    assert entry.requests is None


def test_paxos_entries_carry_full_requests():
    replica = build(PaxosReplica, PaxosConfig(cpu_jitter_sigma=0.0))
    instance, request = instance_with_bodies()
    entry = replica._make_window_entry(instance)
    assert entry.requests == (request,)
    # Installing such an entry restores the bodies.
    replica._install_entry(entry, view=1)
    assert replica.instances[1].bodies == {(0, 1): request}


def test_bftsmart_entries_carry_full_requests():
    replica = build(BftSmartReplica, ProtocolConfig(cpu_jitter_sigma=0.0))
    instance, request = instance_with_bodies()
    entry = replica._make_window_entry(instance)
    assert entry.requests == (request,)


def test_install_entry_never_replaces_executed_instances():
    replica = build(IdemReplica, IdemConfig(cpu_jitter_sigma=0.0))
    instance, _ = instance_with_bodies()
    instance.executed = True
    replica.instances[1] = instance
    entry = replica._make_window_entry(instance)
    replica._install_entry(entry, view=2)
    assert replica.instances[1] is instance  # untouched


def test_install_entry_advances_next_sqn():
    replica = build(IdemReplica, IdemConfig(cpu_jitter_sigma=0.0))
    instance, _ = instance_with_bodies(sqn=7)
    entry = replica._make_window_entry(instance)
    replica._install_entry(entry, view=1)
    assert replica.next_sqn == 8

"""repro.population: the aggregate million-client workload backend.

Covers the :class:`PopulationSpec` contract, the campaign payload
round-trip, the aggregate node's three operating modes, determinism
(including PYTHONHASHSEED invariance of the fabricated rid/cid
streams), the events-per-request cost claim, and — most importantly —
the closed-loop equivalence gate: the aggregate backend must reproduce
the per-object clients' throughput and latency tail at small N before
anyone trusts it at N = 1,000,000 (see ``docs/WORKLOADS.md``).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
from types import SimpleNamespace

import pytest

from repro.campaign.plan import (
    payload_to_population,
    payload_to_spec,
    population_to_payload,
    spec_to_payload,
)
from repro.cluster.runner import RunSpec, run_experiment
from repro.population import (
    POPULATION_PROCESSES,
    REJECT_REENTRY_MODES,
    PopulationSpec,
)
from repro.population.validate import (
    P99_TOLERANCE,
    THROUGHPUT_TOLERANCE,
    validate_population,
)
from repro.workload.open_loop import ArrivalSpec


def population_run(
    system="idem",
    clients=100,
    think_time=0.0,
    duration=0.3,
    warmup=0.1,
    seed=3,
    **kwargs,
):
    population = kwargs.pop(
        "population", PopulationSpec(think_time=think_time)
    )
    spec = RunSpec(
        system=system,
        clients=clients,
        duration=duration,
        warmup=warmup,
        seed=seed,
        population=population,
        **kwargs,
    )
    return run_experiment(spec)


# -- the spec ----------------------------------------------------------


class TestPopulationSpec:
    def test_defaults(self):
        spec = PopulationSpec()
        assert spec.think_time is None
        assert spec.process == "poisson"
        assert spec.reject_reentry == "backoff"
        assert spec.process in POPULATION_PROCESSES
        assert spec.reject_reentry in REJECT_REENTRY_MODES

    def test_rejects_unknown_process(self):
        with pytest.raises(ValueError, match="population process"):
            PopulationSpec(process="fractal")

    def test_rejects_unknown_reject_reentry(self):
        with pytest.raises(ValueError, match="reject_reentry"):
            PopulationSpec(reject_reentry="meditate")

    def test_rejects_negative_think_time(self):
        with pytest.raises(ValueError, match="think_time"):
            PopulationSpec(think_time=-0.1)

    def test_rejects_bad_feedback_interval(self):
        with pytest.raises(ValueError, match="feedback_interval"):
            PopulationSpec(feedback_interval=0.0)

    def test_rejects_bad_mmpp_parameters(self):
        with pytest.raises(ValueError, match="burst_multiplier"):
            PopulationSpec(process="mmpp", burst_multiplier=0.0)
        with pytest.raises(ValueError, match="dwell"):
            PopulationSpec(process="mmpp", dwell_normal=0.0)
        # The same parameters are ignored (not validated) for poisson.
        PopulationSpec(process="poisson", burst_multiplier=0.0)

    def test_effective_think_time(self):
        config = SimpleNamespace(think_time=2.0)
        assert PopulationSpec().effective_think_time(config) == 2.0
        assert PopulationSpec(think_time=0.5).effective_think_time(config) == 0.5
        assert PopulationSpec(think_time=0.0).effective_think_time(config) == 0.0


# -- campaign payloads -------------------------------------------------


class TestPayloads:
    def test_population_payload_roundtrip(self):
        for spec in (
            PopulationSpec(),
            PopulationSpec(think_time=0.02, reject_reentry="think"),
            PopulationSpec(
                process="mmpp",
                burst_multiplier=8.0,
                dwell_normal=2.0,
                dwell_burst=0.1,
            ),
        ):
            payload = population_to_payload(spec)
            assert json.loads(json.dumps(payload)) == payload  # JSON-safe
            assert payload_to_population(payload) == spec

    def test_run_spec_roundtrip_with_population(self):
        spec = RunSpec(
            system="idem",
            clients=10_000,
            duration=0.5,
            warmup=0.25,
            seed=3,
            population=PopulationSpec(think_time=0.2, reject_reentry="think"),
        )
        assert payload_to_spec(spec_to_payload(spec)) == spec

    def test_population_absent_by_default(self):
        """A plain RunSpec carries population=None: the knob is provably
        off unless selected (cache keys shift only via the schema bump)."""
        payload = spec_to_payload(RunSpec(system="idem", clients=3))
        assert payload["population"] is None
        assert payload_to_spec(payload).population is None


# -- the aggregate node, exact closed loop -----------------------------


class TestExactClosedLoop:
    def test_basic_run_and_stats_shape(self):
        result = population_run(clients=50)
        stats = result.client_stats
        assert result.throughput > 0
        assert stats["successes"] > 0
        assert stats["commands"] >= stats["successes"]
        # Aggregate-only accounting rides the same dict.
        assert stats["virtual_clients"] == 50
        assert stats["feedback_ticks"] > 0
        for key in ("sends", "retries", "hedges", "give_ups", "rejections",
                    "timeouts", "load_amplification"):
            assert key in stats

    def test_same_seed_is_deterministic(self):
        a = population_run(clients=80, seed=11)
        b = population_run(clients=80, seed=11)
        assert a.throughput == b.throughput
        assert a.client_stats == b.client_stats
        assert a.latency.p99 == b.latency.p99

    def test_different_seeds_differ(self):
        a = population_run(clients=80, seed=11)
        b = population_run(clients=80, seed=12)
        assert a.client_stats != b.client_stats


# -- analytic closed loop (Z > 0) --------------------------------------


class TestAnalyticMode:
    def test_think_pool_feeds_arrivals(self):
        result = population_run(clients=200, think_time=0.02)
        stats = result.client_stats
        assert stats["arrivals"] > 0
        assert stats["successes"] > 0
        assert stats["feedback_ticks"] > 0
        # Offered ~N/Z = 10k/s over the 0.3 s run; the analytic arrival
        # process must be in that regime (the loose band tolerates
        # closed-loop throttling of the think pool).
        expected_arrivals = (200 / 0.02) * 0.3
        assert 0.5 * expected_arrivals < stats["arrivals"] <= 1.2 * expected_arrivals

    def test_reject_reentry_modes_both_run(self):
        for mode in REJECT_REENTRY_MODES:
            result = population_run(
                system="idem",
                clients=100,
                duration=0.3,
                population=PopulationSpec(think_time=0.005, reject_reentry=mode),
                overrides={"reject_threshold": 4},
            )
            assert result.client_stats["rejections"] > 0
            assert result.client_stats["successes"] > 0

    def test_mmpp_process_runs(self):
        result = population_run(
            clients=200,
            population=PopulationSpec(
                think_time=0.02, process="mmpp", dwell_normal=0.1,
                dwell_burst=0.05,
            ),
        )
        assert result.client_stats["successes"] > 0


# -- open loop (ArrivalSpec drives the aggregate) ----------------------


class TestOpenLoopMode:
    def test_arrival_spec_drives_the_population(self):
        result = population_run(
            system="paxos",
            clients=100,
            think_time=0.0,
            arrivals=ArrivalSpec(steps=((0.0, 2000.0),)),
        )
        stats = result.client_stats
        assert stats["arrivals"] > 0
        assert stats["successes"] > 0

    def test_events_per_request_near_the_object_client_floor(self):
        """The aggregate's cost claim: driving the same open-loop load
        through the population backend costs at most ~1.2x the simulator
        events per request of the per-object OpenLoopDriver path."""
        arrivals = ArrivalSpec(steps=((0.0, 2000.0),))
        reference = run_experiment(
            RunSpec(
                system="paxos", clients=50, duration=0.5, warmup=0.1,
                seed=5, arrivals=arrivals,
            )
        )
        population = run_experiment(
            RunSpec(
                system="paxos", clients=50, duration=0.5, warmup=0.1,
                seed=5, arrivals=arrivals,
                population=PopulationSpec(think_time=0.0),
            )
        )
        def events_per_request(result):
            return (
                result.sim_stats["dispatched_events"]
                / result.client_stats["commands"]
            )
        floor = events_per_request(reference)
        cost = events_per_request(population)
        assert cost <= 1.2 * floor, (cost, floor)


# -- determinism across hash seeds -------------------------------------


def _population_fingerprint(hash_seed: str) -> str:
    """Fingerprint a population run in a subprocess with PYTHONHASHSEED.

    The fabricated rid/cid streams (seeded cid draws, the monotone onr
    counter) must not depend on str/set hash order.
    """
    code = (
        "from repro.cluster.runner import RunSpec, run_experiment\n"
        "from repro.population import PopulationSpec\n"
        "r = run_experiment(RunSpec(system='idem', clients=60, duration=0.25,\n"
        "    warmup=0.1, seed=9, population=PopulationSpec(think_time=0.01)))\n"
        "print(r.throughput, r.latency.p99, sorted(r.client_stats.items()))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_population_run_is_hash_seed_invariant():
    out_a = _population_fingerprint("1")
    out_b = _population_fingerprint("4242")
    assert "successes" in out_a
    assert out_a == out_b


# -- the equivalence gate ----------------------------------------------


def test_closed_loop_equivalence_gate():
    """The headline claim of ``repro.population``: in the exact
    closed-loop regime the aggregate reproduces the per-object clients'
    throughput within ±5% and p99 within ±10% at N in {50, 100, 200},
    for both the proactive-rejection system and the baseline."""
    report = validate_population()
    rendered = report.render()
    assert report.ok, rendered
    assert {row.clients for row in report.rows} == {50, 100, 200}
    assert {row.system for row in report.rows} == {"idem", "paxos"}
    for row in report.rows:
        assert row.throughput_error <= THROUGHPUT_TOLERANCE, rendered
        assert row.p99_error <= P99_TOLERANCE, rendered


# -- figM --------------------------------------------------------------


class TestFigM:
    def test_registered(self):
        from repro.campaign.baseline import HEADLINE_EXTRACTORS
        from repro.experiments.registry import EXPERIMENTS

        assert "figM" in EXPERIMENTS
        assert "figM" in HEADLINE_EXTRACTORS

    def test_plan_runs(self):
        from repro.experiments import figM_million_users as figM

        specs = figM.plan_runs(quick=True)
        assert len(specs) == len(figM.SYSTEMS) * len(figM.N_SWEEP)
        for spec in specs:
            assert spec.population is not None
            assert spec.population.reject_reentry == "think"
            # Think time scales with N to hold the offered load fixed.
            assert spec.population.think_time == spec.clients / figM.OFFERED
            assert spec.clients in figM.N_SWEEP
        assert {spec.clients for spec in specs} == set(figM.N_SWEEP)

    def test_committed_baseline_matches_the_plan(self):
        """BENCH_figM.json must cover every (system, N) arm with the
        four gated headline metrics, under the CI gate's settings."""
        from repro.experiments import figM_million_users as figM

        path = (
            pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "baselines"
            / "BENCH_figM.json"
        )
        document = json.loads(path.read_text())
        assert document["settings"]["quick"] is True
        assert document["settings"]["runs"] == 1
        metrics = document["metrics"]
        for system in figM.SYSTEMS:
            for n_clients in figM.N_SWEEP:
                for metric in (
                    "goodput", "p99_ms", "reject_rate", "events_per_request"
                ):
                    assert f"{system}.n{n_clients}.{metric}" in metrics
        # The cost claim the figure is named for: a million-user arm
        # costs no more simulator events per request than the 10k arm.
        for system in figM.SYSTEMS:
            small = metrics[f"{system}.n10000.events_per_request"]
            huge = metrics[f"{system}.n1000000.events_per_request"]
            assert huge <= 1.2 * small

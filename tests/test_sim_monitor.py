"""Unit tests for the measurement primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.monitor import (
    CounterSeries,
    IntervalRecorder,
    LatencyRecorder,
    SummaryStats,
    TimeSeries,
)


class TestSummaryStats:
    def test_empty_sample(self):
        stats = SummaryStats.of([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_single_sample(self):
        stats = SummaryStats.of([2.5])
        assert stats.count == 1
        assert stats.mean == 2.5
        assert stats.std == 0.0
        assert stats.p50 == 2.5
        assert stats.p99 == 2.5

    def test_known_values(self):
        stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p50 == pytest.approx(2.5)

    def test_std_of_constant_sample_is_zero(self):
        assert SummaryStats.of([3.0] * 10).std == 0.0

    def test_does_not_mutate_input(self):
        samples = [3.0, 1.0, 2.0]
        SummaryStats.of(samples)
        assert samples == [3.0, 1.0, 2.0]

    def test_p999_resolves_deeper_than_p99(self):
        # 20 stragglers in 10k samples sit beyond the 99th percentile
        # but within the 99.9th: p99 misses them, p999 lands on them.
        samples = [1.0] * 9980 + [100.0] * 20
        stats = SummaryStats.of(samples)
        assert stats.p99 < 2.0
        assert stats.p999 > 90.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    def test_percentiles_are_ordered_and_bounded(self, samples):
        stats = SummaryStats.of(samples)
        tolerance = 1e-6 * max(1.0, abs(stats.maximum))
        assert stats.minimum <= stats.p50 <= stats.p90 + tolerance
        assert stats.p90 <= stats.p99 + tolerance <= stats.maximum + 2 * tolerance
        assert stats.p99 <= stats.p999 + tolerance <= stats.maximum + 2 * tolerance
        assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=100))
    def test_std_nonnegative(self, samples):
        assert SummaryStats.of(samples).std >= 0.0


class TestLatencyRecorder:
    def test_records_within_window(self):
        recorder = LatencyRecorder(window_start=1.0, window_end=2.0)
        recorder.record(0.5, 10.0)  # before window
        recorder.record(1.5, 20.0)  # inside
        recorder.record(2.5, 30.0)  # after
        assert recorder.samples == [20.0]
        assert len(recorder) == 1

    def test_window_edges_inclusive(self):
        recorder = LatencyRecorder(1.0, 2.0)
        recorder.record(1.0, 1.0)
        recorder.record(2.0, 2.0)
        assert len(recorder) == 2

    def test_summary(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(0.5, value)
        assert recorder.summary().mean == pytest.approx(2.0)


class TestCounterSeries:
    def test_total(self):
        series = CounterSeries(0.1)
        series.record(0.05)
        series.record(0.15, count=3)
        assert series.total() == 4

    def test_series_rates(self):
        series = CounterSeries(0.5)
        series.record(0.1)
        series.record(0.2)
        series.record(0.7)
        assert series.series() == [(0.0, 4.0), (0.5, 2.0)]

    def test_rate_between(self):
        series = CounterSeries(0.1)
        for t in (0.05, 0.15, 0.25, 0.35):
            series.record(t)
        assert series.rate_between(0.0, 0.4) == pytest.approx(10.0)
        assert series.rate_between(0.1, 0.3) == pytest.approx(10.0)

    def test_rate_between_empty_interval(self):
        series = CounterSeries(0.1)
        assert series.rate_between(1.0, 1.0) == 0.0

    def test_count_in_bucket(self):
        series = CounterSeries(1.0)
        series.record(3.5, count=2)
        assert series.count_in_bucket(3) == 2
        assert series.count_in_bucket(4) == 0

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            CounterSeries(0.0)


class TestTimeSeries:
    def test_bucket_means(self):
        series = TimeSeries(1.0)
        series.record(0.1, 10.0)
        series.record(0.9, 20.0)
        series.record(2.5, 5.0)
        assert series.series() == [(0.0, 15.0), (2.0, 5.0)]

    def test_mean_between(self):
        series = TimeSeries(1.0)
        series.record(0.5, 10.0)
        series.record(1.5, 30.0)
        assert series.mean_between(0.0, 2.0) == pytest.approx(20.0)
        assert series.mean_between(5.0, 6.0) == 0.0

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            TimeSeries(-1.0)


class TestIntervalRecorder:
    def test_gaps(self):
        recorder = IntervalRecorder()
        for t in (1.0, 2.0, 4.5):
            recorder.record(t)
        assert recorder.gaps == [1.0, 2.5]

    def test_longest_gap(self):
        recorder = IntervalRecorder()
        recorder.record(1.0)
        recorder.record(2.0)
        assert recorder.longest_gap() == 1.0

    def test_longest_gap_extends_to_until(self):
        recorder = IntervalRecorder()
        recorder.record(1.0)
        assert recorder.longest_gap(until=5.0) == 4.0

    def test_longest_gap_empty(self):
        assert IntervalRecorder().longest_gap() == 0.0
        assert IntervalRecorder().longest_gap(until=10.0) == 0.0

    def test_longest_gap_overlapping(self):
        recorder = IntervalRecorder()
        for t in (1.0, 4.0, 4.5):
            recorder.record(t)
        # The 3-second gap ended at t=4.0, so it overlaps a crash at 2.0
        # but not one at 5.0.
        assert recorder.longest_gap_overlapping(2.0) == 3.0
        assert recorder.longest_gap_overlapping(5.0, until=6.0) == pytest.approx(1.5)

"""Tests for experiment-layer helpers (fairness index, CLI plumbing)."""

import pytest

from repro.experiments.common import jain_fairness


class TestJainFairness:
    def test_perfectly_fair(self):
        assert jain_fairness([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_totally_unfair(self):
        index = jain_fairness([100.0, 0.0, 0.0, 0.0])
        assert index == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_bounds(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0]
        index = jain_fairness(values)
        assert 1.0 / len(values) <= index <= 1.0

    def test_more_even_is_fairer(self):
        assert jain_fairness([5.0, 5.0, 6.0]) > jain_fairness([1.0, 5.0, 10.0])


class TestCliRun:
    def test_running_a_single_experiment_prints_its_report(self, capsys, monkeypatch):
        """The CLI executes an experiment module end-to-end (stubbed)."""
        from repro import cli
        from repro.experiments import registry

        class FakeModule:
            __doc__ = "Fake experiment."

            @staticmethod
            def run(quick=False, runs=None, seed0=0, duration=None):
                return {"quick": quick, "seed": seed0}

            @staticmethod
            def render(data):
                return f"FAKE REPORT quick={data['quick']} seed={data['seed']}"

        monkeypatch.setitem(registry.EXPERIMENTS, "fake", FakeModule)
        assert cli.main(["fake", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "FAKE REPORT quick=True seed=3" in out
        assert "[fake finished" in out

    def test_all_runs_every_registered_experiment(self, capsys, monkeypatch):
        from repro import cli
        from repro.experiments import registry

        ran = []

        class Stub:
            __doc__ = "Stub."

            def __init__(self, name):
                self.name = name

            def run(self, quick=False, runs=None, seed0=0, duration=None):
                ran.append(self.name)
                return None

            def render(self, data):
                return f"report {self.name}"

        monkeypatch.setattr(
            registry, "EXPERIMENTS", {"a": Stub("a"), "b": Stub("b")}
        )
        monkeypatch.setattr(cli, "EXPERIMENTS", registry.EXPERIMENTS)
        assert cli.main(["all"]) == 0
        assert ran == ["a", "b"]

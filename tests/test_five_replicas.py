"""Five-replica (f=2) groups — the paper's "f ≤ 2 in data centers".

Everything is parameterised by n = 2f + 1; these tests pin down that the
protocols, quorums and client semantics actually scale to f = 2.
"""

from repro.cluster.builder import build_cluster
from repro.cluster.faults import FaultSchedule

from tests.conftest import live_replicas, small_profile, total_successes


def five_profile(**overrides):
    profile = small_profile(**overrides)
    profile.n = 5
    profile.f = 2
    return profile


def run_five(system="idem", clients=5, duration=0.5, faults=None, overrides=None):
    cluster = build_cluster(
        system,
        clients,
        seed=1,
        profile=five_profile(),
        overrides=overrides or {},
        stop_time=duration,
    )
    if faults is not None:
        faults.install(cluster)
    cluster.run_until(duration)
    cluster.stop_clients()
    cluster.run_until(duration + 1.0)
    return cluster


class TestNormalOperation:
    def test_cluster_has_five_replicas(self):
        cluster = run_five()
        assert len(cluster.replicas) == 5
        assert cluster.config.quorum == 3

    def test_operations_complete_on_all_protocols(self):
        for system in ("idem", "paxos", "bftsmart"):
            cluster = run_five(system)
            assert total_successes(cluster) > 50, system

    def test_replicas_stay_consistent(self):
        cluster = run_five(clients=8)
        assert len({r.exec_order_digest for r in cluster.replicas}) == 1
        assert len({r.app.digest() for r in cluster.replicas}) == 1

    def test_r_max_scales_with_n(self):
        cluster = run_five(overrides={"reject_threshold": 20})
        assert cluster.config.r_max == 100


class TestCrashTolerance:
    def test_two_follower_crashes_are_tolerated(self):
        faults = FaultSchedule().crash_follower(0.3).crash_follower(0.6)
        cluster = run_five(clients=5, duration=2.0, faults=faults)
        assert sum(1 for r in cluster.replicas if r.halted) == 2
        post = cluster.metrics.reply_counter.rate_between(1.0, 2.0)
        assert post > 0
        survivors = live_replicas(cluster)
        assert len({r.app.digest() for r in survivors}) == 1

    def test_leader_plus_follower_crash(self):
        faults = FaultSchedule().crash_leader(0.3).crash_follower(1.5)
        cluster = run_five(
            clients=5,
            duration=3.0,
            faults=faults,
            overrides={"view_change_timeout": 0.4},
        )
        survivors = live_replicas(cluster)
        assert len(survivors) == 3
        assert all(r.view >= 1 for r in survivors)
        assert cluster.metrics.reply_counter.rate_between(2.0, 3.0) > 0
        assert len({r.app.digest() for r in survivors}) == 1


class TestRejectionSemantics:
    def test_failure_needs_five_rejects(self):
        """With n=5, f=2: ambivalence at 3 rejections, failure at 5."""
        from repro.cluster.metrics import MetricsCollector
        from repro.core.client import IdemClient
        from repro.core.config import IdemConfig
        from repro.net.addresses import replica_address
        from repro.net.latency import ConstantLatency
        from repro.net.network import Network
        from repro.protocols.messages import Reject
        from repro.sim.loop import EventLoop
        from repro.sim.rng import RngRegistry
        from repro.workload.ycsb import YcsbWorkload

        loop = EventLoop()
        rng = RngRegistry(1)
        network = Network(loop, rng, latency_model=ConstantLatency(1e-4))
        config = IdemConfig(n=5, f=2, optimistic_client=False)
        client = IdemClient(
            0, loop, network, config, MetricsCollector(), YcsbWorkload(), rng
        )
        network.attach(client)
        client.start(at=0.0)
        loop.run_until(0.001)
        rid = client.current_rid
        client.deliver(replica_address(0), Reject(rid))
        client.deliver(replica_address(1), Reject(rid))
        assert client.rejections == 0  # two rejects: not ambivalent yet
        client.deliver(replica_address(2), Reject(rid))
        assert client.rejections == 1  # n - f = 3: pessimistic abort
        assert client.ambivalent_aborts == 1

    def test_overload_rejection_works_at_n5(self):
        cluster = run_five(
            clients=25, duration=0.6, overrides={"reject_threshold": 2}
        )
        assert sum(r.stats["rejected"] for r in cluster.replicas) > 0
        assert sum(c.rejections for c in cluster.clients) > 0

"""The hot-path optimisation's equivalence gate.

The tuple-keyed heap, the lazy-deadline timers, the single-sizing send
path and auto-drain are all *performance* changes: they must not move a
single simulated event.  The goldens under ``tests/golden/`` were
rendered by the pre-optimisation simulator (fixed seed, tiny settings);
any byte of drift here means an optimisation changed behaviour, not
just speed.
"""

from pathlib import Path

import pytest

import repro.sim.loop as loop_module

GOLDEN_DIR = Path(__file__).parent / "golden"


def _render_fig2() -> str:
    from repro.experiments import fig2_existing_protocols as fig2

    return fig2.render(fig2.run(quick=True, runs=1, duration=0.2)) + "\n"


def _render_fig6() -> str:
    from repro.experiments import fig6_comparison as fig6

    return fig6.render(fig6.run(quick=True, runs=1, duration=0.2)) + "\n"


def test_fig2_matches_the_pre_optimisation_golden():
    golden = (GOLDEN_DIR / "fig2_golden.txt").read_text(encoding="utf-8")
    assert _render_fig2() == golden


def test_fig6_matches_the_pre_optimisation_golden():
    golden = (GOLDEN_DIR / "fig6_golden.txt").read_text(encoding="utf-8")
    assert _render_fig6() == golden


def test_fig2_is_byte_identical_with_auto_drain_off(monkeypatch):
    """Auto-drain is a space/speed knob, never a behaviour knob.

    Event loops built deep inside the experiment pick up the module
    default, so flipping it exercises the whole fig2 slice with
    tombstones left in place — the rendered output must not move.
    """
    golden = (GOLDEN_DIR / "fig2_golden.txt").read_text(encoding="utf-8")
    monkeypatch.setattr(loop_module, "AUTO_DRAIN_DEFAULT", False)
    assert _render_fig2() == golden


def test_fig2_is_byte_identical_on_the_array_core():
    """The array-backed core is opt-in perf work under the same gate:
    the whole fig2 slice — clusters, timers, network, metrics — must
    render byte-for-byte the pre-optimisation golden with it enabled."""
    from repro.sim.cores import use_core

    golden = (GOLDEN_DIR / "fig2_golden.txt").read_text(encoding="utf-8")
    with use_core("array"):
        assert _render_fig2() == golden


def test_fig6_is_byte_identical_on_the_array_core():
    from repro.sim.cores import use_core

    golden = (GOLDEN_DIR / "fig6_golden.txt").read_text(encoding="utf-8")
    with use_core("array"):
        assert _render_fig6() == golden


def test_figR_renders_identically_on_both_cores():
    """No committed figR golden exists, so compare the cores directly:
    the retry-storm experiment (hedging, retries, give-ups — heavy
    cancel traffic) must render the same text on either core."""
    from repro.experiments import figR_retry_storm as figR
    from repro.sim.cores import use_core

    def render() -> str:
        return figR.render(figR.run(quick=True, runs=1, duration=0.2))

    baseline = render()
    with use_core("array"):
        assert render() == baseline


def test_golden_files_are_committed():
    for name in ("fig2_golden.txt", "fig6_golden.txt"):
        path = GOLDEN_DIR / name
        assert path.exists() and path.stat().st_size > 0, name


@pytest.mark.parametrize("auto_drain", [True, False])
def test_drain_setting_does_not_change_dispatch_order(auto_drain):
    """Directly: cancelling half the events mid-run dispatches the same
    survivors in the same order whether tombstones are compacted or not."""
    from repro.sim.loop import DRAIN_MIN_TOMBSTONES, EventLoop

    loop = EventLoop(auto_drain=auto_drain)
    seen = []
    doomed = [
        loop.call_after(0.5 + i * 1e-6, seen.append, f"doomed{i}")
        for i in range(DRAIN_MIN_TOMBSTONES)
    ]
    survivors = [
        loop.call_after(0.6 + i * 1e-6, seen.append, i) for i in range(10)
    ]
    del survivors

    def cancel_all():
        for event in doomed:
            event.cancel()

    loop.call_after(0.1, cancel_all)
    loop.run_until(1.0)
    assert seen == list(range(10))
    if auto_drain:
        assert loop.drained_tombstones == DRAIN_MIN_TOMBSTONES
    else:
        assert loop.drained_tombstones == 0

"""Unit tests for the single-target (Paxos) client and its failover."""

from repro.cluster.metrics import MetricsCollector
from repro.net.addresses import replica_address
from repro.net.latency import ConstantLatency
from repro.net.network import Network, NetworkNode
from repro.protocols.clients import LbrClient, SingleTargetClient
from repro.protocols.config import ProtocolConfig
from repro.protocols.messages import Reject, Reply, Request
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry
from repro.workload.ycsb import YcsbWorkload


class Sink(NetworkNode):
    def __init__(self, address, loop):
        self.address = address
        self.loop = loop
        self.requests = []

    def deliver(self, src, message):
        if isinstance(message, Request):
            self.requests.append((self.loop.now, message))


def make_client(client_class=SingleTargetClient, **config_kwargs):
    loop = EventLoop()
    rng = RngRegistry(2)
    network = Network(loop, rng, latency_model=ConstantLatency(1e-4))
    config = ProtocolConfig(**config_kwargs)
    client = client_class(
        0, loop, network, config, MetricsCollector(), YcsbWorkload(), rng
    )
    network.attach(client)
    sinks = {}
    for index in range(config.n):
        sinks[index] = Sink(replica_address(index), loop)
        network.attach(sinks[index])
    client.start(at=0.0)
    loop.run_until(0.001)
    return loop, config, client, sinks


def test_requests_go_to_the_presumed_leader_only():
    loop, config, client, sinks = make_client()
    assert sinks[0].requests
    assert not sinks[1].requests
    assert not sinks[2].requests


def test_failover_rotates_through_replicas():
    loop, config, client, sinks = make_client(client_failover_timeout=0.2)
    loop.run_until(0.5)  # two failover periods without an answer
    assert client.presumed_leader == 2
    assert sinks[1].requests and sinks[2].requests
    # Always the same operation being retried.
    rids = {m.rid for _, m in sinks[1].requests + sinks[2].requests}
    assert rids == {client.current_rid}


def test_reply_updates_the_presumed_leader():
    loop, config, client, sinks = make_client()
    rid = client.current_rid
    client.deliver(replica_address(1), Reply(rid, True, 1, view=4))
    assert client.successes == 1
    assert client.presumed_leader == 4 % config.n


def test_stale_reply_still_teaches_the_leader():
    loop, config, client, sinks = make_client()
    client.deliver(replica_address(1), Reply((0, 999), True, 1, view=1))
    assert client.successes == 0
    assert client.presumed_leader == 1


def test_failover_stops_after_success():
    loop, config, client, sinks = make_client(client_failover_timeout=0.2)
    rid = client.current_rid
    client.deliver(replica_address(0), Reply(rid, True, 1, view=0))
    client.stop()  # no further operations
    loop.run_until(1.0)
    # The completed operation is never retried anywhere.
    assert all(m.rid == rid or m.rid[1] > rid[1] for _, m in sinks[0].requests)
    assert not sinks[1].requests


def test_generic_retransmission_is_disabled():
    loop, config, client, sinks = make_client()
    assert client.retransmit_enabled is False


def test_lbr_client_aborts_on_a_single_reject():
    loop, config, client, sinks = make_client(client_class=LbrClient)
    rid = client.current_rid
    client.deliver(replica_address(0), Reject(rid))
    assert client.rejections == 1
    assert client.current_rid is None


def test_lbr_client_ignores_stale_rejects():
    loop, config, client, sinks = make_client(client_class=LbrClient)
    client.deliver(replica_address(0), Reject((0, 999)))
    assert client.rejections == 0
    assert client.current_rid is not None

"""Integration tests for the Paxos baseline (and Paxos_LBR)."""

from repro.cluster.builder import build_cluster
from repro.cluster.faults import FaultSchedule

from tests.conftest import (
    assert_replicas_consistent,
    live_replicas,
    run_cluster,
    small_profile,
    total_successes,
)


class TestNormalOperation:
    def test_operations_complete(self):
        cluster = run_cluster("paxos", clients=3, duration=0.5)
        assert total_successes(cluster) > 100

    def test_replicas_stay_consistent(self):
        cluster = run_cluster("paxos", clients=5, duration=0.5)
        assert_replicas_consistent(cluster)

    def test_clients_only_talk_to_the_leader(self):
        cluster = run_cluster("paxos", clients=3, duration=0.5)
        leader, *followers = cluster.replicas
        assert leader.stats["requests_seen"] > 0
        assert all(f.stats["requests_seen"] == 0 for f in followers)

    def test_never_rejects_without_lbr(self):
        cluster = run_cluster(
            "paxos", clients=30, duration=0.5, overrides={"reject_threshold": 2}
        )
        assert all(r.stats["rejected"] == 0 for r in cluster.replicas)


class TestLeaderCrashFailover:
    def crash_run(self, system="paxos", clients=4, overrides=None):
        merged = {"view_change_timeout": 0.4, "client_failover_timeout": 0.3}
        merged.update(overrides or {})
        cluster = build_cluster(
            system,
            clients,
            seed=1,
            profile=small_profile(),
            overrides=merged,
            stop_time=4.0,
        )
        FaultSchedule().crash_leader(0.5).install(cluster)
        cluster.run_until(4.0)
        cluster.stop_clients()
        cluster.run_until(5.0)
        return cluster

    def test_clients_fail_over_to_new_leader(self):
        cluster = self.crash_run()
        survivors = live_replicas(cluster)
        assert all(replica.view >= 1 for replica in survivors)
        post = cluster.metrics.reply_counter.rate_between(3.0, 4.0)
        assert post > 0

    def test_survivors_converge(self):
        cluster = self.crash_run()
        survivors = live_replicas(cluster)
        assert len({r.app.digest() for r in survivors}) == 1

    def test_clients_learn_the_new_leader(self):
        cluster = self.crash_run()
        new_leader = cluster.current_leader()
        assert all(
            client.presumed_leader == new_leader for client in cluster.clients
        )

    def test_relayed_requests_survive_the_crash(self):
        """Requests relayed by followers to a dead leader are re-relayed
        after the view change instead of being lost."""
        cluster = self.crash_run()
        assert all(client.successes > 0 for client in cluster.clients)


class TestLeaderBasedRejection:
    def test_lbr_rejects_under_overload(self):
        cluster = run_cluster(
            "paxos-lbr", clients=20, duration=0.6, overrides={"reject_threshold": 2}
        )
        leader = cluster.replicas[0]
        assert leader.stats["rejected"] > 0
        assert sum(client.rejections for client in cluster.clients) > 0

    def test_only_the_leader_rejects(self):
        cluster = run_cluster(
            "paxos-lbr", clients=20, duration=0.6, overrides={"reject_threshold": 2}
        )
        followers = cluster.replicas[1:]
        assert all(f.stats["rejected"] == 0 for f in followers)

    def test_single_reject_aborts_the_operation(self):
        cluster = run_cluster(
            "paxos-lbr", clients=20, duration=0.6, overrides={"reject_threshold": 2}
        )
        # Reject latency is a single round trip to the leader: far below
        # IDEM's quorum-of-rejects plus optimistic grace.
        summary = cluster.metrics.reject_latency_summary()
        assert summary.count > 0
        assert summary.mean < 0.002

    def test_no_rejections_after_leader_crash_until_failover(self):
        """The Figure 3 phenomenon: rejection goes silent with the leader."""
        cluster = build_cluster(
            "paxos-lbr",
            20,
            seed=1,
            profile=small_profile(),
            overrides={
                "reject_threshold": 2,
                "view_change_timeout": 0.6,
                "client_failover_timeout": 0.4,
            },
            stop_time=4.0,
        )
        FaultSchedule().crash_leader(1.0).install(cluster)
        cluster.run_until(4.0)
        gap = cluster.metrics.reject_gaps.longest_gap_overlapping(1.0, until=None)
        assert gap > 0.5

"""Tests for the adaptive reject threshold (automated Section 7.5)."""

import pytest

from repro.core.acceptance import AdaptiveThreshold, AlwaysAccept, TailDrop
from repro.core.config import IdemConfig
from repro.cluster.runner import RunSpec, run_experiment


def controller(threshold=100, target=1e-3, **kwargs) -> AdaptiveThreshold:
    kwargs.setdefault("min_threshold", 5)
    kwargs.setdefault("max_threshold", 200)
    kwargs.setdefault("interval", 0.1)
    return AdaptiveThreshold(TailDrop(threshold), target_delay=target, **kwargs)


def drive(test: AdaptiveThreshold, delay: float, rounds: int, rejected: bool = False):
    """Simulate ``rounds`` adjustment windows with a constant delay."""
    now = 0.0
    for _ in range(rounds):
        test.accept((0, 1), now, 0)
        for _ in range(10):
            test.observe_completion(delay)
        if rejected:
            test.accept((1, 1), now, 10**9)  # certain rejection
        now += test.interval + 1e-6
        test.accept((0, 1), now, 0)  # trigger the adjustment


class TestController:
    def test_high_delay_decreases_the_threshold(self):
        test = controller(threshold=100, target=1e-3)
        drive(test, delay=5e-3, rounds=5)
        assert test.threshold < 100
        assert test.adjustments

    def test_repeated_pressure_converges_to_the_floor(self):
        test = controller(threshold=100, target=1e-3, min_threshold=10)
        drive(test, delay=50e-3, rounds=50)
        assert test.threshold == 10

    def test_low_delay_with_rejections_increases_the_threshold(self):
        test = controller(threshold=20, target=1e-3)
        drive(test, delay=0.2e-3, rounds=5, rejected=True)
        assert test.threshold > 20

    def test_low_delay_without_rejections_leaves_it_alone(self):
        test = controller(threshold=20, target=1e-3)
        drive(test, delay=0.2e-3, rounds=5, rejected=False)
        assert test.threshold == 20

    def test_threshold_respects_the_cap(self):
        test = controller(threshold=195, target=1e-3, max_threshold=200)
        drive(test, delay=0.1e-3, rounds=10, rejected=True)
        assert test.threshold == 200

    def test_on_target_delay_is_stable(self):
        test = controller(threshold=50, target=1e-3)
        drive(test, delay=0.9e-3, rounds=10, rejected=True)
        assert test.threshold == 50

    def test_initial_threshold_clamped_into_bounds(self):
        test = AdaptiveThreshold(
            TailDrop(500), min_threshold=5, max_threshold=100
        )
        assert test.threshold == 100

    def test_validation(self):
        with pytest.raises(TypeError):
            AdaptiveThreshold(AlwaysAccept())
        with pytest.raises(ValueError):
            controller(target=0.0)
        with pytest.raises(ValueError):
            controller(min_threshold=0)
        with pytest.raises(ValueError):
            AdaptiveThreshold(TailDrop(50), decrease=1.5)


class TestConfigIntegration:
    def test_factory_builds_adaptive_over_aqm(self):
        from repro.core.acceptance import AqmPriorityTest, make_acceptance_test

        config = IdemConfig(acceptance="adaptive")
        test = make_acceptance_test(config)
        assert isinstance(test, AdaptiveThreshold)
        assert isinstance(test.inner, AqmPriorityTest)

    def test_r_max_uses_the_cap_under_adaptive_control(self):
        config = IdemConfig(acceptance="adaptive", reject_threshold_cap=200)
        assert config.r_max == 600


class TestEndToEnd:
    def test_adaptive_recovers_from_a_misconfigured_threshold(self):
        """Figure 9a's scenario, self-healed: start with RT=100 (too
        high) under heavy overload; the controller walks the threshold
        down and restores a latency close to the healthy plateau."""
        static = run_experiment(
            RunSpec(
                system="idem",
                clients=300,
                duration=2.5,
                warmup=1.5,
                seed=1,
                overrides={"reject_threshold": 100},
            )
        )
        adaptive = run_experiment(
            RunSpec(
                system="idem-adaptive",
                clients=300,
                duration=2.5,
                warmup=1.5,
                seed=1,
                overrides={"reject_threshold": 100},
            )
        )
        assert adaptive.latency.mean < 0.6 * static.latency.mean
        assert adaptive.latency.mean < 2.5e-3
        # Throughput stays in the same regime (no collapse from shedding).
        assert adaptive.throughput > 0.7 * static.throughput

"""Unit tests for the RNG registry and the shared request-hash function."""

from repro.sim.rng import RngRegistry, request_hash_unit


def test_same_seed_same_streams():
    a = RngRegistry(42).stream("x")
    b = RngRegistry(42).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_independent_streams():
    registry = RngRegistry(42)
    a = registry.stream("a")
    b = registry.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    registry = RngRegistry(0)
    assert registry.stream("x") is registry.stream("x")


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x")
    b = RngRegistry(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_consuming_one_stream_does_not_perturb_another():
    registry = RngRegistry(7)
    control = RngRegistry(7)
    registry.stream("noise").random()  # consume from an unrelated stream
    assert registry.stream("data").random() == control.stream("data").random()


def test_contains():
    registry = RngRegistry(0)
    assert "x" not in registry
    registry.stream("x")
    assert "x" in registry


def test_spawn_derives_independent_registry():
    parent = RngRegistry(5)
    child = parent.spawn("child")
    assert child.root_seed != parent.root_seed
    assert child.stream("x").random() != parent.stream("x").random()


def test_request_hash_unit_in_unit_interval():
    for cid in range(50):
        for onr in range(1, 5):
            value = request_hash_unit(cid, onr)
            assert 0.0 <= value < 1.0


def test_request_hash_unit_deterministic_across_calls():
    assert request_hash_unit(3, 17, salt=9) == request_hash_unit(3, 17, salt=9)


def test_request_hash_unit_depends_on_all_inputs():
    base = request_hash_unit(1, 1, 0)
    assert request_hash_unit(2, 1, 0) != base
    assert request_hash_unit(1, 2, 0) != base
    assert request_hash_unit(1, 1, 1) != base


def test_request_hash_unit_roughly_uniform():
    values = [request_hash_unit(cid, onr) for cid in range(100) for onr in range(1, 11)]
    mean = sum(values) / len(values)
    assert 0.45 < mean < 0.55

"""Unit tests for Timer and RestartableTimer."""

import pytest

from repro.sim.loop import EventLoop
from repro.sim.timers import RestartableTimer, Timer


def test_timer_fires_after_delay():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, seen.append, "fired")
    timer.start(0.5)
    loop.run_until(1.0)
    assert seen == ["fired"]


def test_timer_cancel_prevents_firing():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, seen.append, "fired")
    timer.start(0.5)
    timer.cancel()
    loop.run_until(1.0)
    assert seen == []


def test_timer_restart_replaces_pending_expiry():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, lambda: seen.append(loop.now))
    timer.start(0.5)
    loop.run_until(0.3)
    timer.start(0.5)  # re-arm at t=0.3
    loop.run_until(2.0)
    assert seen == [0.8]


def test_timer_running_property():
    loop = EventLoop()
    timer = Timer(loop, lambda: None)
    assert not timer.running
    timer.start(0.5)
    assert timer.running
    loop.run_until(1.0)
    assert not timer.running


def test_timer_can_be_reused_after_firing():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, lambda: seen.append(loop.now))
    timer.start(0.2)
    loop.run_until(0.5)
    timer.start(0.2)
    loop.run_until(1.0)
    assert seen == [0.2, 0.7]


def test_restartable_timer_fires_after_full_period():
    loop = EventLoop()
    seen = []
    timer = RestartableTimer(loop, 1.0, lambda: seen.append(loop.now))
    timer.start()
    loop.run_until(2.0)
    assert seen == [1.0]


def test_restartable_timer_restart_postpones_expiry():
    loop = EventLoop()
    seen = []
    timer = RestartableTimer(loop, 1.0, lambda: seen.append(loop.now))
    timer.start()
    for t in (0.5, 1.0, 1.5):
        loop.run_until(t)
        timer.restart()
    loop.run_until(5.0)
    assert seen == [2.5]


def test_restartable_timer_stop():
    loop = EventLoop()
    seen = []
    timer = RestartableTimer(loop, 1.0, seen.append, "x")
    timer.start()
    loop.run_until(0.5)
    timer.stop()
    loop.run_until(5.0)
    assert seen == []
    assert not timer.running


def test_restartable_timer_rejects_non_positive_period():
    loop = EventLoop()
    with pytest.raises(ValueError):
        RestartableTimer(loop, 0.0, lambda: None)


# -- lazy-deadline mechanics --------------------------------------------
#
# Restarting a timer only moves its deadline field; the pending heap
# entry is reused when it fires no later than the new deadline.  These
# tests pin the observable consequences: bounded heap growth under
# restart storms and exact fire times in every reuse combination.


def test_restart_storm_keeps_a_single_heap_entry():
    loop = EventLoop()
    timer = RestartableTimer(loop, 1.0, lambda: None)
    timer.start()
    assert loop.pending_events == 1
    for _ in range(1000):
        timer.restart()
    # Postponing never schedules a second entry — the stale one is
    # reused as a stepping stone toward the latest deadline.
    assert loop.pending_events == 1


def test_postponed_deadline_fires_exactly_once_at_the_new_time():
    loop = EventLoop()
    seen = []
    timer = RestartableTimer(loop, 1.0, lambda: seen.append(loop.now))
    timer.start()
    loop.run_until(0.9)
    timer.restart()  # deadline now 1.9; heap entry still says 1.0
    loop.run_until(5.0)
    assert seen == [1.9]


def test_timer_deadline_property_tracks_restarts():
    loop = EventLoop()
    timer = Timer(loop, lambda: None)
    assert timer.deadline is None
    timer.start(0.5)
    assert timer.deadline == 0.5
    loop.run_until(0.2)
    timer.start(0.5)
    assert timer.deadline == pytest.approx(0.7)
    timer.cancel()
    assert timer.deadline is None


def test_restartable_timer_deadline_property():
    loop = EventLoop()
    timer = RestartableTimer(loop, 2.0, lambda: None)
    assert timer.deadline is None
    timer.start()
    assert timer.deadline == 2.0
    timer.stop()
    assert timer.deadline is None


def test_cancel_then_restart_reuses_the_stale_entry():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, lambda: seen.append(loop.now))
    timer.start(1.0)
    timer.cancel()
    assert not timer.running
    # Re-arm before the stale entry fires: no new heap entry needed.
    timer.start(2.0)
    assert loop.pending_events == 1
    loop.run_until(5.0)
    assert seen == [2.0]


def test_start_with_earlier_deadline_schedules_fresh_entry():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, lambda: seen.append(loop.now))
    timer.start(2.0)
    # Pulling the deadline *in* cannot reuse the later entry.
    timer.start(0.5)
    loop.run_until(5.0)
    assert seen == [0.5]


def test_stale_entry_fires_idle_after_cancel():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, seen.append, "fired")
    timer.start(1.0)
    timer.cancel()
    loop.run_until(5.0)
    # The stale entry dispatched as a no-op; the callback never ran and
    # the timer is reusable afterwards.
    assert seen == []
    timer.start(1.0)
    loop.run_until(10.0)
    assert seen == ["fired"]

"""Unit tests for Timer and RestartableTimer."""

import pytest

from repro.sim.loop import EventLoop
from repro.sim.timers import RestartableTimer, Timer


def test_timer_fires_after_delay():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, seen.append, "fired")
    timer.start(0.5)
    loop.run_until(1.0)
    assert seen == ["fired"]


def test_timer_cancel_prevents_firing():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, seen.append, "fired")
    timer.start(0.5)
    timer.cancel()
    loop.run_until(1.0)
    assert seen == []


def test_timer_restart_replaces_pending_expiry():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, lambda: seen.append(loop.now))
    timer.start(0.5)
    loop.run_until(0.3)
    timer.start(0.5)  # re-arm at t=0.3
    loop.run_until(2.0)
    assert seen == [0.8]


def test_timer_running_property():
    loop = EventLoop()
    timer = Timer(loop, lambda: None)
    assert not timer.running
    timer.start(0.5)
    assert timer.running
    loop.run_until(1.0)
    assert not timer.running


def test_timer_can_be_reused_after_firing():
    loop = EventLoop()
    seen = []
    timer = Timer(loop, lambda: seen.append(loop.now))
    timer.start(0.2)
    loop.run_until(0.5)
    timer.start(0.2)
    loop.run_until(1.0)
    assert seen == [0.2, 0.7]


def test_restartable_timer_fires_after_full_period():
    loop = EventLoop()
    seen = []
    timer = RestartableTimer(loop, 1.0, lambda: seen.append(loop.now))
    timer.start()
    loop.run_until(2.0)
    assert seen == [1.0]


def test_restartable_timer_restart_postpones_expiry():
    loop = EventLoop()
    seen = []
    timer = RestartableTimer(loop, 1.0, lambda: seen.append(loop.now))
    timer.start()
    for t in (0.5, 1.0, 1.5):
        loop.run_until(t)
        timer.restart()
    loop.run_until(5.0)
    assert seen == [2.5]


def test_restartable_timer_stop():
    loop = EventLoop()
    seen = []
    timer = RestartableTimer(loop, 1.0, seen.append, "x")
    timer.start()
    loop.run_until(0.5)
    timer.stop()
    loop.run_until(5.0)
    assert seen == []
    assert not timer.running


def test_restartable_timer_rejects_non_positive_period():
    loop = EventLoop()
    with pytest.raises(ValueError):
        RestartableTimer(loop, 0.0, lambda: None)

"""Tests for ``repro.perf`` and the campaign's per-job profiling.

The perf scenarios are microbenchmarks, so these tests run them at a
tiny ``scale`` — what is under test is the *machinery* (determinism of
dispatched counts, baseline gating, CLI plumbing, sidecar profiles),
never the absolute speed of the CI runner.
"""

import json
from types import SimpleNamespace

import pytest

from repro.campaign import ExecutionStats, ResultCache, execute_jobs, job_profile
from repro.campaign.plan import sim_job
from repro.campaign.report import render_slowest
from repro.cluster.runner import RunSpec
from repro.perf import (
    SCENARIOS,
    PerfResult,
    check_perf_baseline,
    render_results,
    results_jsonable,
    run_scenarios,
    write_perf_baseline,
)
from repro.perf.runner import BASELINE_NAME, load_perf_baseline

#: Large enough that every scenario dispatches real work, small enough
#: that the whole module stays fast.
TINY = 0.01


def fake_result(
    scenario: str = "event_churn", rate: float = 1000.0, events: int = 100
) -> PerfResult:
    return PerfResult(
        scenario=scenario,
        wall_seconds=events / rate,
        dispatched_events=events,
        events_per_sec=rate,
        peak_heap=10,
        drained_tombstones=0,
    )


# -- scenarios ----------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_runs_and_reports_counters(name):
    result = SCENARIOS[name](TINY)
    assert result.scenario == name
    assert result.dispatched_events > 0
    assert result.wall_seconds > 0
    assert result.events_per_sec > 0
    assert result.peak_heap > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_dispatched_counts_are_deterministic(name):
    first = SCENARIOS[name](TINY)
    second = SCENARIOS[name](TINY)
    assert first.dispatched_events == second.dispatched_events
    assert first.peak_heap == second.peak_heap


def test_run_scenarios_defaults_to_all_in_catalog_order():
    results = run_scenarios(repeat=1, scale=TINY)
    assert [r.scenario for r in results] == list(SCENARIOS)


def test_run_scenarios_selects_named_subset():
    results = run_scenarios(["event_churn"], repeat=1, scale=TINY)
    assert [r.scenario for r in results] == ["event_churn"]


def test_run_scenarios_rejects_unknown_names():
    with pytest.raises(KeyError, match="no_such_scenario"):
        run_scenarios(["no_such_scenario"], repeat=1, scale=TINY)


def test_render_results_lists_every_scenario():
    results = [fake_result("event_churn"), fake_result("fig2_slice")]
    text = render_results(results)
    assert "event_churn" in text and "fig2_slice" in text


def test_results_jsonable_round_trips_through_json():
    document = results_jsonable([fake_result()], repeat=3, scale=1.0)
    parsed = json.loads(json.dumps(document))
    assert parsed["bench"] == "simulator"
    assert parsed["settings"] == {"scale": 1.0, "repeat": 3}
    assert parsed["results"][0]["scenario"] == "event_churn"


# -- baseline gate ------------------------------------------------------


def test_missing_baseline_fails_with_pointer(tmp_path):
    report = check_perf_baseline(tmp_path, [fake_result()], scale=1.0)
    assert not report.ok and report.exit_code == 1
    assert report.entries[0].status == "missing-baseline"
    assert "--update-baselines" in report.render()


def test_write_then_check_passes(tmp_path):
    results = [fake_result()]
    path = write_perf_baseline(tmp_path, results, scale=1.0)
    assert path.name == BASELINE_NAME
    report = check_perf_baseline(tmp_path, results, scale=1.0)
    assert report.ok and report.exit_code == 0
    assert "=> PASS" in report.render()


def test_scale_mismatch_refuses_to_compare(tmp_path):
    write_perf_baseline(tmp_path, [fake_result()], scale=1.0)
    report = check_perf_baseline(tmp_path, [fake_result()], scale=0.5)
    assert not report.ok
    assert report.entries[0].status == "settings-mismatch"


def test_rate_regression_beyond_band_fails(tmp_path):
    write_perf_baseline(tmp_path, [fake_result(rate=1000.0)], scale=1.0)
    report = check_perf_baseline(tmp_path, [fake_result(rate=500.0)], scale=1.0)
    assert not report.ok
    statuses = {entry.metric: entry.status for entry in report.entries}
    assert statuses["event_churn.events_per_sec"] == "regressed"
    assert "=> FAIL" in report.render()


def test_rate_within_band_passes(tmp_path):
    write_perf_baseline(tmp_path, [fake_result(rate=1000.0)], scale=1.0)
    report = check_perf_baseline(tmp_path, [fake_result(rate=700.0)], scale=1.0)
    assert report.ok


def test_rate_improvement_passes_with_a_hint(tmp_path):
    write_perf_baseline(tmp_path, [fake_result(rate=1000.0)], scale=1.0)
    report = check_perf_baseline(tmp_path, [fake_result(rate=2000.0)], scale=1.0)
    assert report.ok
    statuses = {entry.metric: entry.status for entry in report.entries}
    assert statuses["event_churn.events_per_sec"] == "improved"


def test_dispatched_count_drift_fails_even_when_faster(tmp_path):
    write_perf_baseline(tmp_path, [fake_result(events=100)], scale=1.0)
    report = check_perf_baseline(
        tmp_path, [fake_result(rate=5000.0, events=101)], scale=1.0
    )
    assert not report.ok
    statuses = {entry.metric: entry.status for entry in report.entries}
    assert statuses["event_churn.dispatched_events"] == "count-drift"


def test_unknown_scenario_in_run_is_a_new_metric(tmp_path):
    write_perf_baseline(tmp_path, [fake_result("event_churn")], scale=1.0)
    report = check_perf_baseline(tmp_path, [fake_result("fig2_slice")], scale=1.0)
    assert report.ok  # new metrics pass; the next --update-baselines adopts them
    assert {entry.status for entry in report.entries} == {"new-metric"}


def test_per_metric_tolerance_widens_one_scenarios_band(tmp_path):
    import json

    write_perf_baseline(tmp_path, [fake_result(rate=1000.0)], scale=1.0)
    path = tmp_path / BASELINE_NAME
    document = json.loads(path.read_text())
    document["tolerance"]["per_metric"] = {"event_churn.events_per_sec": 0.6}
    path.write_text(json.dumps(document))
    # 500 is outside the default -40% band but inside the -60% override.
    report = check_perf_baseline(tmp_path, [fake_result(rate=500.0)], scale=1.0)
    assert report.ok
    report = check_perf_baseline(tmp_path, [fake_result(rate=350.0)], scale=1.0)
    assert not report.ok


def test_rebless_carries_notes_and_tolerance_forward(tmp_path):
    import json

    write_perf_baseline(
        tmp_path, [fake_result(rate=1000.0)], scale=1.0, notes={"why": "measured"}
    )
    path = tmp_path / BASELINE_NAME
    document = json.loads(path.read_text())
    document["tolerance"]["per_metric"] = {"sharded_fig2.events_per_sec": 0.6}
    path.write_text(json.dumps(document))
    # A plain re-bless must only replace the measurements: the human
    # notes and the per-metric tolerance overrides survive.
    write_perf_baseline(tmp_path, [fake_result(rate=2000.0)], scale=1.0)
    document = load_perf_baseline(tmp_path)
    assert document["notes"] == {"why": "measured"}
    assert document["tolerance"]["per_metric"] == {
        "sharded_fig2.events_per_sec": 0.6
    }
    assert document["metrics"]["event_churn.events_per_sec"] == 2000.0


def test_baseline_document_shape(tmp_path):
    write_perf_baseline(tmp_path, [fake_result()], scale=1.0, notes={"why": "test"})
    document = load_perf_baseline(tmp_path)
    assert document["bench"] == "simulator"
    assert document["settings"] == {"scale": 1.0}
    assert document["notes"] == {"why": "test"}
    assert document["metrics"]["event_churn.dispatched_events"] == 100


def test_committed_baseline_covers_every_scenario():
    from pathlib import Path

    directory = Path(__file__).parent.parent / "benchmarks" / "baselines"
    document = load_perf_baseline(directory)
    assert document is not None, "BENCH_simulator.json must be committed"
    for name in SCENARIOS:
        assert f"{name}.events_per_sec" in document["metrics"]
        assert f"{name}.dispatched_events" in document["metrics"]


# -- perf CLI -----------------------------------------------------------


def perf_argv(*extra):
    return [
        "perf", "--scenarios", "event_churn", "--repeat", "2",
        "--scale", str(TINY), *extra,
    ]


def test_perf_cli_prints_table_and_writes_report(tmp_path, capsys):
    from repro.cli import main

    report_path = tmp_path / "perf-report.json"
    assert main(perf_argv("--report", str(report_path))) == 0
    assert "event_churn" in capsys.readouterr().out
    document = json.loads(report_path.read_text())
    assert document["results"][0]["scenario"] == "event_churn"


def test_perf_cli_baseline_cycle(tmp_path, capsys):
    """--update-baselines → --check passes → perturb count → --check fails."""
    from repro.cli import main

    baseline_dir = tmp_path / "baselines"
    argv = perf_argv("--baseline-dir", str(baseline_dir))
    assert main(argv + ["--update-baselines"]) == 0
    capsys.readouterr()
    assert main(argv + ["--check"]) == 0
    assert "=> PASS" in capsys.readouterr().err

    path = baseline_dir / BASELINE_NAME
    document = json.loads(path.read_text())
    document["metrics"]["event_churn.dispatched_events"] += 1
    path.write_text(json.dumps(document))
    assert main(argv + ["--check"]) == 1
    assert "count-drift" in capsys.readouterr().err


def test_perf_cli_unknown_scenario_exits_two(capsys):
    from repro.cli import main

    assert main(["perf", "--scenarios", "bogus", "--repeat", "1"]) == 2
    assert "unknown perf scenario" in capsys.readouterr().err


# -- campaign per-job profiles ------------------------------------------


def tiny_spec(seed: int = 0) -> RunSpec:
    return RunSpec(system="idem", clients=2, duration=0.3, warmup=0.1, seed=seed)


def test_job_profile_pairs_wall_time_with_sim_counters():
    job = sim_job("fig2", tiny_spec())
    result = SimpleNamespace(
        sim_stats={"dispatched_events": 500, "peak_heap": 42, "drained_tombstones": 7}
    )
    profile = job_profile(job, result, wall_seconds=0.5)
    assert profile["key"] == job.key
    assert profile["dispatched_events"] == 500
    assert profile["events_per_sec"] == pytest.approx(1000.0)
    assert profile["peak_heap"] == 42
    assert profile["drained_tombstones"] == 7
    assert profile["cached"] is False


def test_job_profile_tolerates_results_without_sim_stats():
    job = sim_job("fig2", tiny_spec())
    profile = job_profile(job, object(), wall_seconds=0.5)
    assert profile["wall_seconds"] == 0.5
    assert profile["dispatched_events"] is None
    assert profile["events_per_sec"] is None


def test_cache_sidecar_profile_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    job = sim_job("fig2", tiny_spec())
    profile = job_profile(job, object(), wall_seconds=1.25)
    cache.store(job.key, {"data": 1}, job, profile=profile)
    assert cache.load_profile(job.key) == profile
    assert cache.load_profile("0" * 64) is None


def test_execute_jobs_profiles_fresh_and_cached_runs(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [sim_job("fig2", tiny_spec())]

    _, cold = execute_jobs(jobs, cache=cache)
    assert len(cold.job_profiles) == 1
    fresh = cold.job_profiles[0]
    assert fresh["cached"] is False
    assert fresh["wall_seconds"] > 0
    assert fresh["dispatched_events"] > 0

    _, warm = execute_jobs(jobs, cache=cache)
    assert warm.executed == 0 and warm.cache_hits == 1
    cached = warm.job_profiles[0]
    assert cached["cached"] is True
    # The sidecar preserved the original execution's cost.
    assert cached["wall_seconds"] == fresh["wall_seconds"]
    assert cached["dispatched_events"] == fresh["dispatched_events"]


def test_render_slowest_orders_by_wall_time():
    stats = ExecutionStats(
        job_profiles=[
            {"label": "fast", "wall_seconds": 0.1, "dispatched_events": 10,
             "events_per_sec": 100.0, "cached": False},
            {"label": "slow", "wall_seconds": 2.0, "dispatched_events": 10,
             "events_per_sec": 5.0, "cached": True},
            {"label": "unprofiled", "wall_seconds": None},
        ]
    )
    text = render_slowest(SimpleNamespace(stats=stats), k=1)
    assert "Slowest 1 of 2" in text
    assert "slow (cached)" in text
    assert "fast" not in text


def test_render_slowest_with_no_profiles():
    text = render_slowest(SimpleNamespace(stats=ExecutionStats()), k=5)
    assert "no job profiles" in text

"""Unit tests for the array-backed event core and core selection.

The array core's contract is *observable equivalence* with the tuple
core — same callbacks, same order, same counters — plus two documented
handle-semantics differences (``call_after`` returns no handle; a
pooled handle goes ``cancelled == True`` once stale).  Both halves are
pinned here: behavioural parity by seeded fuzzing against
:class:`repro.sim.loop.EventLoop`, the divergences as explicit tests so
a future change to them is a deliberate act.
"""

import math
import random

import pytest

import repro.sim.loop as loop_module
from repro.sim.arraycore import INITIAL_SLOTS, ArrayEvent, ArrayEventLoop
from repro.sim.cores import (
    CORE_ARRAY,
    CORE_TUPLE,
    CORES,
    get_default_core,
    make_loop,
    set_default_core,
    use_core,
)
from repro.sim.errors import SchedulingError, StoppedError
from repro.sim.loop import EventLoop
from repro.sim.timers import RestartableTimer, Timer


# -- basic dispatch (mirrors the tuple-core unit tests) -----------------


def test_clock_starts_at_zero_and_at_given_time():
    assert ArrayEventLoop().now == 0.0
    assert ArrayEventLoop(start_time=5.0).now == 5.0


def test_events_fire_in_time_order():
    loop = ArrayEventLoop()
    seen = []
    loop.call_after(0.3, seen.append, "c")
    loop.call_after(0.1, seen.append, "a")
    loop.call_at(0.2, seen.append, "b")
    loop.run_until(1.0)
    assert seen == ["a", "b", "c"]
    assert loop.now == 1.0
    assert loop.dispatched_events == 3


def test_same_time_events_fire_in_scheduling_order():
    loop = ArrayEventLoop()
    seen = []
    for label in range(10):
        (loop.call_at if label % 2 else loop.call_after)(0.5, seen.append, label)
    loop.run_until(1.0)
    assert seen == list(range(10))


def test_run_until_advances_clock_to_horizon_without_events():
    loop = ArrayEventLoop()
    loop.run_until(3.0)
    assert loop.now == 3.0


def test_events_beyond_horizon_stay_pending():
    loop = ArrayEventLoop()
    seen = []
    loop.call_after(2.0, seen.append, "late")
    loop.run_until(1.0)
    assert seen == [] and loop.pending_events == 1
    loop.run_until(2.5)
    assert seen == ["late"]


def test_run_drains_the_heap():
    loop = ArrayEventLoop()
    seen = []

    def chain(k):
        if k:
            loop.call_after(0.1, chain, k - 1)
        seen.append(k)

    loop.call_after(0.0, chain, 3)
    loop.run()
    assert seen == [3, 2, 1, 0]
    assert loop.pending_events == 0


def test_stop_halts_dispatch_and_resume_continues():
    loop = ArrayEventLoop()
    seen = []
    loop.call_after(0.1, seen.append, "a")
    loop.call_after(0.2, loop.stop)
    loop.call_after(0.3, seen.append, "b")
    loop.run_until(1.0)
    assert seen == ["a"] and loop.stopped and loop.now == 0.2
    with pytest.raises(StoppedError):
        loop.run_until(1.0)
    with pytest.raises(StoppedError):
        loop.run()
    with pytest.raises(StoppedError):
        loop.call_after(0.1, seen.append, "x")
    with pytest.raises(StoppedError):
        loop.call_at(0.5, seen.append, "x")
    loop.resume()
    loop.run_until(1.0)
    assert seen == ["a", "b"]


def test_scheduling_guards():
    loop = ArrayEventLoop(start_time=1.0)
    with pytest.raises(SchedulingError):
        loop.call_at(0.5, lambda: None)
    with pytest.raises(SchedulingError):
        loop.call_after(-0.1, lambda: None)


# -- handle semantics ---------------------------------------------------


def test_call_after_returns_no_handle():
    # Documented divergence: the fire-and-forget path has no handle.
    assert ArrayEventLoop().call_after(0.1, lambda: None) is None


def test_call_at_handle_reports_time_seq_and_cancels():
    loop = ArrayEventLoop()
    seen = []
    handle = loop.call_at(0.5, seen.append, "doomed")
    assert isinstance(handle, ArrayEvent)
    assert handle.time == 0.5 and not handle.cancelled
    handle.cancel()
    assert handle.cancelled
    handle.cancel()  # idempotent
    loop.run_until(1.0)
    assert seen == [] and loop.dispatched_events == 0


def test_fired_handle_goes_stale():
    # Documented divergence: a fired event's pooled handle reports
    # cancelled=True ("can no longer be cancelled") and time=nan.
    loop = ArrayEventLoop()
    handle = loop.call_at(0.5, lambda: None)
    loop.run_until(1.0)
    assert handle.cancelled
    assert math.isnan(handle.time)
    handle.cancel()  # no-op, no error
    assert loop.cancelled_pending == 0


def test_reissued_slot_revalidates_the_same_pooled_handle():
    # Documented divergence: handles are pooled per slot, so a reused
    # slot hands back the *same object*, revalidated for the new event.
    # A reference retained past its event's lifetime therefore aliases
    # the slot's next occupant — which is why the contract says to use
    # a handle only while its event is pending (timers do exactly that).
    loop = ArrayEventLoop()
    seen = []
    stale = loop.call_at(0.1, lambda: None)
    loop.run_until(0.2)
    assert stale.cancelled and math.isnan(stale.time)
    fresh = loop.call_at(0.5, seen.append, "live")
    assert fresh is stale  # LIFO pool reuses the freed slot
    assert not fresh.cancelled and fresh.time == 0.5
    loop.run_until(1.0)
    assert seen == ["live"]


def test_handle_seq_increases_monotonically():
    loop = ArrayEventLoop()
    first = loop.call_at(0.1, lambda: None)
    loop.call_after(0.2, lambda: None)
    second = loop.call_at(0.3, lambda: None)
    assert second.seq > first.seq


# -- slot pool ----------------------------------------------------------


def test_slots_are_reused_in_steady_state():
    loop = ArrayEventLoop()
    for step in range(4 * INITIAL_SLOTS):
        loop.call_at(loop.now + 0.001, lambda: None)
        loop.run_until(loop.now + 0.002)
    assert loop.allocated_slots == INITIAL_SLOTS


def test_lanes_grow_when_pending_exceeds_capacity():
    loop = ArrayEventLoop()
    seen = []
    for index in range(INITIAL_SLOTS + 1):
        loop.call_at(0.5 + index * 1e-6, seen.append, index)
    assert loop.allocated_slots == 2 * INITIAL_SLOTS
    loop.run_until(1.0)
    assert seen == list(range(INITIAL_SLOTS + 1))
    # Growth is permanent but one-way: the next burst fits.
    for index in range(2 * INITIAL_SLOTS):
        loop.call_at(loop.now + 0.5, seen.append, index)
    assert loop.allocated_slots == 2 * INITIAL_SLOTS


def test_grown_handles_work_like_initial_ones():
    loop = ArrayEventLoop()
    handles = [loop.call_at(0.5, lambda: None) for _ in range(INITIAL_SLOTS + 8)]
    late = handles[-1]
    assert late._slot >= INITIAL_SLOTS
    late.cancel()
    assert late.cancelled and loop.cancelled_pending == 1


# -- tombstones and draining -------------------------------------------


def test_auto_drain_default_follows_the_tuple_core_module(monkeypatch):
    monkeypatch.setattr(loop_module, "AUTO_DRAIN_DEFAULT", False)
    assert ArrayEventLoop().auto_drain is False
    monkeypatch.setattr(loop_module, "AUTO_DRAIN_DEFAULT", True)
    assert ArrayEventLoop().auto_drain is True
    assert ArrayEventLoop(auto_drain=False).auto_drain is False


def test_explicit_drain_removes_tombstones_and_frees_slots():
    loop = ArrayEventLoop(auto_drain=False)
    keep = loop.call_at(0.9, lambda: None)
    doomed = [loop.call_at(0.5 + i * 1e-6, lambda: None) for i in range(10)]
    for handle in doomed:
        handle.cancel()
    assert loop.cancelled_pending == 10 and loop.pending_events == 11
    free_before = len(loop._free)
    assert loop.drain_cancelled() == 10
    assert loop.pending_events == 1
    assert loop.cancelled_pending == 0
    assert loop.drained_tombstones == 10
    assert len(loop._free) == free_before + 10
    assert not keep.cancelled
    # Drained handles are stale, like fired ones.
    assert all(handle.cancelled for handle in doomed)


def test_auto_drain_threshold_matches_the_tuple_core(monkeypatch):
    # Both cores read DRAIN_MIN_TOMBSTONES off repro.sim.loop, so the
    # equivalence suite's monkeypatching governs the drain *sequence*
    # of both.  Drain fires once tombstones hit the minimum AND make up
    # half the heap.
    monkeypatch.setattr(loop_module, "DRAIN_MIN_TOMBSTONES", 4)
    loop = ArrayEventLoop(auto_drain=True)
    handles = [loop.call_at(0.5 + i * 1e-6, lambda: None) for i in range(8)]
    for handle in handles[:3]:
        handle.cancel()
    assert loop.drained_tombstones == 0
    handles[3].cancel()
    assert loop.drained_tombstones == 4
    assert loop.cancelled_pending == 0


def test_cancelled_events_do_not_dispatch_without_drain():
    loop = ArrayEventLoop(auto_drain=False)
    seen = []
    doomed = loop.call_at(0.5, seen.append, "doomed")
    loop.call_at(0.6, seen.append, "kept")
    doomed.cancel()
    loop.run_until(1.0)
    assert seen == ["kept"]
    assert loop.dispatched_events == 1
    assert loop.cancelled_pending == 0  # consumed as a tombstone pop


# -- timers on the array core ------------------------------------------


def test_timer_fires_and_cancels_on_array_core():
    loop = ArrayEventLoop()
    seen = []
    timer = Timer(loop, seen.append, "fired")
    timer.start(0.5)
    cancelled = Timer(loop, seen.append, "never")
    cancelled.start(0.4)
    cancelled.cancel()
    loop.run_until(1.0)
    assert seen == ["fired"]


def test_restartable_timer_on_array_core():
    loop = ArrayEventLoop()
    seen = []
    timer = RestartableTimer(loop, 0.5, seen.append, "expired")
    timer.start()
    for step in range(5):
        loop.run_until(0.1 * (step + 1))
        timer.restart()
    loop.run_until(2.0)
    assert seen == ["expired"]


# -- seeded fuzz parity with the tuple core ----------------------------


def _fuzz_trace(loop, seed: int, steps: int = 400):
    """Drive a random schedule; return the observable dispatch trace."""
    rng = random.Random(seed)
    seen = []
    handles = []

    def note(tag):
        seen.append((round(loop.now, 9), tag))
        # Nested scheduling from inside callbacks, like real protocol code.
        if rng.random() < 0.3:
            loop.call_after(rng.random() * 0.05, note, f"{tag}+")

    for step in range(steps):
        roll = rng.random()
        if roll < 0.45:
            loop.call_after(rng.random() * 0.2, note, f"a{step}")
        elif roll < 0.8:
            when = loop.now + rng.random() * 0.2
            handles.append((when, loop.call_at(when, note, f"t{step}")))
        elif handles and roll < 0.95:
            when, victim = handles.pop(rng.randrange(len(handles)))
            # Cancel only while the event is still pending — the
            # pooled-handle contract (and what timers actually do).
            if when > loop.now:
                victim.cancel()
        else:
            loop.run_until(loop.now + rng.random() * 0.05)
    loop.run()
    return seen


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_fuzzed_schedules_dispatch_identically_on_both_cores(seed):
    tuple_loop = EventLoop()
    array_loop = ArrayEventLoop()
    tuple_trace = _fuzz_trace(tuple_loop, seed)
    array_trace = _fuzz_trace(array_loop, seed)
    assert array_trace == tuple_trace
    assert array_loop.dispatched_events == tuple_loop.dispatched_events
    assert array_loop.peak_heap == tuple_loop.peak_heap
    assert array_loop.drained_tombstones == tuple_loop.drained_tombstones
    assert array_loop.now == tuple_loop.now


# -- core selection (repro.sim.cores) ----------------------------------


def test_core_registry_and_make_loop():
    assert set(CORES) == {CORE_TUPLE, CORE_ARRAY}
    assert type(make_loop(CORE_TUPLE)) is EventLoop
    assert type(make_loop(CORE_ARRAY)) is ArrayEventLoop
    assert make_loop(CORE_ARRAY, start_time=2.0).now == 2.0
    assert make_loop(CORE_TUPLE, auto_drain=False).auto_drain is False


def test_unknown_core_is_rejected():
    with pytest.raises(ValueError):
        make_loop("linkedlist")
    with pytest.raises(ValueError):
        set_default_core("linkedlist")


def test_default_core_and_use_core_scoping():
    assert get_default_core() == CORE_TUPLE
    assert type(make_loop(None)) is EventLoop
    with use_core(CORE_ARRAY):
        assert get_default_core() == CORE_ARRAY
        assert type(make_loop(None)) is ArrayEventLoop
        # An explicit core always beats the ambient default.
        assert type(make_loop(CORE_TUPLE)) is EventLoop
    assert get_default_core() == CORE_TUPLE


def test_use_core_restores_on_error():
    with pytest.raises(RuntimeError):
        with use_core(CORE_ARRAY):
            raise RuntimeError("boom")
    assert get_default_core() == CORE_TUPLE

"""Tests for the cluster builder, fault schedules, metrics and runner."""

import math

import pytest

from repro.cluster.builder import SYSTEMS, build_cluster, build_config
from repro.cluster.faults import CrashFault, FaultSchedule, resolve_target
from repro.cluster.metrics import MetricsCollector
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec, run_experiment
from repro.core.config import IdemConfig

from tests.conftest import small_profile


class TestBuilder:
    def test_registry_contains_all_paper_systems(self):
        for system in ("idem", "idem-nopr", "idem-noaqm", "paxos", "paxos-lbr", "bftsmart"):
            assert system in SYSTEMS

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            build_cluster("zab", 1)

    def test_zero_clients_rejected(self):
        with pytest.raises(ValueError):
            build_cluster("idem", 0)

    def test_build_config_applies_overrides(self):
        config = build_config("idem", ClusterProfile(), {"reject_threshold": 20})
        assert isinstance(config, IdemConfig)
        assert config.reject_threshold == 20

    def test_build_config_rejects_unknown_override(self):
        with pytest.raises(ValueError, match="unknown config overrides"):
            build_config("idem", ClusterProfile(), {"no_such_field": 1})

    def test_system_variants_set_their_flags(self):
        assert build_config("idem-nopr", ClusterProfile()).rejection_enabled is False
        assert build_config("idem-noaqm", ClusterProfile()).acceptance == "taildrop"
        assert build_config("paxos-lbr", ClusterProfile()).leader_rejection is True

    def test_bftsmart_gets_the_cost_factor(self):
        profile = ClusterProfile(bftsmart_cost_factor=2.0)
        paxos = build_config("paxos", profile)
        bft = build_config("bftsmart", profile)
        assert bft.cost_message == pytest.approx(2 * paxos.cost_message)

    def test_cluster_has_n_replicas_and_k_clients(self):
        cluster = build_cluster("idem", 7, profile=small_profile())
        assert len(cluster.replicas) == 3
        assert len(cluster.clients) == 7

    def test_replica_state_machines_are_preloaded(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        assert all(len(replica.app) == 50 for replica in cluster.replicas)

    def test_current_leader_of_fresh_cluster(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        assert cluster.current_leader() == 0


class TestFaults:
    def test_crash_fault_validation(self):
        with pytest.raises(ValueError):
            CrashFault(-1.0, "leader")
        with pytest.raises(ValueError):
            CrashFault(1.0, "bystander")

    def test_schedule_is_chainable(self):
        schedule = FaultSchedule().crash_leader(1.0).crash_follower(2.0)
        assert len(schedule.faults) == 2

    def test_resolve_leader_target(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        assert resolve_target(cluster, "leader") == 0

    def test_resolve_follower_target(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        assert resolve_target(cluster, "follower") in (1, 2)

    def test_resolve_skips_crashed_replicas(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        cluster.crash_replica(1)
        assert resolve_target(cluster, "follower") == 2

    def test_resolve_explicit_index(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        assert resolve_target(cluster, 2) == 2
        cluster.crash_replica(2)
        assert resolve_target(cluster, 2) is None

    def test_crash_severs_the_replica(self):
        cluster = build_cluster("idem", 1, profile=small_profile())
        cluster.crash_replica(0)
        assert cluster.replicas[0].halted
        assert cluster.network.is_crashed(cluster.replicas[0].address)


class TestMetricsCollector:
    def test_throughput_over_window(self):
        metrics = MetricsCollector(window_start=1.0, window_end=2.0)
        for i in range(10):
            metrics.record_success(1.0 + i * 0.1, 0.001)
        assert metrics.throughput() == pytest.approx(10.0)

    def test_warmup_excluded(self):
        metrics = MetricsCollector(window_start=1.0, window_end=2.0)
        metrics.record_success(0.5, 123.0)
        assert metrics.latency_summary().count == 0

    def test_reject_share_bookkeeping(self):
        metrics = MetricsCollector(0.0, 1.0)
        metrics.record_success(0.5, 0.001)
        metrics.record_reject(0.6, 0.002)
        assert metrics.reject_throughput() == pytest.approx(1.0)
        assert metrics.reject_latency_summary().mean == pytest.approx(0.002)

    def test_timeline_means(self):
        metrics = MetricsCollector(0.0, 10.0, bucket_width=1.0)
        metrics.record_success(0.2, 0.002)
        metrics.record_success(0.8, 0.004)
        metrics.record_success(1.5, 0.010)
        timeline = metrics.latency_timeline()
        assert timeline == [(0.0, pytest.approx(0.003)), (1.0, pytest.approx(0.010))]

    def test_timeouts_counted(self):
        metrics = MetricsCollector()
        metrics.record_timeout(1.0)
        metrics.record_timeout(2.0)
        assert metrics.timeouts == 2

    def test_first_reject_time(self):
        metrics = MetricsCollector()
        assert metrics.first_reject_time is None
        metrics.record_reject(3.0, 0.001)
        metrics.record_reject(4.0, 0.001)
        assert metrics.first_reject_time == 3.0


class TestRunner:
    def test_warmup_must_be_shorter_than_duration(self):
        with pytest.raises(ValueError):
            RunSpec(system="idem", clients=1, duration=1.0, warmup=1.0)

    def test_result_fields(self):
        spec = RunSpec(
            system="idem",
            clients=2,
            duration=0.4,
            warmup=0.1,
            seed=3,
            profile=small_profile(),
        )
        result = run_experiment(spec)
        assert result.system == "idem"
        assert result.clients == 2
        assert result.throughput > 0
        assert result.latency.count > 0
        assert result.traffic["total_bytes"] > 0
        assert len(result.replica_stats) == 3
        assert result.metrics is None  # not kept by default
        assert "idem" in result.describe()

    def test_keep_metrics(self):
        spec = RunSpec(
            system="idem",
            clients=1,
            duration=0.3,
            warmup=0.1,
            profile=small_profile(),
            keep_metrics=True,
        )
        assert run_experiment(spec).metrics is not None

    def test_properties(self):
        spec = RunSpec(
            system="idem", clients=1, duration=0.3, warmup=0.1, profile=small_profile()
        )
        result = run_experiment(spec)
        assert result.latency_ms == pytest.approx(result.latency.mean * 1e3)
        assert result.throughput_kops == pytest.approx(result.throughput / 1e3)


class TestScheduledLoad:
    def test_load_schedule_limits_active_clients(self):
        from repro.workload.schedule import StepSchedule

        schedule = StepSchedule(((0.0, 2), (0.6, 6)))
        cluster = build_cluster(
            "idem", 6, profile=small_profile(), schedule=schedule, stop_time=1.2
        )
        cluster.run_until(0.55)
        active_early = sum(1 for c in cluster.clients if c.successes > 0)
        cluster.run_until(1.2)
        cluster.stop_clients()
        cluster.run_until(1.5)
        active_late = sum(1 for c in cluster.clients if c.successes > 0)
        assert active_early == 2
        assert active_late == 6

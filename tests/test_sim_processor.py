"""Unit tests for the serial CPU service station."""

import pytest

from repro.sim.loop import EventLoop
from repro.sim.processor import Processor


def make() -> tuple[EventLoop, Processor]:
    loop = EventLoop()
    return loop, Processor(loop)


def test_single_job_completes_after_its_cost():
    loop, cpu = make()
    seen = []
    cpu.submit(0.5, lambda: seen.append(loop.now))
    loop.run_until(1.0)
    assert seen == [0.5]


def test_jobs_are_served_fifo_and_queueing_delays_completion():
    loop, cpu = make()
    seen = []
    cpu.submit(0.5, lambda: seen.append(("a", loop.now)))
    cpu.submit(0.5, lambda: seen.append(("b", loop.now)))
    cpu.submit(0.5, lambda: seen.append(("c", loop.now)))
    loop.run_until(2.0)
    assert seen == [("a", 0.5), ("b", 1.0), ("c", 1.5)]


def test_jobs_submitted_later_queue_behind_in_flight_work():
    loop, cpu = make()
    seen = []
    cpu.submit(1.0, lambda: seen.append(("a", loop.now)))
    loop.call_after(0.5, cpu.submit, 1.0, lambda: seen.append(("b", loop.now)))
    loop.run_until(5.0)
    assert seen == [("a", 1.0), ("b", 2.0)]


def test_idle_gap_between_jobs():
    loop, cpu = make()
    seen = []
    cpu.submit(0.2, lambda: seen.append(loop.now))
    loop.call_after(1.0, cpu.submit, 0.2, lambda: seen.append(loop.now))
    loop.run_until(5.0)
    assert seen == [0.2, 1.2]


def test_speed_scales_service_time():
    loop = EventLoop()
    cpu = Processor(loop, speed=2.0)
    seen = []
    cpu.submit(1.0, lambda: seen.append(loop.now))
    loop.run_until(5.0)
    assert seen == [0.5]


def test_zero_cost_job_runs_immediately():
    loop, cpu = make()
    seen = []
    cpu.submit(0.0, seen.append, "x")
    loop.run_until(0.1)
    assert seen == ["x"]


def test_negative_cost_rejected():
    loop, cpu = make()
    with pytest.raises(ValueError):
        cpu.submit(-1.0, lambda: None)


def test_invalid_speed_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        Processor(loop, speed=0.0)


def test_utilization_tracks_busy_fraction():
    loop, cpu = make()
    cpu.submit(0.5, lambda: None)
    loop.run_until(2.0)
    assert cpu.utilization(2.0) == pytest.approx(0.25)


def test_queue_length_and_max_queue():
    loop, cpu = make()
    for _ in range(4):
        cpu.submit(0.1, lambda: None)
    # One job enters service immediately; three wait.
    assert cpu.queue_length == 3
    assert cpu.max_queue_length == 3
    loop.run_until(1.0)
    assert cpu.queue_length == 0


def test_jobs_completed_counter():
    loop, cpu = make()
    for _ in range(5):
        cpu.submit(0.1, lambda: None)
    loop.run_until(1.0)
    assert cpu.jobs_completed == 5


def test_halt_drops_queue_and_ignores_new_work():
    loop, cpu = make()
    seen = []
    cpu.submit(0.5, seen.append, "a")
    cpu.submit(0.5, seen.append, "b")
    loop.run_until(0.1)
    cpu.halt()
    cpu.submit(0.5, seen.append, "c")
    loop.run_until(5.0)
    # The in-flight job's completion is suppressed too.
    assert seen == []


def test_work_submitted_by_a_job_queues_behind_existing_queue():
    loop, cpu = make()
    seen = []

    def job_a():
        seen.append(("a", loop.now))
        cpu.submit(0.1, lambda: seen.append(("a2", loop.now)))

    cpu.submit(0.1, job_a)
    cpu.submit(0.1, lambda: seen.append(("b", loop.now)))
    loop.run_until(1.0)
    assert [label for label, _ in seen] == ["a", "b", "a2"]

"""The public API surface: every advertised name exists and imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.app",
    "repro.workload",
    "repro.core",
    "repro.cluster",
    "repro.protocols",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} is advertised but missing"


def test_top_level_quickstart_surface():
    import repro

    assert callable(repro.run_experiment)
    assert callable(repro.build_cluster)
    assert repro.RunSpec is not None
    assert repro.__version__


def test_systems_registry_is_complete():
    from repro import SYSTEMS

    expected = {
        "idem",
        "idem-nopr",
        "idem-noaqm",
        "idem-pessimistic",
        "idem-cost",
        "idem-adaptive",
        "idem-multileader",
        "paxos",
        "paxos-lbr",
        "bftsmart",
    }
    assert set(SYSTEMS) == expected


def test_experiment_registry_matches_cli_listing(capsys):
    from repro.cli import main
    from repro.experiments import EXPERIMENTS

    main(["--list"])
    out = capsys.readouterr().out
    for experiment_id in EXPERIMENTS:
        assert experiment_id in out


def test_docstrings_everywhere():
    """Every public module and public class carries a docstring."""
    import inspect

    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        assert package.__doc__, package_name
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"

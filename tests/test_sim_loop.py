"""Unit tests for the event loop."""

import pytest

from repro.sim.errors import SchedulingError, StoppedError
from repro.sim.loop import EventLoop


def test_clock_starts_at_zero():
    assert EventLoop().now == 0.0


def test_clock_starts_at_given_time():
    assert EventLoop(start_time=5.0).now == 5.0


def test_call_after_fires_at_the_right_time():
    loop = EventLoop()
    seen = []
    loop.call_after(1.5, lambda: seen.append(loop.now))
    loop.run_until(2.0)
    assert seen == [1.5]


def test_call_at_fires_at_absolute_time():
    loop = EventLoop()
    seen = []
    loop.call_at(0.25, lambda: seen.append(loop.now))
    loop.run_until(1.0)
    assert seen == [0.25]


def test_events_fire_in_time_order():
    loop = EventLoop()
    seen = []
    loop.call_after(0.3, seen.append, "c")
    loop.call_after(0.1, seen.append, "a")
    loop.call_after(0.2, seen.append, "b")
    loop.run_until(1.0)
    assert seen == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    loop = EventLoop()
    seen = []
    for label in range(10):
        loop.call_at(0.5, seen.append, label)
    loop.run_until(1.0)
    assert seen == list(range(10))


def test_run_until_advances_clock_to_horizon_without_events():
    loop = EventLoop()
    loop.run_until(3.0)
    assert loop.now == 3.0


def test_events_beyond_horizon_do_not_fire():
    loop = EventLoop()
    seen = []
    loop.call_after(5.0, seen.append, "late")
    loop.run_until(1.0)
    assert seen == []
    assert loop.pending_events == 1


def test_back_to_back_run_until_behaves_like_one_run():
    loop = EventLoop()
    seen = []
    loop.call_after(0.5, seen.append, "a")
    loop.call_after(1.5, seen.append, "b")
    loop.run_until(1.0)
    loop.run_until(2.0)
    assert seen == ["a", "b"]


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    seen = []
    event = loop.call_after(0.5, seen.append, "x")
    event.cancel()
    loop.run_until(1.0)
    assert seen == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.call_after(0.5, lambda: None)
    event.cancel()
    event.cancel()
    loop.run_until(1.0)


def test_events_scheduled_during_dispatch_run_in_the_same_pass():
    loop = EventLoop()
    seen = []

    def first():
        seen.append("first")
        loop.call_after(0.1, seen.append, "second")

    loop.call_after(0.1, first)
    loop.run_until(1.0)
    assert seen == ["first", "second"]


def test_zero_delay_event_fires_at_current_time():
    loop = EventLoop()
    seen = []
    loop.call_after(0.5, lambda: loop.call_after(0.0, seen.append, loop.now))
    loop.run_until(1.0)
    assert seen == [0.5]


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.run_until(1.0)
    with pytest.raises(SchedulingError):
        loop.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(SchedulingError):
        loop.call_after(-0.1, lambda: None)


def test_stop_halts_dispatch():
    loop = EventLoop()
    seen = []
    loop.call_after(0.1, seen.append, "a")
    loop.call_after(0.2, lambda: loop.stop())
    loop.call_after(0.3, seen.append, "b")
    loop.run_until(1.0)
    assert seen == ["a"]


def test_stopped_loop_rejects_new_events():
    loop = EventLoop()
    loop.stop()
    with pytest.raises(StoppedError):
        loop.call_after(0.1, lambda: None)


def test_run_drains_all_events():
    loop = EventLoop()
    seen = []
    loop.call_after(10.0, seen.append, "far")
    loop.run()
    assert seen == ["far"]
    assert loop.now == 10.0


def test_dispatched_event_count():
    loop = EventLoop()
    for _ in range(5):
        loop.call_after(0.1, lambda: None)
    loop.run_until(1.0)
    assert loop.dispatched_events == 5


def test_drain_cancelled_removes_only_cancelled_events():
    loop = EventLoop()
    keep = loop.call_after(1.0, lambda: None)
    gone = loop.call_after(1.0, lambda: None)
    gone.cancel()
    removed = loop.drain_cancelled()
    assert removed == 1
    assert loop.pending_events == 1
    assert not keep.cancelled

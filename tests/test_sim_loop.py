"""Unit tests for the event loop."""

import pytest

from repro.sim.errors import SchedulingError, StoppedError
from repro.sim.loop import EventLoop


def test_clock_starts_at_zero():
    assert EventLoop().now == 0.0


def test_clock_starts_at_given_time():
    assert EventLoop(start_time=5.0).now == 5.0


def test_call_after_fires_at_the_right_time():
    loop = EventLoop()
    seen = []
    loop.call_after(1.5, lambda: seen.append(loop.now))
    loop.run_until(2.0)
    assert seen == [1.5]


def test_call_at_fires_at_absolute_time():
    loop = EventLoop()
    seen = []
    loop.call_at(0.25, lambda: seen.append(loop.now))
    loop.run_until(1.0)
    assert seen == [0.25]


def test_events_fire_in_time_order():
    loop = EventLoop()
    seen = []
    loop.call_after(0.3, seen.append, "c")
    loop.call_after(0.1, seen.append, "a")
    loop.call_after(0.2, seen.append, "b")
    loop.run_until(1.0)
    assert seen == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    loop = EventLoop()
    seen = []
    for label in range(10):
        loop.call_at(0.5, seen.append, label)
    loop.run_until(1.0)
    assert seen == list(range(10))


def test_run_until_advances_clock_to_horizon_without_events():
    loop = EventLoop()
    loop.run_until(3.0)
    assert loop.now == 3.0


def test_events_beyond_horizon_do_not_fire():
    loop = EventLoop()
    seen = []
    loop.call_after(5.0, seen.append, "late")
    loop.run_until(1.0)
    assert seen == []
    assert loop.pending_events == 1


def test_back_to_back_run_until_behaves_like_one_run():
    loop = EventLoop()
    seen = []
    loop.call_after(0.5, seen.append, "a")
    loop.call_after(1.5, seen.append, "b")
    loop.run_until(1.0)
    loop.run_until(2.0)
    assert seen == ["a", "b"]


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    seen = []
    event = loop.call_after(0.5, seen.append, "x")
    event.cancel()
    loop.run_until(1.0)
    assert seen == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.call_after(0.5, lambda: None)
    event.cancel()
    event.cancel()
    loop.run_until(1.0)


def test_events_scheduled_during_dispatch_run_in_the_same_pass():
    loop = EventLoop()
    seen = []

    def first():
        seen.append("first")
        loop.call_after(0.1, seen.append, "second")

    loop.call_after(0.1, first)
    loop.run_until(1.0)
    assert seen == ["first", "second"]


def test_zero_delay_event_fires_at_current_time():
    loop = EventLoop()
    seen = []
    loop.call_after(0.5, lambda: loop.call_after(0.0, seen.append, loop.now))
    loop.run_until(1.0)
    assert seen == [0.5]


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.run_until(1.0)
    with pytest.raises(SchedulingError):
        loop.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(SchedulingError):
        loop.call_after(-0.1, lambda: None)


def test_stop_halts_dispatch():
    loop = EventLoop()
    seen = []
    loop.call_after(0.1, seen.append, "a")
    loop.call_after(0.2, lambda: loop.stop())
    loop.call_after(0.3, seen.append, "b")
    loop.run_until(1.0)
    assert seen == ["a"]


def test_stopped_loop_rejects_new_events():
    loop = EventLoop()
    loop.stop()
    with pytest.raises(StoppedError):
        loop.call_after(0.1, lambda: None)


def test_run_drains_all_events():
    loop = EventLoop()
    seen = []
    loop.call_after(10.0, seen.append, "far")
    loop.run()
    assert seen == ["far"]
    assert loop.now == 10.0


def test_dispatched_event_count():
    loop = EventLoop()
    for _ in range(5):
        loop.call_after(0.1, lambda: None)
    loop.run_until(1.0)
    assert loop.dispatched_events == 5


def test_drain_cancelled_removes_only_cancelled_events():
    loop = EventLoop()
    keep = loop.call_after(1.0, lambda: None)
    gone = loop.call_after(1.0, lambda: None)
    gone.cancel()
    removed = loop.drain_cancelled()
    assert removed == 1
    assert loop.pending_events == 1
    assert not keep.cancelled


# -- stop/resume clock contract -----------------------------------------


def test_stopped_loop_rejects_run_until():
    loop = EventLoop()
    loop.call_after(0.2, loop.stop)
    loop.run_until(1.0)
    assert loop.stopped
    with pytest.raises(StoppedError):
        loop.run_until(2.0)
    with pytest.raises(StoppedError):
        loop.run()


def test_stop_leaves_clock_at_last_dispatched_event():
    loop = EventLoop()
    loop.call_after(0.2, loop.stop)
    loop.run_until(1.0)
    # Deliberately short of the horizon: the stop froze the clock.
    assert loop.now == 0.2


def test_resume_continues_monotonically_without_time_travel():
    loop = EventLoop()
    seen = []
    loop.call_after(0.2, loop.stop)
    loop.call_after(0.6, seen.append, "late")
    loop.run_until(1.0)
    assert loop.now == 0.2 and seen == []
    loop.resume()
    assert not loop.stopped
    # Scheduling works again, the pending event survives, and the clock
    # moves forward only — never back past the stop point.
    loop.call_after(0.1, seen.append, "early")
    loop.run_until(1.0)
    assert seen == ["early", "late"]
    assert loop.now == 1.0


def test_resumed_loop_rejects_scheduling_before_stop_point():
    loop = EventLoop()
    loop.call_after(0.5, loop.stop)
    loop.run_until(1.0)
    loop.resume()
    with pytest.raises(SchedulingError):
        loop.call_at(0.25, lambda: None)


# -- tombstone accounting and auto-drain --------------------------------


def test_cancelled_pending_counter_tracks_tombstones():
    loop = EventLoop(auto_drain=False)
    events = [loop.call_after(1.0, lambda: None) for _ in range(5)]
    for event in events[:3]:
        event.cancel()
    assert loop.cancelled_pending == 3
    assert loop.pending_events == 5
    assert loop.drain_cancelled() == 3
    assert loop.cancelled_pending == 0
    assert loop.drained_tombstones == 3


def test_dispatching_a_tombstone_decrements_the_counter():
    loop = EventLoop(auto_drain=False)
    loop.call_after(0.1, lambda: None).cancel()
    loop.run_until(1.0)
    assert loop.cancelled_pending == 0
    assert loop.dispatched_events == 0


def test_auto_drain_triggers_past_both_thresholds():
    from repro.sim.loop import DRAIN_MIN_TOMBSTONES

    loop = EventLoop(auto_drain=True)
    events = [loop.call_after(1.0, lambda: None) for _ in range(DRAIN_MIN_TOMBSTONES)]
    for event in events[:-1]:
        event.cancel()
    # One shy of the minimum: nothing drained yet.
    assert loop.drained_tombstones == 0
    events[-1].cancel()
    assert loop.drained_tombstones == DRAIN_MIN_TOMBSTONES
    assert loop.pending_events == 0
    assert loop.cancelled_pending == 0


def test_auto_drain_waits_until_tombstones_dominate_the_heap():
    from repro.sim.loop import DRAIN_MIN_TOMBSTONES

    loop = EventLoop(auto_drain=True)
    live = 3 * DRAIN_MIN_TOMBSTONES
    for _ in range(live):
        loop.call_after(1.0, lambda: None)
    doomed = [loop.call_after(1.0, lambda: None) for _ in range(DRAIN_MIN_TOMBSTONES)]
    for event in doomed:
        event.cancel()
    # 512 tombstones against 1536 live events: under half, no drain.
    assert loop.drained_tombstones == 0
    assert loop.cancelled_pending == DRAIN_MIN_TOMBSTONES


def test_auto_drain_off_leaves_tombstones_in_place():
    from repro.sim.loop import DRAIN_MIN_TOMBSTONES

    loop = EventLoop(auto_drain=False)
    events = [loop.call_after(1.0, lambda: None) for _ in range(2 * DRAIN_MIN_TOMBSTONES)]
    for event in events:
        event.cancel()
    assert loop.drained_tombstones == 0
    assert loop.pending_events == 2 * DRAIN_MIN_TOMBSTONES


def test_drain_during_in_flight_dispatch_keeps_remaining_events():
    # A callback cancels enough events to force an (explicit) drain
    # while run_until is mid-dispatch; the surviving events still fire.
    loop = EventLoop(auto_drain=False)
    seen = []
    doomed = [loop.call_after(0.5, seen.append, f"doomed{i}") for i in range(10)]

    def cancel_and_drain():
        seen.append("cancel")
        for event in doomed:
            event.cancel()
        assert loop.drain_cancelled() == 10

    loop.call_after(0.1, cancel_and_drain)
    loop.call_after(0.9, seen.append, "survivor")
    loop.run_until(1.0)
    assert seen == ["cancel", "survivor"]
    assert loop.drained_tombstones == 10


def test_auto_drain_from_callback_mid_run():
    from repro.sim.loop import DRAIN_MIN_TOMBSTONES

    loop = EventLoop(auto_drain=True)
    seen = []
    doomed = [
        loop.call_after(0.5, lambda: None) for _ in range(DRAIN_MIN_TOMBSTONES)
    ]

    def cancel_all():
        for event in doomed:
            event.cancel()

    loop.call_after(0.1, cancel_all)
    loop.call_after(0.9, seen.append, "survivor")
    loop.run_until(1.0)
    assert seen == ["survivor"]
    assert loop.drained_tombstones == DRAIN_MIN_TOMBSTONES


def test_peak_heap_tracks_high_water_mark():
    loop = EventLoop()
    for _ in range(7):
        loop.call_after(0.1, lambda: None)
    loop.run_until(1.0)
    assert loop.pending_events == 0
    assert loop.peak_heap == 7

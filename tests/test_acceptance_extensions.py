"""Tests for the "further options" acceptance tests and early warning.

The paper (Section 5.1) explicitly leaves the acceptance test open and
sketches request priority categories and cost-based analysis as
alternatives; Section 5.3 sketches an early-warning optimisation for
optimistic clients.  These are implemented as
:class:`~repro.core.acceptance.PriorityClassTest`,
:class:`~repro.core.acceptance.CostAwareTest` and
``IdemClient(early_warning=...)``.
"""

import pytest

from repro.app.commands import Command, KvOp
from repro.core.acceptance import (
    CostAwareTest,
    PriorityClassTest,
    default_command_cost,
    make_acceptance_test,
)
from repro.core.config import IdemConfig


def by_client_parity(rid, command):
    """Even clients are high priority (class 0), odd ones low (class 1)."""
    return rid[0] % 2


class TestPriorityClassTest:
    def make(self):
        return PriorityClassTest(
            threshold=50,
            class_of=by_client_parity,
            start_fractions={0: 1.0, 1: 0.5},
        )

    def test_everyone_accepted_at_low_load(self):
        test = self.make()
        for cid in range(10):
            assert test.accept((cid, 1), 0.0, 10)

    def test_everyone_rejected_at_full_load(self):
        test = self.make()
        for cid in range(10):
            assert not test.accept((cid, 1), 0.0, 50)

    def test_high_priority_class_survives_heavy_load(self):
        test = self.make()
        for cid in range(0, 20, 2):  # even = high priority
            assert test.accept((cid, 1), 0.0, 49)

    def test_low_priority_class_rejected_under_pressure(self):
        test = self.make()
        decisions = [
            test.accept((cid, onr), 0.0, 48)  # 96% load, past the 50% start
            for cid in range(1, 101, 2)
            for onr in range(1, 11)
        ]
        reject_share = decisions.count(False) / len(decisions)
        assert reject_share > 0.8

    def test_low_priority_class_untouched_below_its_start(self):
        test = self.make()
        for cid in range(1, 21, 2):
            assert test.accept((cid, 1), 0.0, 20)  # 40% < 50% start

    def test_decisions_shared_across_replica_instances(self):
        a, b = self.make(), self.make()
        for cid in range(40):
            for onr in range(1, 4):
                assert a.accept((cid, onr), 0.0, 40) == b.accept((cid, onr), 0.0, 40)

    def test_unknown_class_defaults_to_highest_priority(self):
        test = PriorityClassTest(50, lambda rid, cmd: 7, {0: 0.5})
        assert test.accept((1, 1), 0.0, 49)

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityClassTest(0, by_client_parity, {})
        with pytest.raises(ValueError):
            PriorityClassTest(50, by_client_parity, {0: 1.5})


class TestCostAwareTest:
    def test_cheap_requests_accepted_until_full(self):
        test = CostAwareTest(50)
        read = Command(KvOp.READ, "k")
        assert test.accept((1, 1), 0.0, 49, read)
        assert not test.accept((1, 1), 0.0, 50, read)

    def test_expensive_request_needs_room(self):
        test = CostAwareTest(50)
        scan = Command(KvOp.SCAN, "k", 0, 10)
        assert not test.accept((1, 1), 0.0, 45, scan)  # 45 + 10 > 50
        assert test.accept((1, 1), 0.0, 20, scan)

    def test_expensive_requests_shed_early_in_aggregate(self):
        test = CostAwareTest(50, early_fraction=0.5)
        scan = Command(KvOp.SCAN, "k", 0, 8)
        decisions = [
            test.accept((cid, onr), 0.0, 40, scan)  # 80% load
            for cid in range(50)
            for onr in range(1, 11)
        ]
        reject_share = decisions.count(False) / len(decisions)
        assert 0.2 < reject_share < 0.9

    def test_missing_command_treated_as_cheap(self):
        test = CostAwareTest(50)
        assert test.accept((1, 1), 0.0, 49, None)

    def test_default_cost_estimate(self):
        assert default_command_cost(None) == 1.0
        assert default_command_cost(Command(KvOp.READ, "k")) == 1.0
        assert default_command_cost(Command(KvOp.SCAN, "k", 0, 7)) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostAwareTest(0)
        with pytest.raises(ValueError):
            CostAwareTest(50, early_fraction=2.0)

    def test_factory_selection(self):
        config = IdemConfig(acceptance="cost")
        assert isinstance(make_acceptance_test(config), CostAwareTest)


class TestCostAwareEndToEnd:
    def test_scans_shed_before_points_under_overload(self):
        """With the cost-aware test, SCAN-heavy clients feel rejection
        harder than point-op clients under the same load."""
        from dataclasses import replace

        from repro.cluster.builder import build_cluster
        from repro.workload.ycsb import WORKLOAD_UPDATE_HEAVY
        from tests.conftest import small_profile

        profile = small_profile()
        profile.workload = replace(
            WORKLOAD_UPDATE_HEAVY,
            name="scan-mix",
            record_count=50,
            read_proportion=0.3,
            update_proportion=0.4,
            scan_proportion=0.3,
            max_scan_length=8,
        )
        cluster = build_cluster(
            "idem",
            25,
            seed=2,
            profile=profile,
            overrides={"acceptance": "cost", "reject_threshold": 5},
            stop_time=0.8,
        )
        cluster.run_until(0.8)
        cluster.stop_clients()
        cluster.run_until(1.5)
        rejected = sum(r.stats["rejected"] for r in cluster.replicas)
        assert rejected > 0
        assert sum(c.successes for c in cluster.clients) > 0


class TestEarlyWarning:
    def test_warning_fires_at_ambivalence_before_abort(self):
        from repro.cluster.metrics import MetricsCollector
        from repro.core.client import IdemClient
        from repro.net.addresses import replica_address
        from repro.net.latency import ConstantLatency
        from repro.net.network import Network
        from repro.protocols.messages import Reject
        from repro.sim.loop import EventLoop
        from repro.sim.rng import RngRegistry
        from repro.workload.ycsb import YcsbWorkload

        warnings = []
        loop = EventLoop()
        rng = RngRegistry(1)
        network = Network(loop, rng, latency_model=ConstantLatency(1e-4))
        config = IdemConfig()
        client = IdemClient(
            0,
            loop,
            network,
            config,
            MetricsCollector(),
            YcsbWorkload(),
            rng,
            early_warning=warnings.append,
        )
        network.attach(client)
        client.start(at=0.0)
        loop.run_until(0.001)
        rid = client.current_rid
        client.deliver(replica_address(0), Reject(rid))
        assert warnings == []  # one reject is not ambivalence yet
        client.deliver(replica_address(1), Reject(rid))
        assert len(warnings) == 1  # n - f rejects: warn now...
        assert client.rejections == 0  # ...but keep waiting
        assert client.early_warnings == 1
        loop.run_until(loop.now + config.optimistic_grace + 1e-3)
        assert client.rejections == 1  # grace expired: abandoned

    def test_no_warning_when_reply_wins(self):
        from repro.cluster.metrics import MetricsCollector
        from repro.core.client import IdemClient
        from repro.net.addresses import replica_address
        from repro.net.latency import ConstantLatency
        from repro.net.network import Network
        from repro.protocols.messages import Reply
        from repro.sim.loop import EventLoop
        from repro.sim.rng import RngRegistry
        from repro.workload.ycsb import YcsbWorkload

        warnings = []
        loop = EventLoop()
        rng = RngRegistry(1)
        network = Network(loop, rng, latency_model=ConstantLatency(1e-4))
        client = IdemClient(
            0,
            loop,
            network,
            IdemConfig(),
            MetricsCollector(),
            YcsbWorkload(),
            rng,
            early_warning=warnings.append,
        )
        network.attach(client)
        client.start(at=0.0)
        loop.run_until(0.001)
        client.deliver(replica_address(0), Reply(client.current_rid, True, 1, 0))
        assert warnings == []
        assert client.successes == 1

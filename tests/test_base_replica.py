"""White-box tests of the shared replica machinery (protocols.base).

These instantiate a single IDEM replica on a quiet network and drive it
with hand-crafted messages, pinning down edge cases the integration
suite only exercises incidentally.
"""

import pytest

from repro.app.commands import Command, KvOp
from repro.app.kvstore import KeyValueStore
from repro.core.config import IdemConfig
from repro.core.replica import IdemReplica
from repro.net.addresses import client_address, replica_address
from repro.net.latency import ConstantLatency
from repro.net.network import Network, NetworkNode
from repro.protocols.messages import (
    Commit,
    Decided,
    NewView,
    NewViewAck,
    ProposalRequest,
    Propose,
    Reply,
    Request,
    ViewChange,
    WindowEntry,
)
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry


class Recorder(NetworkNode):
    """A network endpoint that just records what it receives."""

    def __init__(self, address, loop):
        self.address = address
        self.loop = loop
        self.messages = []

    def deliver(self, src, message):
        self.messages.append((src, message))

    def of_type(self, message_type):
        return [m for _, m in self.messages if isinstance(m, message_type)]


def make_replica(index=1, config=None):
    """One real replica (index 1) surrounded by recorders."""
    loop = EventLoop()
    rng = RngRegistry(7)
    network = Network(loop, rng, latency_model=ConstantLatency(1e-5))
    config = config or IdemConfig(cpu_jitter_sigma=0.0)
    replica = IdemReplica(index, loop, network, config, KeyValueStore(), rng)
    network.attach(replica)
    peers = {}
    for i in range(config.n):
        if i != index:
            peers[i] = Recorder(replica_address(i), loop)
            network.attach(peers[i])
    client = Recorder(client_address(0), loop)
    network.attach(client)
    return loop, replica, peers, client


def request(onr=1, cid=0):
    return Request((cid, onr), Command(KvOp.UPDATE, "key", 10))


def settle(loop, seconds=0.01):
    loop.run_until(loop.now + seconds)


class TestRequestPath:
    def test_accept_occupies_a_slot_and_requires(self):
        loop, replica, peers, client = make_replica()
        replica.deliver(client.address, request())
        settle(loop)
        assert replica.active_count == 1
        # REQUIRE went to the leader of view 0 (replica 0).
        requires = peers[0].of_type(type(None)) or peers[0].messages
        assert any(
            type(m).__name__ == "RequireBatch" for _, m in peers[0].messages
        )

    def test_leader_counts_its_own_acceptance(self):
        loop, replica, peers, client = make_replica(index=0)  # leader of view 0
        replica.deliver(client.address, request())
        settle(loop)
        assert ((0, 1) in replica.require_counts) or ((0, 1) in replica.proposed_rids)

    def test_old_operation_number_is_ignored_after_execution(self):
        loop, replica, peers, client = make_replica()
        replica.executed_onr[0] = 5
        replica.deliver(client.address, request(onr=3))
        settle(loop)
        assert replica.active_count == 0

    def test_executed_duplicate_resends_cached_reply(self):
        loop, replica, peers, client = make_replica()
        replica.executed_onr[0] = 1
        replica.last_reply[0] = Reply((0, 1), True, 1, 0)
        replica.deliver(client.address, request(onr=1))
        settle(loop)
        assert client.of_type(Reply)


class TestCommitPath:
    def test_propose_from_leader_commits_on_fast_path(self):
        """f+1 = propose + own commit: a follower executes immediately."""
        loop, replica, peers, client = make_replica()
        replica.deliver(client.address, request())
        settle(loop)
        replica.deliver(replica_address(0), Propose(0, 1, ((0, 1),)))
        settle(loop)
        assert replica.exec_sqn == 1
        assert replica.active_count == 0  # slot freed on execution

    def test_commit_before_propose_is_buffered(self):
        loop, replica, peers, client = make_replica()
        replica.deliver(client.address, request())
        replica.deliver(replica_address(2), Commit(0, 1))
        settle(loop)
        assert replica.exec_sqn == 0  # nothing executed yet
        replica.deliver(replica_address(0), Propose(0, 1, ((0, 1),)))
        settle(loop)
        assert replica.exec_sqn == 1

    def test_stale_view_proposal_is_ignored(self):
        loop, replica, peers, client = make_replica()
        replica.view = 3
        replica.deliver(replica_address(0), Propose(0, 1, ((0, 1),)))
        settle(loop)
        assert 1 not in replica.instances

    def test_higher_view_proposal_adopts_the_view(self):
        loop, replica, peers, client = make_replica()
        replica.deliver(client.address, request())
        settle(loop)
        replica.deliver(replica_address(0), Propose(3, 1, ((0, 1),)))
        settle(loop)
        assert replica.view == 3
        assert replica.exec_sqn == 1

    def test_out_of_order_instances_execute_in_order(self):
        loop, replica, peers, client = make_replica()
        replica.deliver(client.address, request(onr=1))
        replica.deliver(client.address, request(onr=2, cid=1))
        settle(loop)
        replica.deliver(replica_address(0), Propose(0, 2, ((1, 2),)))
        settle(loop)
        assert replica.exec_sqn == 0  # gap at sqn 1
        replica.deliver(replica_address(0), Propose(0, 1, ((0, 1),)))
        settle(loop)
        assert replica.exec_sqn == 2
        assert replica.exec_order_digest == hash((hash((0, (0, 1))), (1, 2)))


class TestDecidedPath:
    def test_decided_is_adopted_regardless_of_view(self):
        loop, replica, peers, client = make_replica()
        replica.view = 9
        replica.deliver(client.address, request())
        settle(loop)
        replica.deliver(replica_address(2), Decided(1, ((0, 1),)))
        settle(loop)
        assert replica.exec_sqn == 1

    def test_decided_below_execution_head_is_ignored(self):
        loop, replica, peers, client = make_replica()
        replica.exec_sqn = 5
        replica.deliver(replica_address(2), Decided(3, ((0, 1),)))
        settle(loop)
        assert 3 not in replica.instances

    def test_proposal_request_for_executed_instance_yields_decided(self):
        loop, replica, peers, client = make_replica()
        replica.deliver(client.address, request())
        settle(loop)
        replica.deliver(replica_address(0), Propose(0, 1, ((0, 1),)))
        settle(loop)
        assert replica.exec_sqn == 1
        replica.deliver(replica_address(2), ProposalRequest(1))
        settle(loop)
        assert peers[2].of_type(Decided)

    def test_proposal_request_for_live_instance_resends_the_proposal(self):
        from repro.protocols.messages import RequireBatch

        loop, replica, peers, client = make_replica(index=0)
        replica.deliver(client.address, request())
        settle(loop)
        # A follower's REQUIRE completes the quorum: the leader proposes
        # but cannot commit alone (needs one COMMIT back).
        replica.deliver(replica_address(1), RequireBatch(((0, 1),)))
        settle(loop)
        assert 1 in replica.instances
        assert replica.exec_sqn == 0
        peers[2].messages.clear()
        replica.deliver(replica_address(2), ProposalRequest(1))
        settle(loop)
        assert peers[2].of_type(Propose)


class TestViewChangePath:
    def test_viewchange_from_one_peer_makes_us_join(self):
        # Use index 2 so the replica is NOT the leader of the target
        # view; otherwise joining immediately activates the view.
        loop, replica, peers, client = make_replica(index=2)
        replica.deliver(client.address, request())
        settle(loop)
        replica.deliver(replica_address(0), ViewChange(1, ()))
        settle(loop)
        assert replica._vc_target == 1
        # Our own VIEWCHANGE went out to the peers.
        assert peers[0].of_type(ViewChange)

    def test_new_leader_activates_with_quorum(self):
        loop, replica, peers, client = make_replica(index=1)
        replica.deliver(client.address, request())
        settle(loop)
        # Replica 1 leads view 1; peers demand it.
        entry = WindowEntry(1, 0, ((0, 1),))
        replica.deliver(replica_address(2), ViewChange(1, (entry,)))
        settle(loop)
        assert replica.view == 1
        assert replica.is_leader
        assert peers[0].of_type(NewView)
        # The merged entry was installed; it commits once a follower
        # acknowledges the new view.
        assert 1 in replica.instances
        assert replica.exec_sqn == 0
        replica.deliver(replica_address(0), NewViewAck(1, (1,)))
        settle(loop)
        assert replica.exec_sqn == 1

    def test_follower_installs_newview_and_acks(self):
        loop, replica, peers, client = make_replica(index=2)
        replica.deliver(client.address, request())
        settle(loop)
        entry = WindowEntry(1, 1, ((0, 1),))
        replica.deliver(replica_address(1), NewView(1, (entry,), 2))
        settle(loop)
        assert replica.view == 1
        assert peers[0].of_type(NewViewAck)
        assert replica.exec_sqn == 1  # commits: leader + self = quorum

    def test_newview_from_wrong_leader_is_ignored(self):
        loop, replica, peers, client = make_replica(index=2)
        entry = WindowEntry(1, 1, ((0, 1),))
        replica.deliver(replica_address(0), NewView(1, (entry,), 2))  # 0 != 1 % 3
        settle(loop)
        assert replica.view == 0

    def test_progress_timeout_starts_a_view_change(self):
        config = IdemConfig(view_change_timeout=0.05, cpu_jitter_sigma=0.0)
        loop, replica, peers, client = make_replica(config=config)
        replica.deliver(client.address, request())
        loop.run_until(0.2)  # leader (recorder) never answers
        assert replica._vc_target is not None
        assert peers[0].of_type(ViewChange)

    def test_idle_replica_never_suspects_anyone(self):
        config = IdemConfig(view_change_timeout=0.05, cpu_jitter_sigma=0.0)
        loop, replica, peers, client = make_replica(config=config)
        loop.run_until(0.5)
        assert replica.view == 0
        assert not peers[0].of_type(ViewChange)


class TestWindowInvariants:
    def test_window_never_passes_execution_head(self):
        loop, replica, peers, client = make_replica()
        # Observe a far-future commit; window start must stay behind
        # our execution head even though the observation is far ahead.
        replica.deliver(replica_address(0), Commit(0, 500))
        settle(loop)
        assert replica.window_start <= replica.exec_sqn + 1

    def test_crash_stops_everything(self):
        loop, replica, peers, client = make_replica()
        replica.crash()
        replica.deliver(client.address, request())
        settle(loop)
        assert replica.active_count == 0
        assert not peers[0].messages

"""Unit tests for protocol configurations and their validation."""

import pytest

from repro.core.config import IdemConfig
from repro.protocols.config import ProtocolConfig, fault_tolerance, quorum_size
from repro.protocols.paxos.config import PaxosConfig


class TestProtocolConfig:
    def test_defaults_are_consistent(self):
        config = ProtocolConfig()
        assert config.n == 2 * config.f + 1
        assert config.quorum == config.f + 1

    def test_leader_rotates_through_the_group(self):
        config = ProtocolConfig(n=5, f=2)
        assert [config.leader_of(view) for view in range(6)] == [0, 1, 2, 3, 4, 0]

    def test_topology_helpers_agree_with_the_invariants(self):
        for n in (1, 3, 5, 7, 9):
            f = fault_tolerance(n)
            assert n == 2 * f + 1
            config = ProtocolConfig(n=n, f=f)
            assert quorum_size(n) == config.quorum == f + 1

    def test_rejects_wrong_group_size(self):
        with pytest.raises(ValueError):
            ProtocolConfig(n=4, f=1)

    def test_five_replica_group(self):
        config = ProtocolConfig(n=5, f=2)
        assert config.quorum == 3

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            ProtocolConfig(batch_max=0)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            ProtocolConfig(window_size=0)


class TestIdemConfig:
    def test_defaults_match_the_paper(self):
        config = IdemConfig()
        assert config.reject_threshold == 50  # RT = 50 (Section 7.1)
        assert config.aqm_time_slice == 2.0
        assert config.forward_timeout == 0.010
        assert config.optimistic_grace == 0.005
        assert config.acceptance == "aqm"
        assert config.optimistic_client

    def test_r_max(self):
        config = IdemConfig(reject_threshold=50)
        assert config.r_max == 150

    def test_window_must_cover_r_max(self):
        with pytest.raises(ValueError):
            IdemConfig(reject_threshold=500, window_size=512)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            IdemConfig(reject_threshold=0)

    def test_rejects_bad_aqm_fraction(self):
        with pytest.raises(ValueError):
            IdemConfig(aqm_start_fraction=1.5)


class TestPaxosConfig:
    def test_lbr_disabled_by_default(self):
        assert not PaxosConfig().leader_rejection

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PaxosConfig(reject_threshold=0)

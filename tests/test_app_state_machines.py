"""Unit tests for the replicated applications (KV store and counter)."""

import pytest
from hypothesis import given, strategies as st

from repro.app.commands import Command, KvOp
from repro.app.counter import CounterApp
from repro.app.kvstore import KeyValueStore


class TestKeyValueStore:
    def test_update_then_read(self):
        store = KeyValueStore()
        store.apply(Command(KvOp.UPDATE, "k", 100))
        result = store.apply(Command(KvOp.READ, "k"))
        assert result.ok
        assert result.value_size == 100
        assert result.reply_bytes == 101

    def test_read_missing_key(self):
        result = KeyValueStore().apply(Command(KvOp.READ, "missing"))
        assert not result.ok

    def test_insert_counts_records(self):
        store = KeyValueStore()
        for i in range(5):
            store.apply(Command(KvOp.INSERT, f"k{i}", 10))
        assert len(store) == 5

    def test_update_overwrites(self):
        store = KeyValueStore()
        store.apply(Command(KvOp.UPDATE, "k", 100))
        store.apply(Command(KvOp.UPDATE, "k", 50))
        assert store.get_size("k") == 50
        assert len(store) == 1

    def test_scan_is_deterministic_and_bounded(self):
        store = KeyValueStore()
        for i in range(10):
            store.apply(Command(KvOp.INSERT, f"k{i}", 10))
        result = store.apply(Command(KvOp.SCAN, "k3", 0, 4))
        assert result.ok
        assert result.value_size == 40  # k3..k6

    def test_scan_costs_scale_with_length(self):
        store = KeyValueStore(base_execution_cost=1e-6)
        point = store.execution_cost(Command(KvOp.READ, "k"))
        scan = store.execution_cost(Command(KvOp.SCAN, "k", 0, 10))
        assert scan == pytest.approx(10 * point)

    def test_snapshot_restore_round_trip(self):
        store = KeyValueStore()
        store.apply(Command(KvOp.UPDATE, "a", 1))
        store.apply(Command(KvOp.UPDATE, "b", 2))
        snapshot = store.snapshot()
        store.apply(Command(KvOp.UPDATE, "a", 99))
        store.restore(snapshot)
        assert store.get_size("a") == 1
        assert store.get_size("b") == 2

    def test_snapshot_is_a_copy(self):
        store = KeyValueStore()
        store.apply(Command(KvOp.UPDATE, "a", 1))
        snapshot = store.snapshot()
        store.apply(Command(KvOp.UPDATE, "a", 2))
        assert snapshot["a"] == 1

    def test_digest_reflects_state(self):
        a, b = KeyValueStore(), KeyValueStore()
        a.apply(Command(KvOp.UPDATE, "k", 1))
        assert a.digest() != b.digest()
        b.apply(Command(KvOp.UPDATE, "k", 1))
        assert a.digest() == b.digest()

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            KeyValueStore().apply(Command(KvOp.INCREMENT, "k"))

    def test_snapshot_bytes_counts_values(self):
        store = KeyValueStore()
        store.apply(Command(KvOp.UPDATE, "key", 100))
        assert store.snapshot_bytes() == len("key") + 8 + 100

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(1, 100)),
            max_size=50,
        )
    )
    def test_same_command_sequence_same_digest(self, operations):
        a, b = KeyValueStore(), KeyValueStore()
        for key, size in operations:
            a.apply(Command(KvOp.UPDATE, key, size))
            b.apply(Command(KvOp.UPDATE, key, size))
        assert a.digest() == b.digest()


class TestCounterApp:
    def test_increment_and_read(self):
        app = CounterApp()
        app.apply(Command(KvOp.INCREMENT, "c"))
        app.apply(Command(KvOp.INCREMENT, "c"))
        result = app.apply(Command(KvOp.READ, "c"))
        assert result.value_size == 2
        assert app.value("c") == 2

    def test_unknown_key_reads_zero(self):
        assert CounterApp().value("nope") == 0

    def test_snapshot_restore(self):
        app = CounterApp()
        app.apply(Command(KvOp.INCREMENT, "c"))
        snapshot = app.snapshot()
        app.apply(Command(KvOp.INCREMENT, "c"))
        app.restore(snapshot)
        assert app.value("c") == 1

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            CounterApp().apply(Command(KvOp.SCAN, "x"))

    def test_operations_applied_counter(self):
        app = CounterApp()
        for _ in range(3):
            app.apply(Command(KvOp.INCREMENT, "c"))
        assert app.operations_applied == 3


class TestCommand:
    def test_payload_bytes(self):
        command = Command(KvOp.UPDATE, "key", 100)
        assert command.payload_bytes() == 1 + 3 + 100

    def test_read_payload_has_no_value(self):
        command = Command(KvOp.READ, "key")
        assert command.payload_bytes() == 1 + 3

"""White-box tests of IDEM's forwarding mechanism (Section 5.2)."""

from repro.app.commands import Command, KvOp
from repro.app.kvstore import KeyValueStore
from repro.core.config import IdemConfig
from repro.core.replica import IdemReplica
from repro.net.addresses import client_address, replica_address
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.protocols.messages import Fetch, Forward, Propose, Request
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry

from tests.test_base_replica import Recorder


def make_replica(index=1, **config_kwargs):
    config_kwargs.setdefault("cpu_jitter_sigma", 0.0)
    loop = EventLoop()
    rng = RngRegistry(5)
    network = Network(loop, rng, latency_model=ConstantLatency(1e-5))
    config = IdemConfig(**config_kwargs)
    replica = IdemReplica(index, loop, network, config, KeyValueStore(), rng)
    network.attach(replica)
    peers = {
        i: Recorder(replica_address(i), loop)
        for i in range(config.n)
        if i != index
    }
    for recorder in peers.values():
        network.attach(recorder)
    client = Recorder(client_address(0), loop)
    network.attach(client)
    return loop, replica, peers, client


def request(onr=1, cid=0):
    return Request((cid, onr), Command(KvOp.UPDATE, "k", 10))


class TestDelayedForwarding:
    def test_unexecuted_request_is_forwarded_after_the_timeout(self):
        loop, replica, peers, client = make_replica(forward_timeout=0.01)
        replica.deliver(client.address, request())
        loop.run_until(0.03)  # leader (a recorder) never proposes
        forwards = peers[0].of_type(Forward)
        assert forwards
        assert forwards[0].request.rid == (0, 1)

    def test_each_request_is_forwarded_once(self):
        loop, replica, peers, client = make_replica(forward_timeout=0.01)
        replica.deliver(client.address, request())
        loop.run_until(0.2)
        assert len(peers[0].of_type(Forward)) == 1
        assert replica.stats["forwards"] == 1

    def test_executed_request_is_never_forwarded(self):
        loop, replica, peers, client = make_replica(forward_timeout=0.01)
        replica.deliver(client.address, request())
        replica.deliver(replica_address(0), Propose(0, 1, ((0, 1),)))
        loop.run_until(0.05)
        assert not peers[0].of_type(Forward)
        assert replica.stats["forwards"] == 0


class TestRejectedCache:
    def full_replica(self):
        """A replica with zero slots: every client request is rejected."""
        return make_replica(reject_threshold=1, acceptance="taildrop")

    def test_rejected_body_is_served_from_the_cache_on_fetch(self):
        loop, replica, peers, client = make_replica()
        # Force a rejection by filling the only slot.
        replica.acceptance.threshold = 1  # type: ignore[attr-defined]
        replica.deliver(client.address, request(onr=1, cid=1))
        loop.run_until(0.001)
        replica.deliver(client.address, request(onr=1, cid=2))  # rejected
        loop.run_until(0.002)
        assert (2, 1) in replica.rejected_cache
        peers[2].messages.clear()
        replica.deliver(replica_address(2), Fetch((2, 1)))
        loop.run_until(0.003)
        answers = peers[2].of_type(Forward)
        assert answers and answers[0].request.rid == (2, 1)

    def test_committed_rejected_request_executes_from_the_cache(self):
        loop, replica, peers, client = make_replica()
        replica.acceptance.threshold = 1  # type: ignore[attr-defined]
        replica.deliver(client.address, request(onr=1, cid=1))
        loop.run_until(0.001)
        replica.deliver(client.address, request(onr=1, cid=2))  # rejected
        loop.run_until(0.002)
        # The group ordered the rejected request anyway.
        replica.deliver(replica_address(0), Propose(0, 1, ((2, 1),)))
        loop.run_until(0.005)
        assert replica.exec_sqn == 1
        assert replica.stats["fetches"] == 0  # cache hit, no fetch

    def test_cache_eviction_is_fifo_and_bounded(self):
        loop, replica, peers, client = make_replica(rejected_cache_size=2)
        replica.acceptance.threshold = 1  # type: ignore[attr-defined]
        replica.deliver(client.address, request(onr=1, cid=1))  # occupies slot
        loop.run_until(0.001)
        for cid in (2, 3, 4):
            replica.deliver(client.address, request(onr=1, cid=cid))
        loop.run_until(0.002)
        assert len(replica.rejected_cache) == 2
        assert (2, 1) not in replica.rejected_cache  # evicted first
        assert (4, 1) in replica.rejected_cache


class TestFetching:
    def test_commit_of_unknown_body_triggers_a_fetch(self):
        loop, replica, peers, client = make_replica()
        replica.deliver(replica_address(0), Propose(0, 1, ((9, 1),)))
        loop.run_until(0.005)
        assert replica.stats["fetches"] >= 1
        assert peers[0].of_type(Fetch) or peers[2].of_type(Fetch)

    def test_forwarded_body_completes_the_execution(self):
        loop, replica, peers, client = make_replica()
        replica.deliver(replica_address(0), Propose(0, 1, ((9, 1),)))
        loop.run_until(0.005)
        assert replica.exec_sqn == 0
        replica.deliver(replica_address(0), Forward(request(onr=1, cid=9)))
        loop.run_until(0.01)
        assert replica.exec_sqn == 1

    def test_forwarded_request_is_accepted_unconditionally(self):
        loop, replica, peers, client = make_replica(
            reject_threshold=1, acceptance="taildrop"
        )
        replica.deliver(client.address, request(onr=1, cid=1))
        loop.run_until(0.001)
        assert replica.active_count == 1  # slot full
        replica.deliver(replica_address(0), Forward(request(onr=1, cid=2)))
        loop.run_until(0.002)
        assert replica.active_count == 2  # beyond the threshold

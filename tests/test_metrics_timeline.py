"""Edge cases of MetricsCollector's bucketed timelines and windows.

Timelines feed the crash plots (Figure 10); the subtle cases are samples
landing exactly on bucket boundaries, buckets with no samples, and
events outside the measurement window.
"""

import pytest

from repro.cluster.metrics import MetricsCollector


class TestTimelineBuckets:
    def test_sample_on_bucket_boundary(self):
        collector = MetricsCollector(bucket_width=0.25)
        collector.record_success(0.25, latency=0.010)
        timeline = collector.latency_timeline()
        assert timeline == [(0.25, pytest.approx(0.010))]

    def test_empty_buckets_are_skipped(self):
        collector = MetricsCollector(bucket_width=0.25)
        collector.record_success(0.0, latency=0.010)
        collector.record_success(1.0, latency=0.030)
        timeline = collector.latency_timeline()
        assert [time for time, _mean in timeline] == [0.0, 1.0]

    def test_bucket_means_average_their_samples(self):
        collector = MetricsCollector(bucket_width=0.5)
        collector.record_success(0.6, latency=0.010)
        collector.record_success(0.9, latency=0.030)
        timeline = collector.latency_timeline()
        assert timeline == [(0.5, pytest.approx(0.020))]

    def test_reject_timeline_is_independent(self):
        collector = MetricsCollector(bucket_width=0.25)
        collector.record_success(0.1, latency=0.010)
        collector.record_reject(0.6, latency=0.002)
        assert [time for time, _ in collector.latency_timeline()] == [0.0]
        assert [time for time, _ in collector.reject_latency_timeline()] == [0.5]


class TestMeasurementWindow:
    def test_reject_before_window_start_excluded_from_summary(self):
        collector = MetricsCollector(window_start=0.5, window_end=2.0)
        collector.record_reject(0.1, latency=0.002)
        collector.record_reject(1.0, latency=0.004)
        summary = collector.reject_latency_summary()
        assert summary.count == 1
        assert summary.mean == pytest.approx(0.004)

    def test_early_reject_still_marks_first_reject_time(self):
        collector = MetricsCollector(window_start=0.5)
        collector.record_reject(0.1, latency=0.002)
        assert collector.first_reject_time == 0.1

    def test_early_reject_still_lands_in_timeline(self):
        # Timelines cover the whole run (warm-up included) — the crash
        # plots need them even where the summary window excludes samples.
        collector = MetricsCollector(window_start=0.5, bucket_width=0.25)
        collector.record_reject(0.1, latency=0.002)
        assert collector.reject_latency_timeline() == [(0.0, pytest.approx(0.002))]

    def test_window_bounds_throughput(self):
        collector = MetricsCollector(
            window_start=1.0, window_end=2.0, bucket_width=0.25
        )
        for time in (0.1, 1.1, 1.6, 2.5):
            collector.record_success(time, latency=0.01)
        assert collector.throughput() == pytest.approx(2.0)

    def test_empty_window_rates_are_zero(self):
        collector = MetricsCollector(window_start=1.0, window_end=1.0)
        collector.record_success(0.5, latency=0.01)
        assert collector.throughput() == 0.0
        assert collector.reject_throughput() == 0.0

    def test_timeout_counted_regardless_of_window(self):
        collector = MetricsCollector(window_start=0.5)
        collector.record_timeout(0.1)
        collector.record_timeout(0.9)
        assert collector.timeouts == 2

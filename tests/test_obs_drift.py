"""Tests for drift detection (repro.obs.detect) and the IDEM
active-slot leak it exists to catch.

The synthetic-recorder tests pin each rule's firing and non-firing
conditions; the replica-level tests pin the leak fix itself
(``IdemReplica._release_dedup_dead``); the storm regression runs the
figR reject-retry arm with the fix monkeypatched away and demands the
``active_set_leak`` detector flags it — and stays silent on the fixed
code.
"""

from __future__ import annotations

import pytest

from repro.app.commands import Command, KvOp
from repro.cluster.builder import build_cluster
from repro.core.replica import ActiveRequest, IdemReplica
from repro.obs import DetectorConfig, FlightRecorder, run_detectors
from repro.protocols.messages import Request

from tests.conftest import small_profile

INTERVAL = 0.01
CONFIG = DetectorConfig(interval=INTERVAL)


def _record_ticks(recorder, node, start, end, **series):
    """Record constant-or-callable series on the detector's cadence."""
    ticks = int(round((end - start) / INTERVAL))
    for tick in range(ticks + 1):
        time = start + tick * INTERVAL
        for name, value in series.items():
            recorder.record(
                time, node, name, value(time) if callable(value) else float(value)
            )


def _rules(findings):
    return sorted({finding.rule for finding in findings})


class TestActiveSetLeakRule:
    def test_sustained_dead_slots_fire(self):
        recorder = FlightRecorder()
        _record_ticks(
            recorder, "replica-0", 0.0, 1.0,
            up=1.0, dead_slots=1.0, active_slots=5.0, admission_threshold=5.0,
        )
        findings = run_detectors(recorder, CONFIG)
        assert _rules(findings) == ["active_set_leak"]
        finding = findings[0]
        assert finding.node == "replica-0"
        assert finding.end - finding.start >= CONFIG.min_window
        assert finding.evidence["dead_end"] == 1.0
        assert finding.evidence["threshold"] == 5.0

    def test_growing_dead_slots_fire(self):
        recorder = FlightRecorder()
        _record_ticks(
            recorder, "replica-0", 0.0, 1.0,
            up=1.0, dead_slots=lambda t: 1.0 + int(t * 4),
        )
        findings = run_detectors(recorder, CONFIG)
        assert "active_set_leak" in _rules(findings)

    def test_promptly_released_slots_do_not_fire(self):
        recorder = FlightRecorder()
        # Dead slots appear for 0.2 s at a time, then are swept — the
        # healthy transient the execute-path sweep leaves behind.
        _record_ticks(
            recorder, "replica-0", 0.0, 2.0,
            up=1.0, dead_slots=lambda t: 1.0 if (t % 0.5) < 0.2 else 0.0,
        )
        assert run_detectors(recorder, CONFIG) == []

    def test_decreasing_count_breaks_the_window(self):
        recorder = FlightRecorder()
        # Climbs for 0.4 s, releases one, climbs for 0.4 s: each leg is
        # shorter than min_window, so no finding.
        _record_ticks(
            recorder, "replica-0", 0.0, 0.8,
            up=1.0, dead_slots=lambda t: 2.0 if 0.35 < t <= 0.45 else 3.0,
        )
        assert run_detectors(recorder, CONFIG) == []

    def test_downtime_gap_breaks_the_window(self):
        recorder = FlightRecorder()
        _record_ticks(recorder, "replica-0", 0.0, 0.3, up=1.0, dead_slots=1.0)
        # 0.4 s sampling gap (crash), then another short stretch.
        _record_ticks(recorder, "replica-0", 0.7, 1.0, up=1.0, dead_slots=1.0)
        assert run_detectors(recorder, CONFIG) == []

    def test_halted_replica_does_not_fire(self):
        recorder = FlightRecorder()
        _record_ticks(recorder, "replica-0", 0.0, 1.0, up=0.0, dead_slots=2.0)
        assert run_detectors(recorder, CONFIG) == []

    def test_protocol_without_dedup_series_is_exempt(self):
        recorder = FlightRecorder()
        _record_ticks(
            recorder, "replica-0", 0.0, 1.0,
            up=1.0, active_slots=50.0, admission_threshold=50.0,
        )
        assert "active_set_leak" not in _rules(run_detectors(recorder, CONFIG))


class TestOtherRules:
    def test_threshold_pinned_fires(self):
        recorder = FlightRecorder()
        _record_ticks(
            recorder, "replica-1", 0.0, 1.0,
            up=1.0, active_slots=5.0, admission_threshold=5.0,
            executed_total=100.0, rejected_total=lambda t: 100.0 * t,
        )
        assert "threshold_pinned" in _rules(run_detectors(recorder, CONFIG))

    def test_threshold_pinned_needs_flat_executions(self):
        recorder = FlightRecorder()
        _record_ticks(
            recorder, "replica-1", 0.0, 1.0,
            up=1.0, active_slots=5.0, admission_threshold=5.0,
            executed_total=lambda t: 50.0 * t, rejected_total=lambda t: 100.0 * t,
        )
        assert "threshold_pinned" not in _rules(run_detectors(recorder, CONFIG))

    def test_occupancy_imbalance_fires_on_growth(self):
        recorder = FlightRecorder()
        _record_ticks(
            recorder, "replica-2", 0.0, 1.0,
            up=1.0, active_slots=lambda t: 1.0 + int(t * 6), executed_total=40.0,
        )
        assert "occupancy_imbalance" in _rules(run_detectors(recorder, CONFIG))

    def test_post_fault_non_recovery(self):
        recorder = FlightRecorder()
        # Goodput climbs before the fault, flatlines after it.
        _record_ticks(
            recorder, "clients", 0.0, 3.0,
            successes=lambda t: 100.0 * min(t, 1.0),
        )
        recorder.mark(1.0, 1.5, "crash replica-1")
        findings = run_detectors(recorder, CONFIG)
        assert _rules(findings) == ["post_fault_non_recovery"]

    def test_recovered_fault_is_silent(self):
        recorder = FlightRecorder()
        _record_ticks(
            recorder, "clients", 0.0, 3.0, successes=lambda t: 100.0 * t,
        )
        recorder.mark(1.0, 1.5, "crash replica-1")
        assert run_detectors(recorder, CONFIG) == []

    def test_findings_are_sorted(self):
        recorder = FlightRecorder()
        for node in ("replica-2", "replica-0"):
            _record_ticks(recorder, node, 0.0, 1.0, up=1.0, dead_slots=1.0)
        findings = run_detectors(recorder, CONFIG)
        assert [finding.node for finding in findings] == ["replica-0", "replica-2"]


def _any_command() -> Command:
    return Command(KvOp.UPDATE, "user00000001", 10)


def _plant_dead_slot(replica, cid: int, onr: int, executed: int) -> None:
    """Fabricate a dedup-dead active entry: the client already executed
    ``executed`` >= ``onr`` elsewhere while (cid, onr) still holds a slot."""
    rid = (cid, onr)
    request = Request(rid, _any_command())
    replica.active[rid] = ActiveRequest(request, 0.0)
    replica.request_store[rid] = request
    replica.executed_onr[cid] = executed


class TestLeakFix:
    """Unit tests of ``IdemReplica._release_dedup_dead`` itself."""

    def _cluster(self, **overrides):
        overrides.setdefault("reject_threshold", 1)
        overrides.setdefault("acceptance", "taildrop")
        # Clients stay idle: the tests inject requests directly so the
        # only traffic is the one being asserted about.
        return build_cluster(
            "idem",
            1,
            seed=1,
            profile=small_profile(),
            overrides=overrides,
            start_clients=False,
        )

    def test_direct_sweep_frees_and_caches(self):
        cluster = self._cluster()
        replica = cluster.replicas[1]
        _plant_dead_slot(replica, cid=77, onr=1, executed=2)
        _plant_dead_slot(replica, cid=77, onr=2, executed=2)
        replica._release_dedup_dead(77)
        assert (77, 1) not in replica.active
        assert (77, 2) not in replica.active
        assert (77, 1) not in replica.request_store
        # Bodies stay servable for late proposals by other replicas.
        assert (77, 1) in replica.rejected_cache
        assert (77, 2) in replica.rejected_cache

    def test_sweep_spares_live_entries(self):
        cluster = self._cluster()
        replica = cluster.replicas[1]
        _plant_dead_slot(replica, cid=77, onr=3, executed=2)  # onr 3 is live
        replica._release_dedup_dead(77)
        assert (77, 3) in replica.active

    def test_reject_path_sweeps(self):
        cluster = self._cluster()
        replica = cluster.replicas[1]
        _plant_dead_slot(replica, cid=77, onr=1, executed=2)
        # Occupancy 1 >= threshold 1, so this request is rejected — and
        # the reject path must free the client's dead slot.
        replica.deliver(cluster.clients[0].address, Request((77, 3), _any_command()))
        cluster.run_until(0.05)
        assert (77, 1) not in replica.active

    def test_accept_path_sweeps(self):
        cluster = self._cluster(reject_threshold=10)
        replica = cluster.replicas[1]
        _plant_dead_slot(replica, cid=88, onr=1, executed=3)
        replica.deliver(cluster.clients[0].address, Request((88, 4), _any_command()))
        cluster.run_until(0.05)
        # The dead slot is gone (and its body stays servable); the new
        # request went through the normal pipeline.
        assert (88, 1) not in replica.active
        assert (88, 1) in replica.rejected_cache
        assert replica.stats["accepted"] >= 1


class TestStormRegression:
    """The acceptance gate: pre-fix figR storm fires the detector,
    the fixed code runs the same storm clean and recovers."""

    def _storm_result(self):
        from repro.cluster.runner import run_experiment
        from repro.experiments.figR_retry_storm import (
            ANY_RETRY,
            BASE_OVERRIDES,
            IDEM_OVERRIDES,
            storm_spec,
        )

        overrides = {**BASE_OVERRIDES, **IDEM_OVERRIDES, **ANY_RETRY}
        spec = storm_spec("idem", "naive-any", overrides, 0, probes=True)
        return run_experiment(spec)

    def test_prefix_storm_flags_the_leak(self, monkeypatch):
        monkeypatch.setattr(
            IdemReplica, "_release_dedup_dead", lambda self, cid: None
        )
        result = self._storm_result()
        rules = {finding["rule"] for finding in result.findings}
        assert "active_set_leak" in rules

    def test_fixed_storm_is_clean_and_recovers(self):
        from repro.experiments.figR_retry_storm import (
            ANY_RETRY,
            BASE_OVERRIDES,
            IDEM_OVERRIDES,
            measure_storm,
        )

        overrides = {**BASE_OVERRIDES, **IDEM_OVERRIDES, **ANY_RETRY}
        run = measure_storm("idem", "naive-any", overrides, probes=True)
        assert run.recovered
        assert run.drift_findings == 0

"""Tests for the plain-text plotting helpers."""

from repro.experiments.charts import scatter, sparkline, timeline_sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_uses_increasing_levels(self):
        line = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        assert len(line) == 5
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert list(line) == sorted(line)

    def test_all_zero_series(self):
        assert sparkline([0.0, 0.0, 0.0]) == "▁▁▁"

    def test_explicit_maximum_caps_levels(self):
        line = sparkline([5.0, 10.0], maximum=20.0)
        assert line[1] != "█"

    def test_values_above_maximum_are_clamped(self):
        assert sparkline([100.0], maximum=1.0) == "█"


class TestTimelineSparkline:
    def test_resamples_to_requested_width(self):
        series = [(i * 0.1, float(i)) for i in range(100)]
        line = timeline_sparkline(series, 0.0, 10.0, buckets=20)
        assert len(line) == 20

    def test_gap_renders_as_floor(self):
        series = [(0.5, 10.0), (9.5, 10.0)]  # nothing in between
        line = timeline_sparkline(series, 0.0, 10.0, buckets=10)
        assert line[5] == "▁"
        assert line[0] != "▁"

    def test_empty_or_degenerate(self):
        assert timeline_sparkline([], 0.0, 1.0) == ""
        assert timeline_sparkline([(0.5, 1.0)], 1.0, 1.0) == ""


class TestScatter:
    def test_renders_axes_and_points(self):
        text = scatter([(1.0, 2.0), (3.0, 4.0)], width=20, height=5)
        assert "o" in text
        assert "1" in text and "3" in text  # x range in the footer

    def test_no_data(self):
        assert scatter([]) == "(no data)"

    def test_single_point(self):
        text = scatter([(1.0, 1.0)], width=10, height=3)
        assert text.count("o") == 1

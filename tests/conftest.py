"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.profile import ClusterProfile


def small_profile(**overrides) -> ClusterProfile:
    """A cluster profile with a small keyspace for fast test runs."""
    from dataclasses import replace

    from repro.workload.ycsb import WORKLOAD_UPDATE_HEAVY

    workload = replace(WORKLOAD_UPDATE_HEAVY, record_count=50)
    return ClusterProfile(workload=workload, **overrides)


def run_cluster(
    system: str = "idem",
    clients: int = 3,
    duration: float = 0.5,
    seed: int = 1,
    drain: float = 0.5,
    **kwargs,
) -> Cluster:
    """Build a small cluster, run it, stop the clients and drain.

    After draining, every live replica has executed everything that was
    agreed on, so cross-replica assertions are meaningful.
    """
    kwargs.setdefault("profile", small_profile())
    cluster = build_cluster(system, clients, seed=seed, stop_time=duration, **kwargs)
    cluster.run_until(duration)
    cluster.stop_clients()
    cluster.run_until(duration + drain)
    return cluster


def live_replicas(cluster: Cluster):
    return [replica for replica in cluster.replicas if not replica.halted]


def assert_replicas_consistent(cluster: Cluster) -> None:
    """All live replicas executed the same sequence of requests."""
    replicas = live_replicas(cluster)
    assert replicas, "no live replicas"
    transfers = sum(r.stats["state_transfers"] for r in replicas)
    if transfers == 0:
        assert len({r.exec_sqn for r in replicas}) == 1, (
            f"diverging exec positions: {[r.exec_sqn for r in replicas]}"
        )
        assert len({r.exec_order_digest for r in replicas}) == 1
    assert len({r.app.digest() for r in replicas}) == 1, "diverging app state"


def total_successes(cluster: Cluster) -> int:
    return sum(client.successes for client in cluster.clients)

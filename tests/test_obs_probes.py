"""Tests for the probe layer and the time-series flight recorder.

Covers the ring buffer's eviction bounds, windowed aggregation against
a naive reference, the percentile sketch's monotonicity and lifetime
semantics, byte-stable exports, the observer-purity of probed runs
(retries, hedging, chaos), the campaign payload roundtrip, and the
hash-seed independence of the recorded series and detector output.
"""

from __future__ import annotations

import io
import json
import math
import os
import subprocess
import sys

import pytest

from repro.cluster.faults import FaultSchedule
from repro.cluster.runner import RunSpec, run_experiment
from repro.obs import (
    FlightRecorder,
    PercentileSketch,
    Series,
    write_series_jsonl,
)

from tests.conftest import small_profile


def _pseudo_values(n: int) -> list[float]:
    """Deterministic, irregular values without any RNG."""
    return [float((index * 37) % 11 + (index % 3) * 0.5) for index in range(n)]


class TestSeriesRing:
    def test_eviction_keeps_newest_maxlen_samples(self):
        series = Series("replica-0", "x", maxlen=8)
        for index in range(20):
            series.record(index * 0.1, float(index))
        assert len(series) == 8
        assert series.count == 20
        assert series.evicted == 12
        assert series.values() == [float(i) for i in range(12, 20)]
        assert series.times() == pytest.approx([i * 0.1 for i in range(12, 20)])
        assert series.last_value == 19.0

    def test_partial_fill_keeps_everything(self):
        series = Series("replica-0", "x", maxlen=100)
        for index in range(7):
            series.record(float(index), float(index) * 2)
        assert len(series) == 7
        assert series.evicted == 0
        assert series.values() == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]

    def test_value_at_steps_and_predates(self):
        series = Series("n", "x", maxlen=16)
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert math.isnan(series.value_at(0.5))
        assert series.value_at(1.0) == 10.0
        assert series.value_at(1.5) == 10.0
        assert series.value_at(5.0) == 20.0

    def test_invalid_maxlen_rejected(self):
        with pytest.raises(ValueError):
            Series("n", "x", maxlen=0)


class TestWindowAggregation:
    def test_window_matches_naive_reference(self):
        series = Series("n", "x", maxlen=64)
        values = _pseudo_values(50)
        for index, value in enumerate(values):
            series.record(index * 0.05, value)
        start, end = 0.6, 1.9
        reference = [
            value
            for index, value in enumerate(values)
            if start <= index * 0.05 <= end
        ]
        stats = series.window(start, end)
        assert stats.count == len(reference)
        assert stats.min == min(reference)
        assert stats.max == max(reference)
        assert stats.mean == pytest.approx(sum(reference) / len(reference))
        assert stats.last == reference[-1]

    def test_window_respects_eviction(self):
        series = Series("n", "x", maxlen=10)
        for index in range(30):
            series.record(float(index), float(index))
        # Samples 0..19 are gone; a window over them is empty.
        assert series.window(0.0, 19.0).count == 0
        assert series.window(20.0, 29.0).count == 10

    def test_empty_window_is_nan(self):
        series = Series("n", "x", maxlen=4)
        series.record(1.0, 5.0)
        stats = series.window(2.0, 3.0)
        assert stats.count == 0
        assert math.isnan(stats.min) and math.isnan(stats.mean)


class TestPercentileSketch:
    def test_quantiles_monotone_in_q(self):
        sketch = PercentileSketch()
        for value in _pseudo_values(500):
            sketch.add(value * 13.7)
        quantiles = [sketch.quantile(q / 100.0) for q in range(101)]
        assert all(a <= b for a, b in zip(quantiles, quantiles[1:]))
        assert quantiles[0] >= sketch.min
        assert quantiles[-1] == sketch.max

    def test_single_value_is_exact(self):
        sketch = PercentileSketch()
        for _ in range(10):
            sketch.add(42.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert sketch.quantile(q) == pytest.approx(42.0)

    def test_empty_and_invalid(self):
        sketch = PercentileSketch()
        assert math.isnan(sketch.quantile(0.5))
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            PercentileSketch(cap=0.0)

    def test_lifetime_survives_ring_eviction(self):
        series = Series("n", "x", maxlen=4)
        for index in range(100):
            series.record(float(index), float(index))
        assert len(series) == 4  # ring kept almost nothing...
        assert series.sketch.total == 100  # ...the sketch kept it all
        median = series.quantile(0.5)
        assert 40.0 <= median <= 60.0

    def test_clamp_keeps_extremes_visible(self):
        sketch = PercentileSketch(cap=100.0)
        sketch.add(-5.0)
        sketch.add(1e6)
        assert sketch.min == -5.0
        assert sketch.max == 1e6


class TestRecorderExports:
    def test_jsonl_is_insertion_order_independent(self):
        def build(order: list[tuple[str, str]]) -> FlightRecorder:
            recorder = FlightRecorder()
            for node, name in order:
                for tick in range(5):
                    recorder.record(tick * 0.1, node, name, float(tick))
            recorder.mark(0.2, 0.4, "fault")
            return recorder

        keys = [("replica-1", "b"), ("replica-0", "a"), ("clients", "c")]
        first, second = io.StringIO(), io.StringIO()
        write_series_jsonl(build(keys), first)
        write_series_jsonl(build(list(reversed(keys))), second)
        assert first.getvalue() == second.getvalue()

    def test_jsonl_rows_are_time_ordered(self):
        recorder = FlightRecorder()
        recorder.record(0.2, "replica-0", "x", 1.0)
        recorder.record(0.1, "replica-1", "y", 2.0)
        stream = io.StringIO()
        lines = write_series_jsonl(recorder, stream)
        rows = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines == 2
        assert [row["ts"] for row in rows] == [0.1, 0.2]

    def test_lookup_orders_sorted(self):
        recorder = FlightRecorder()
        recorder.record(0.0, "replica-2", "z", 0.0)
        recorder.record(0.0, "replica-0", "a", 0.0)
        recorder.record(0.0, "replica-0", "b", 0.0)
        assert recorder.nodes() == ["replica-0", "replica-2"]
        assert recorder.names("replica-0") == ["a", "b"]
        assert [key for key, _ in recorder.items()] == [
            ("replica-0", "a"),
            ("replica-0", "b"),
            ("replica-2", "z"),
        ]


def _fingerprint(result):
    return (
        result.throughput,
        result.latency,
        result.reject_throughput,
        result.timeouts,
        tuple(sorted(result.traffic.items())),
        tuple(tuple(sorted(stats.items())) for stats in result.replica_stats),
    )


class TestProbePurity:
    """Probed runs are byte-identical to bare runs (observer-only)."""

    def _spec(self, probes: bool, **kwargs) -> RunSpec:
        kwargs.setdefault("system", "idem")
        kwargs.setdefault("clients", 8)
        kwargs.setdefault("duration", 0.8)
        kwargs.setdefault("warmup", 0.2)
        kwargs.setdefault("seed", 3)
        kwargs.setdefault("profile", small_profile())
        return RunSpec(probes=probes, **kwargs)

    def test_identical_under_retries_and_rejection(self):
        overrides = {
            "reject_threshold": 2,
            "retry_policy": "exponential",
            "retry_on": "any",
            "retry_max_attempts": 3,
        }
        plain = run_experiment(self._spec(False, overrides=overrides))
        probed = run_experiment(self._spec(True, overrides=overrides))
        assert _fingerprint(plain) == _fingerprint(probed)
        assert probed.obs.recorder.samples_recorded > 0

    def test_identical_under_hedging(self):
        overrides = {"hedge_delay": 0.02}
        plain = run_experiment(self._spec(False, overrides=overrides))
        probed = run_experiment(self._spec(True, overrides=overrides))
        assert _fingerprint(plain) == _fingerprint(probed)

    def test_identical_across_crash_and_recovery(self):
        faults = FaultSchedule().crash_follower(0.3).recover_replica(0.6)
        plain = run_experiment(self._spec(False, faults=faults))
        probed = run_experiment(
            self._spec(True, faults=FaultSchedule().crash_follower(0.3).recover_replica(0.6))
        )
        assert _fingerprint(plain) == _fingerprint(probed)
        # The crash window is annotated on the recording.
        assert probed.obs.recorder.marks
        # Downtime shows up as up=0 samples, not as a crash of the probe.
        up = probed.obs.recorder.series("replica-1", "up")
        assert 0.0 in up.values()

    def test_probing_rides_the_observer_tick(self):
        """Probes schedule no loop events beyond observer sampling."""
        observed = run_experiment(self._spec(False, observe=True))
        probed = run_experiment(self._spec(True))
        assert (
            observed.sim_stats["dispatched_events"]
            == probed.sim_stats["dispatched_events"]
        )


class TestCampaignPayloadRoundtrip:
    def test_probed_spec_roundtrips_through_json(self):
        from repro.campaign.plan import payload_to_spec, spec_to_payload

        spec = RunSpec(
            system="idem",
            clients=12,
            duration=2.0,
            warmup=0.4,
            seed=7,
            probes=True,
            obs_sample_interval=0.02,
        )
        payload = json.loads(json.dumps(spec_to_payload(spec), sort_keys=True))
        rebuilt = payload_to_spec(payload)
        assert rebuilt.probes is True
        assert rebuilt.obs_sample_interval == 0.02
        assert rebuilt.system == "idem"
        assert rebuilt.clients == 12
        assert rebuilt.seed == 7


_HASHSEED_SCRIPT = r"""
import hashlib
import io
import json
import sys

from repro.cluster.runner import RunSpec, run_experiment
from repro.obs import write_series_jsonl

spec = RunSpec(
    system="idem",
    clients=10,
    duration=0.8,
    warmup=0.2,
    seed=5,
    overrides={"reject_threshold": 2, "retry_policy": "exponential",
               "retry_on": "any", "retry_max_attempts": 3},
    probes=True,
)
result = run_experiment(spec)
stream = io.StringIO()
write_series_jsonl(result.obs.recorder, stream)
digest = hashlib.sha256(stream.getvalue().encode()).hexdigest()
print(json.dumps({"series": digest, "findings": result.findings},
                 sort_keys=True))
"""


class TestHashSeedInvariance:
    def test_series_and_findings_stable_across_hash_seeds(self):
        outputs = []
        for hash_seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                part for part in ("src", env.get("PYTHONPATH", "")) if part
            )
            completed = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert completed.returncode == 0, completed.stderr
            outputs.append(completed.stdout)
        assert outputs[0] == outputs[1]

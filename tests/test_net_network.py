"""Unit tests for the network fabric."""

import pytest

from repro.net.addresses import Address, client_address, replica_address
from repro.net.latency import ConstantLatency
from repro.net.message import Message
from repro.net.network import Network, NetworkNode
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry


class Probe(Message):
    __slots__ = ("size",)

    def __init__(self, size: int = 0):
        self.size = size

    def payload_bytes(self) -> int:
        return self.size


class Sink(NetworkNode):
    def __init__(self, address: Address, loop: EventLoop):
        self.address = address
        self.loop = loop
        self.received: list[tuple[float, Address, Message]] = []

    def deliver(self, src: Address, message: Message) -> None:
        self.received.append((self.loop.now, src, message))


def make_network(loss: float = 0.0, latency: float = 0.001):
    loop = EventLoop()
    network = Network(
        loop,
        RngRegistry(1),
        latency_model=ConstantLatency(latency),
        loss_probability=loss,
    )
    a = Sink(replica_address(0), loop)
    b = Sink(replica_address(1), loop)
    network.attach(a)
    network.attach(b)
    return loop, network, a, b


def test_message_delivered_after_latency():
    loop, network, a, b = make_network()
    network.send(a.address, b.address, Probe())
    loop.run_until(1.0)
    assert len(b.received) == 1
    time, src, _ = b.received[0]
    assert time == pytest.approx(0.001)
    assert src == a.address


def test_multicast_reaches_all_destinations():
    loop, network, a, b = make_network()
    c = Sink(replica_address(2), loop)
    network.attach(c)
    network.multicast(a.address, [b.address, c.address], Probe())
    loop.run_until(1.0)
    assert len(b.received) == 1
    assert len(c.received) == 1


def test_traffic_metering_counts_bytes_and_flows():
    loop, network, a, b = make_network()
    client = Sink(client_address(0), loop)
    network.attach(client)
    message = Probe(size=80)
    network.send(client.address, a.address, message)
    network.send(a.address, b.address, message)
    loop.run_until(1.0)
    assert network.traffic.total_messages == 2
    assert network.traffic.total_bytes == 2 * message.size_bytes()
    assert network.traffic.client_bytes == message.size_bytes()
    assert network.traffic.replica_bytes == message.size_bytes()


def test_traffic_metered_even_when_lost():
    loop, network, a, b = make_network(loss=1.0 - 1e-9)
    # loss_probability must be < 1; use crash instead for certain loss.
    network.crash(b.address)
    network.send(a.address, b.address, Probe())
    loop.run_until(1.0)
    assert network.traffic.total_messages == 1
    assert b.received == []


def test_crashed_sender_sends_nothing():
    loop, network, a, b = make_network()
    network.crash(a.address)
    network.send(a.address, b.address, Probe())
    loop.run_until(1.0)
    assert b.received == []
    assert network.traffic.total_messages == 0


def test_crash_at_delivery_time_drops_in_flight_messages():
    loop, network, a, b = make_network(latency=0.01)
    network.send(a.address, b.address, Probe())
    loop.call_after(0.005, network.crash, b.address)
    loop.run_until(1.0)
    assert b.received == []


def test_recover_restores_delivery():
    loop, network, a, b = make_network()
    network.crash(b.address)
    network.recover(b.address)
    network.send(a.address, b.address, Probe())
    loop.run_until(1.0)
    assert len(b.received) == 1


def test_partition_blocks_both_directions():
    loop, network, a, b = make_network()
    network.partition(a.address, b.address)
    network.send(a.address, b.address, Probe())
    network.send(b.address, a.address, Probe())
    loop.run_until(1.0)
    assert a.received == []
    assert b.received == []
    assert network.dropped_messages == 2


def test_heal_removes_partition():
    loop, network, a, b = make_network()
    network.partition(a.address, b.address)
    network.heal(a.address, b.address)
    network.send(a.address, b.address, Probe())
    loop.run_until(1.0)
    assert len(b.received) == 1


def test_loss_probability_drops_roughly_the_right_fraction():
    loop, network, a, b = make_network(loss=0.3)
    for _ in range(2000):
        network.send(a.address, b.address, Probe())
    loop.run_until(10.0)
    received = len(b.received)
    assert 1250 < received < 1550  # ~1400 expected


def test_duplicate_attach_rejected():
    loop, network, a, b = make_network()
    with pytest.raises(ValueError):
        network.attach(Sink(a.address, loop))


def test_send_to_unknown_address_is_dropped():
    loop, network, a, b = make_network()
    network.send(a.address, replica_address(99), Probe())
    loop.run_until(1.0)
    assert network.dropped_messages == 1


def test_invalid_loss_probability_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        Network(loop, RngRegistry(0), loss_probability=1.5)


def test_detach_stops_delivery():
    loop, network, a, b = make_network()
    network.detach(b.address)
    network.send(a.address, b.address, Probe())
    loop.run_until(1.0)
    assert b.received == []


# -- sizing discipline and multicast equivalence ------------------------


class CountingProbe(Probe):
    """Probe that counts how often the fabric measures it."""

    __slots__ = ("size_calls", "type_calls")

    def __init__(self, size: int = 0):
        super().__init__(size)
        self.size_calls = 0
        self.type_calls = 0

    def size_bytes(self) -> int:
        self.size_calls += 1
        return super().size_bytes()

    def type_name(self) -> str:
        self.type_calls += 1
        return super().type_name()


def test_send_sizes_the_message_exactly_once():
    loop, network, a, b = make_network()
    message = CountingProbe(size=64)
    network.send(a.address, b.address, message)
    loop.run_until(1.0)
    assert message.size_calls == 1
    assert message.type_calls == 1
    assert len(b.received) == 1


def test_send_sizes_once_even_with_serialization_delay():
    loop = EventLoop()
    network = Network(
        loop,
        RngRegistry(1),
        latency_model=ConstantLatency(0.001),
        egress_bandwidth=1e6,
    )
    a = Sink(replica_address(0), loop)
    b = Sink(replica_address(1), loop)
    network.attach(a)
    network.attach(b)
    message = CountingProbe(size=64)
    network.send(a.address, b.address, message)
    loop.run_until(1.0)
    assert message.size_calls == 1


def test_multicast_sizes_the_message_exactly_once():
    loop, network, a, b = make_network()
    c = Sink(replica_address(2), loop)
    network.attach(c)
    message = CountingProbe(size=64)
    network.multicast(a.address, [b.address, c.address], message)
    loop.run_until(1.0)
    # One measurement for the whole fan-out, not one per destination.
    assert message.size_calls == 1
    assert message.type_calls == 1
    assert len(b.received) == 1 and len(c.received) == 1


def _fanout_run(use_multicast: bool):
    """Drive one fan-out via multicast or a serial send loop."""
    loop = EventLoop()
    network = Network(
        loop,
        RngRegistry(7),
        loss_probability=0.2,
    )
    src = Sink(replica_address(0), loop)
    network.attach(src)
    sinks = [Sink(replica_address(i), loop) for i in range(1, 6)]
    for sink in sinks:
        network.attach(sink)
    dsts = [sink.address for sink in sinks]
    for round_no in range(50):
        message = Probe(size=round_no)
        if use_multicast:
            network.multicast(src.address, dsts, message)
        else:
            for dst in dsts:
                network.send(src.address, dst, message)
        loop.run_until(loop.now + 0.01)
    deliveries = [
        (time, str(src_addr), probe.size)
        for sink in sinks
        for (time, src_addr, probe) in sink.received
    ]
    return deliveries, network.traffic.total_bytes, network.dropped_messages


def test_multicast_is_equivalent_to_a_serial_send_loop():
    # Same seed, same per-destination randomness order: delivery times,
    # metered bytes and drop counts must match exactly.
    assert _fanout_run(use_multicast=True) == _fanout_run(use_multicast=False)

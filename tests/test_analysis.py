"""detlint: fixture-snippet tests per rule, suppression machinery, CLI.

Each rule gets four fixtures: a positive snippet (finding raised), a
negative one (clean), a pragma-suppressed one and a baseline-suppressed
one.  The snippets are linted under a module name that puts the rule in
scope (see repro.analysis.config.RULE_SCOPES).
"""

import json
import textwrap

import pytest

from repro.analysis import lint_paths, lint_source, main
from repro.analysis.baseline import (
    PLACEHOLDER_REASON,
    Baseline,
    BaselineEntry,
    load_baseline,
    regenerate,
    write_baseline,
)
from repro.analysis.config import rule_applies, rules_for_module
from repro.analysis.rules import RULES


def lint(source, module, baseline=None, rules=None):
    return lint_source(
        textwrap.dedent(source), module, baseline=baseline, rules_filter=rules
    )


def active_rules(findings):
    return [f.rule for f in findings if f.active]


def baseline_for(source, module, reason="justified in the test"):
    """A baseline suppressing every finding the snippet raises."""
    findings = lint(source, module)
    entries = [
        BaselineEntry(
            rule=f.rule, module=f.module, context=f.source_line, reason=reason
        )
        for f in findings
    ]
    return Baseline(entries=entries)


# One (positive, negative) snippet pair per rule.  The positive snippet
# has the offending statement on its *last* line so the pragma fixture
# can append a disable comment to it.
FIXTURES = {
    "DET001": (
        "repro.sim.loop",
        """\
        import time
        def stamp():
            return time.time()
        """,
        """\
        def stamp(loop):
            return loop.now
        """,
    ),
    "DET002": (
        "repro.core.replica",
        """\
        import uuid
        def fresh_id():
            return uuid.uuid4()
        """,
        """\
        def fresh_id(counter):
            return counter + 1
        """,
    ),
    "DET003": (
        "repro.workload.keys",
        """\
        import random
        def pick(items):
            return random.choice(items)
        """,
        """\
        import random
        def pick(items, rng: random.Random):
            return items[rng.randrange(len(items))]
        """,
    ),
    "DET004": (
        "repro.cluster.runner",
        """\
        import os
        def runs():
            return int(os.environ.get("REPRO_RUNS", "2"))
        """,
        """\
        from repro.experiments.settings import default_runs
        def runs():
            return default_runs()
        """,
    ),
    "DET005": (
        "repro.net.network",
        """\
        def drain(pending: set):
            return [item for item in pending]
        """,
        """\
        def drain(pending: set):
            return [item for item in sorted(pending)]
        """,
    ),
    "DET006": (
        "repro.experiments.common",
        """\
        import os
        def force(runs):
            os.environ["REPRO_RUNS"] = str(runs)
        """,
        """\
        def force(runs):
            return {"runs": runs}
        """,
    ),
    "OBS001": (
        "repro.obs.hub",
        """\
        def attach(replica):
            replica.acceptance_threshold = 0
        """,
        """\
        def attach(replica, observer):
            replica.obs = observer
        """,
    ),
    "OBS002": (
        "repro.obs.spans",
        """\
        def sample(replica):
            replica.processor.charge(0.1)
        """,
        """\
        def sample(replica):
            return replica.processor.queue_length
        """,
    ),
    "OBS003": (
        "repro.protocols.base",
        """\
        from repro.obs import ObservabilityHub
        """,
        """\
        def notify(self):
            if self.obs is not None:
                self.obs.on_quorum(None)
        """,
    ),
    "OBS004": (
        "repro.obs.registry",
        """\
        def sample(replica):
            return replica.rng
        """,
        """\
        def sample(replica):
            return replica.index
        """,
    ),
    "CAMP001": (
        "repro.campaign.plan",
        """\
        def spec_to_payload(spec):
            return {"targets": set(spec.targets)}
        """,
        """\
        def spec_to_payload(spec):
            return {"targets": sorted(spec.targets)}
        """,
    ),
    "CAMP002": (
        "repro.campaign.cache",
        """\
        def key_of(payload):
            return hash(tuple(payload))
        """,
        """\
        import hashlib
        def key_of(text):
            return hashlib.sha256(text.encode()).hexdigest()
        """,
    ),
    "CAMP003": (
        "repro.campaign.plan",
        """\
        import json
        def canonical(value):
            return json.dumps(value)
        """,
        """\
        import json
        def canonical(value):
            return json.dumps(value, sort_keys=True)
        """,
    ),
    "PROTO001": (
        "repro.cluster.profile",
        """\
        def make():
            f = 1
        """,
        """\
        from repro.protocols.config import fault_tolerance
        def make(n):
            return fault_tolerance(n)
        """,
    ),
    "PROTO002": (
        "repro.cluster.builder",
        """\
        def quorum(config):
            return config.f + 1
        """,
        """\
        def quorum(config):
            return config.quorum
        """,
    ),
    "PROTO003": (
        "repro.cluster.faults",
        """\
        def leader(view, config):
            return view % config.n
        """,
        """\
        def leader(view, config):
            return config.leader_of(view)
        """,
    ),
    "PROTO004": (
        "repro.experiments.common",
        """\
        def placement():
            replicas = [0, 1, 2]
        """,
        """\
        def placement(config):
            replicas = list(range(config.n))
            return replicas
        """,
    ),
    "PROTO005": (
        "repro.cluster.chaos",
        """\
        def pick(rng):
            return rng.randrange(3)
        """,
        """\
        def pick(rng, cluster):
            return rng.randrange(len(cluster.replicas))
        """,
    ),
    "PERF001": (
        "repro.net.network",
        """\
        def flood(self, deadlines):
            for when in deadlines:
                self._loop.call_at(when, self.tick)
        """,
        """\
        def flood(self, deadlines):
            call_at = self._loop.call_at
            for when in deadlines:
                call_at(when, self.tick)
        """,
    ),
    "PERF002": (
        "repro.sim.loop",
        """\
        def run(self):
            while self._heap:
                handle = Event(self._heap.pop())
        """,
        """\
        def run(self):
            pool = self._handles
            while self._heap:
                entry = self._heap.pop()
                pool[entry[4]].fire()
        """,
    ),
}


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_positive_fixture_raises_the_rule(rule_id):
    module, positive, _ = FIXTURES[rule_id]
    assert rule_id in active_rules(lint(positive, module)), rule_id


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_negative_fixture_is_clean(rule_id):
    module, _, negative = FIXTURES[rule_id]
    assert rule_id not in active_rules(lint(negative, module)), rule_id


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_pragma_suppresses_the_finding(rule_id):
    module, positive, _ = FIXTURES[rule_id]
    lines = textwrap.dedent(positive).rstrip().splitlines()
    lines[-1] += f"  # detlint: disable={rule_id} -- fixture justification"
    findings = lint("\n".join(lines) + "\n", module)
    mine = [f for f in findings if f.rule == rule_id]
    assert mine and all(f.suppressed_by == "pragma" for f in mine)
    assert all(f.suppression_reason == "fixture justification" for f in mine)


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_baseline_suppresses_the_finding(rule_id):
    module, positive, _ = FIXTURES[rule_id]
    baseline = baseline_for(positive, module)
    findings = lint(positive, module, baseline=baseline)
    mine = [f for f in findings if f.rule == rule_id]
    assert mine and all(f.suppressed_by == "baseline" for f in mine)
    assert not baseline.stale_entries()


def test_disable_next_line_pragma():
    source = """\
    import time
    def stamp():
        # detlint: disable-next-line=DET001 -- wall clock wanted here
        return time.time()
    """
    findings = lint(source, "repro.sim.loop")
    assert findings and findings[0].suppressed_by == "pragma"


def test_disable_all_pragma():
    source = """\
    import time, os
    def stamp():
        return time.time(), os.environ.get("X")  # detlint: disable=all -- fixture
    """
    findings = lint(source, "repro.sim.loop")
    assert findings and all(f.suppressed_by == "pragma" for f in findings)


# -- scope configuration ------------------------------------------------


def test_scopes_follow_the_architecture():
    # DET001 guards the sim core but not the CLI/campaign wall timers.
    assert rule_applies("DET001", "repro.sim.loop")
    assert not rule_applies("DET001", "repro.cli")
    assert not rule_applies("DET001", "repro.campaign.engine")
    # DET004 exempts exactly the CLI and the settings accessor.
    assert not rule_applies("DET004", "repro.experiments.settings")
    assert not rule_applies("DET004", "repro.cli")
    assert rule_applies("DET004", "repro.experiments.common")
    # Prefixes match whole dotted segments.
    assert not rule_applies("OBS001", "repro.observatory")
    # repro.cluster composes hubs, so OBS003 spares it.
    assert not rule_applies("OBS003", "repro.cluster.runner")
    assert rule_applies("OBS003", "repro.protocols.base")
    # PERF001 polices the dispatch/send hot paths plus the shard-merge
    # sample loops; PERF002's no-allocation contract is repro.sim only.
    assert rule_applies("PERF001", "repro.sim.loop")
    assert rule_applies("PERF001", "repro.sim.arraycore")
    assert rule_applies("PERF001", "repro.net.network")
    assert rule_applies("PERF001", "repro.campaign.shard")
    assert not rule_applies("PERF001", "repro.campaign.engine")
    assert not rule_applies("PERF001", "repro.protocols.paxos")
    assert rule_applies("PERF002", "repro.sim.arraycore")
    assert rule_applies("PERF002", "repro.sim.loop")
    assert not rule_applies("PERF002", "repro.net.network")
    assert not rule_applies("PERF002", "repro.campaign.shard")
    # PROTO guards topology consumers, never the protocol config itself.
    assert rule_applies("PROTO001", "repro.cluster.builder")
    assert rule_applies("PROTO003", "repro.experiments.common")
    assert not rule_applies("PROTO001", "repro.protocols.config")
    assert not rule_applies("PROTO003", "repro.protocols.paxos")
    # ...except PROTO002: quorum arithmetic is banned inside the
    # protocols too, everywhere but the one module that owns it.
    assert rule_applies("PROTO002", "repro.protocols.paxos")
    assert not rule_applies("PROTO002", "repro.protocols.config")
    # The standalone tools and the workload generators are linted too.
    assert rule_applies("DET005", "tools.overhead_guard")
    assert rule_applies("DET005", "repro.workload.ycsb")
    assert rule_applies("PROTO005", "tools.overhead_guard")


def test_rules_for_module_covers_every_family():
    assert {"DET001", "DET005", "OBS003", "PERF001"} <= rules_for_module(
        "repro.net.network"
    )
    assert {"OBS001", "OBS002", "OBS004"} <= rules_for_module("repro.obs.hub")
    assert {"CAMP001", "CAMP002", "CAMP003"} <= rules_for_module("repro.campaign.plan")


def test_wall_clock_out_of_scope_is_ignored():
    module, positive, _ = FIXTURES["DET001"]
    assert active_rules(lint(positive, "repro.cli")) == []


# -- specific matcher behaviour ----------------------------------------


def test_det003_allows_seeded_random_instances():
    source = """\
    import random
    def make_rng(seed):
        return random.Random(seed)
    """
    assert active_rules(lint(source, "repro.cluster.chaos")) == []


def test_det005_tracks_self_attributes():
    source = """\
    class Net:
        def __init__(self):
            self._partitions: set = set()
        def sweep(self):
            return [p for p in self._partitions]
    """
    assert "DET005" in active_rules(lint(source, "repro.net.network"))


def test_det005_ignores_order_insensitive_consumers():
    source = """\
    class Net:
        def __init__(self):
            self._crashed: set = set()
        def count(self):
            return len(self._crashed), max(self._crashed), sorted(self._crashed)
        def fold(self):
            return sorted(x for x in self._crashed)
    """
    assert active_rules(lint(source, "repro.net.network")) == []


def test_det005_flags_list_conversion():
    source = """\
    def snapshot(live: set):
        return list(live)
    """
    assert "DET005" in active_rules(lint(source, "repro.protocols.base"))


def test_obs001_allows_locally_constructed_objects():
    source = """\
    class Row:
        pass
    def build(tracer):
        row = Row()
        row.latency = 1.0
        return row
    """
    assert active_rules(lint(source, "repro.obs.analysis")) == []


def test_obs002_tracks_derived_names():
    source = """\
    class Hub:
        def tick(self):
            cluster = self.cluster
            cluster.loop.call_after(0.1, self.tick)
    """
    assert "OBS002" in active_rules(lint(source, "repro.obs.hub"))


def test_obs003_permits_type_checking_imports():
    source = """\
    from typing import TYPE_CHECKING
    if TYPE_CHECKING:
        from repro.obs import ObservabilityHub
    """
    assert active_rules(lint(source, "repro.protocols.base")) == []


def test_det004_flags_membership_test():
    source = """\
    import os
    def has_override():
        return "REPRO_RUNS" in os.environ
    """
    assert "DET004" in active_rules(lint(source, "repro.cluster.runner"))


def test_perf001_flags_heapq_module_attribute_in_loop():
    source = """\
    import heapq
    def fill(heap, items):
        for item in items:
            heapq.heappush(heap, item)
    """
    assert "PERF001" in active_rules(lint(source, "repro.sim.loop"))


def test_perf001_spares_single_hop_and_cold_code():
    source = """\
    import heapq
    class Loop:
        def drain(self):
            while self.heap:
                self.pop_one()
        def reset(self):
            heapq.heapify(self.heap)
    """
    assert active_rules(lint(source, "repro.sim.loop")) == []


def test_perf001_fresh_function_scope_inside_loop():
    # A def inside a loop body does not run per iteration; its own
    # non-loop body must not inherit the enclosing loop depth.
    source = """\
    def build(self, items):
        handlers = []
        for item in items:
            def fire():
                self._loop.call_after(0.1, item)
            handlers.append(fire)
        return handlers
    """
    assert active_rules(lint(source, "repro.net.network")) == []


def test_perf001_out_of_scope_module_is_ignored():
    module, positive, _ = FIXTURES["PERF001"]
    assert active_rules(lint(positive, "repro.campaign.pool")) == []


def test_perf002_flags_attribute_constructor_in_run_until():
    source = """\
    def run_until(self, horizon):
        while self._heap:
            entry = events.Record(self._heap.pop())
            entry.apply()
    """
    assert "PERF002" in active_rules(lint(source, "repro.sim.arraycore"))


def test_perf002_spares_non_dispatch_functions():
    # The contract covers the dispatch loops only; a builder or a
    # drain pass may allocate per item freely.
    source = """\
    def drain_cancelled(self):
        kept = []
        for entry in self._heap:
            kept.append(Entry(entry))
        return kept
    """
    assert active_rules(lint(source, "repro.sim.arraycore")) == []


def test_perf002_spares_exception_constructors():
    # Raise-path allocations fire at most once per loop lifetime.
    source = """\
    def run(self):
        while self._heap:
            if self._stopped:
                raise StoppedError(self._now)
            self.fire()
    """
    assert active_rules(lint(source, "repro.sim.loop")) == []


def test_perf002_spares_constructors_outside_the_loop():
    source = """\
    def run(self):
        snapshot = Snapshot(self._now)
        while self._heap:
            self.fire()
        return snapshot
    """
    assert active_rules(lint(source, "repro.sim.loop")) == []


def test_perf002_fresh_function_scope_inside_dispatch_loop():
    # A def inside the dispatch loop body gets its own (non-dispatch)
    # name and loop scope; constructors in it are not per-event cost
    # of the enclosing loop.
    source = """\
    def run(self):
        while self._heap:
            def finish():
                return Receipt(self._now)
            self.fire(finish)
    """
    assert active_rules(lint(source, "repro.sim.loop")) == []


def test_perf002_out_of_scope_module_is_ignored():
    module, positive, _ = FIXTURES["PERF002"]
    assert active_rules(lint(positive, "repro.net.network")) == []


# -- baseline machinery -------------------------------------------------


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    baseline = Baseline(
        entries=[BaselineEntry("DET001", "repro.sim.loop", "time.time()", "why")]
    )
    write_baseline(path, baseline)
    loaded = load_baseline(path)
    assert loaded.entries == baseline.entries


def test_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json").entries == []


def test_baseline_stale_and_unjustified_tracking():
    module, positive, _ = FIXTURES["DET001"]
    baseline = baseline_for(positive, module)
    baseline.entries.append(
        BaselineEntry("DET999", "repro.nowhere", "gone()", "obsolete")
    )
    baseline.entries.append(BaselineEntry("DET001", "repro.sim.x", "y()", ""))
    lint(positive, module, baseline=baseline)
    stale = {entry.rule for entry in baseline.stale_entries()}
    assert "DET999" in stale
    assert baseline.unjustified_entries()


def test_placeholder_baseline_entry_does_not_suppress():
    """An entry still carrying the --update-baseline placeholder (or an
    empty reason) suppresses nothing: the finding stays active, so the
    gate fails hard until a real justification is written."""
    module, positive, _ = FIXTURES["DET001"]
    placeholder = baseline_for(positive, module, reason=PLACEHOLDER_REASON)
    assert active_rules(lint(positive, module, baseline=placeholder)) == [
        "DET001"
    ]
    empty = baseline_for(positive, module, reason="   ")
    assert active_rules(lint(positive, module, baseline=empty)) == ["DET001"]
    justified = baseline_for(positive, module)
    assert active_rules(lint(positive, module, baseline=justified)) == []


def test_regenerate_preserves_reasons():
    module, positive, _ = FIXTURES["DET002"]
    findings = lint(positive, module)
    previous = Baseline(
        entries=[
            BaselineEntry(
                findings[0].rule, module, findings[0].source_line, "kept reason"
            )
        ]
    )
    fresh = regenerate(previous, findings)
    assert [entry.reason for entry in fresh.entries] == ["kept reason"]
    # A brand-new finding gets the placeholder the gate refuses.
    fresh2 = regenerate(Baseline(), findings)
    assert fresh2.entries[0].reason.startswith("TODO")


# -- the real tree ------------------------------------------------------


def repo_paths():
    import pathlib

    import repro

    package = pathlib.Path(repro.__file__).parent
    baseline = package.parent.parent / "tools" / "detlint_baseline.json"
    return package, baseline


def repo_lint_targets():
    """Everything CI lints: the package plus the standalone tools."""
    package, baseline = repo_paths()
    overhead_guard = package.parent.parent / "tools" / "overhead_guard.py"
    return [package, overhead_guard], baseline


def test_the_tree_is_clean_under_the_committed_baseline():
    targets, baseline_path = repo_lint_targets()
    report = lint_paths(targets, baseline=load_baseline(baseline_path))
    assert report.parse_errors == []
    offenders = [f"{f.location()} {f.rule}" for f in report.active]
    assert offenders == []
    assert report.baseline.stale_entries() == []
    assert report.baseline.unjustified_entries() == []


def test_cli_check_passes_on_the_tree():
    targets, baseline_path = repo_lint_targets()
    argv = ["--check", "--baseline", str(baseline_path)]
    argv += [str(t) for t in targets]
    assert main(argv) == 0


def test_cli_check_fails_on_a_dirty_file(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef t():\n    return time.time()\n")
    assert main(["--check", "--baseline", str(tmp_path / "b.json"), str(bad)]) == 1
    # Without --check the same run is informational.
    assert main(["--baseline", str(tmp_path / "b.json"), str(bad)]) == 0


def test_cli_json_report(tmp_path, capsys):
    package, baseline_path = repo_paths()
    out = tmp_path / "report.json"
    code = main(
        ["--json", str(out), "--baseline", str(baseline_path), str(package)]
    )
    capsys.readouterr()
    assert code == 0
    data = json.loads(out.read_text())
    assert data["ok"] is True
    assert data["counts"]["active"] == 0
    assert data["files_scanned"] > 50


def test_cli_rules_listing(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_rule_filter(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef t():\n    return time.time()\n")
    args = ["--baseline", str(tmp_path / "b.json"), "--check", str(bad)]
    assert main(["--rule", "DET002", *args]) == 0  # DET001 filtered out
    assert main(["--rule", "DET001", *args]) == 1
    assert main(["--rule", "NOPE", *args]) == 2


def test_cli_update_baseline_round_trip(tmp_path, capsys):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef t():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"
    assert main(["--update-baseline", "--baseline", str(baseline), str(bad)]) == 0
    capsys.readouterr()
    entries = json.loads(baseline.read_text())["suppressions"]
    assert len(entries) == 1 and entries[0]["rule"] == "DET001"
    # The placeholder reason fails the gate until a human justifies it.
    assert main(["--check", "--baseline", str(baseline), str(bad)]) == 1
    entries[0]["reason"] = "intentional wall clock in a fixture"
    baseline.write_text(
        json.dumps({"version": 1, "suppressions": entries}), encoding="utf-8"
    )
    assert main(["--check", "--baseline", str(baseline), str(bad)]) == 0

"""Tests for the Mencius-style multi-leader IDEM variant.

The paper's related-work claim: collaborative overload prevention
integrates into multi-leader protocols with little adjustment.  The
variant partitions the sequence space in the fault-free fast mode,
routes REQUIREs to per-client coordinators, skips idle slots, and falls
back to single-leader IDEM through the ordinary view change on any
crash suspicion.
"""

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.faults import FaultSchedule

from tests.conftest import (
    assert_replicas_consistent,
    live_replicas,
    run_cluster,
    small_profile,
    total_successes,
)


class TestFastMode:
    def test_operations_complete(self):
        cluster = run_cluster("idem-multileader", clients=6, duration=0.5)
        assert total_successes(cluster) > 100

    def test_replicas_stay_consistent(self):
        cluster = run_cluster("idem-multileader", clients=6, duration=0.5)
        assert_replicas_consistent(cluster)

    def test_no_single_proposer(self):
        """Every replica proposes — the defining multi-leader property."""
        cluster = run_cluster("idem-multileader", clients=6, duration=0.5)
        proposals = [replica.stats["proposals"] for replica in cluster.replicas]
        assert all(count > 0 for count in proposals)
        assert max(proposals) < 2 * min(proposals)  # roughly even

    def test_replies_come_from_coordinators(self):
        cluster = run_cluster("idem-multileader", clients=6, duration=0.5)
        replies = [replica.stats["replies_sent"] for replica in cluster.replicas]
        assert all(count > 0 for count in replies)

    def test_coordinator_assignment_is_by_client_id(self):
        cluster = run_cluster("idem-multileader", clients=6, duration=0.3)
        replica = cluster.replicas[0]
        for cid in range(6):
            assert replica.coordinator_of((cid, 1)) == cid % 3

    def test_slot_ownership_partitions_the_sequence_space(self):
        cluster = run_cluster("idem-multileader", clients=6, duration=0.3)
        replica = cluster.replicas[0]
        assert replica.owner_of(1) == 0
        assert replica.owner_of(2) == 1
        assert replica.owner_of(3) == 2
        assert replica.owner_of(4) == 0

    def test_idle_owners_skip_their_slots(self):
        """With one client, only one coordinator proposes; the others
        must release their slots for execution to stay contiguous."""
        cluster = run_cluster("idem-multileader", clients=1, duration=0.4)
        skips = [replica.stats["skips"] for replica in cluster.replicas]
        assert sum(skips) > 0
        assert cluster.replicas[0].stats["skips"] == 0  # the busy coordinator
        assert_replicas_consistent(cluster)

    def test_rejection_works_in_fast_mode(self):
        cluster = run_cluster(
            "idem-multileader",
            clients=20,
            duration=0.6,
            overrides={"reject_threshold": 2},
        )
        assert sum(r.stats["rejected"] for r in cluster.replicas) > 0
        assert sum(c.rejections for c in cluster.clients) > 0
        assert all(c.successes > 0 for c in cluster.clients)

    def test_throughput_comparable_to_single_leader(self):
        multi = run_cluster("idem-multileader", clients=10, duration=0.6)
        single = run_cluster("idem", clients=10, duration=0.6)
        assert total_successes(multi) > 0.7 * total_successes(single)


class TestCrashFallback:
    def crash_run(self, target_index: int):
        cluster = build_cluster(
            "idem-multileader",
            9,
            seed=1,
            profile=small_profile(),
            overrides={"view_change_timeout": 0.4},
            stop_time=3.0,
        )
        FaultSchedule().crash_replica(0.5, target_index).install(cluster)
        cluster.run_until(3.0)
        cluster.stop_clients()
        cluster.run_until(4.5)
        return cluster

    @pytest.mark.parametrize("target_index", [0, 1, 2])
    def test_any_crash_falls_back_to_single_leader(self, target_index):
        cluster = self.crash_run(target_index)
        survivors = live_replicas(cluster)
        assert all(replica.view >= 1 for replica in survivors)
        assert not replica_is_halted(cluster, cluster.current_leader())
        post = cluster.metrics.reply_counter.rate_between(2.0, 3.0)
        assert post > 0
        assert len({r.app.digest() for r in survivors}) == 1

    def test_clients_of_the_dead_coordinator_recover(self):
        cluster = self.crash_run(1)
        # Clients 1, 4, 7 were coordinated by the dead replica.
        for cid in (1, 4, 7):
            assert cluster.clients[cid].successes > 0

    def test_fast_mode_is_not_reentered(self):
        cluster = self.crash_run(2)
        survivors = live_replicas(cluster)
        assert all(not replica.fast_mode for replica in survivors)


def replica_is_halted(cluster, index: int) -> bool:
    return cluster.replicas[index].halted

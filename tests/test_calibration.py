"""Calibration: the simulated cluster reproduces the paper's regime.

These are the shape claims of the evaluation at reduced scale; the
benchmark suite re-checks them at full scale.  The default profile is
tuned so the 3-replica cluster saturates in the tens of thousands of
requests per second around a millisecond (Section 7.1/7.2).
"""

import pytest

from repro.cluster.runner import RunSpec, run_experiment


def measure(system: str, clients: int, **overrides):
    return run_experiment(
        RunSpec(
            system=system,
            clients=clients,
            duration=0.8,
            warmup=0.25,
            seed=1,
            overrides=overrides,
        )
    )


@pytest.fixture(scope="module")
def curves():
    systems = ["idem", "idem-nopr", "paxos", "bftsmart"]
    return {
        system: {clients: measure(system, clients) for clients in (25, 50, 200)}
        for system in systems
    }


def test_saturation_lands_in_the_papers_regime(curves):
    peak = max(r.throughput for r in curves["idem"].values())
    assert 30_000 < peak < 70_000
    latency = curves["idem"][50].latency_ms
    assert 0.5 < latency < 2.5


def test_idem_latency_plateaus_under_overload(curves):
    at_saturation = curves["idem"][50].latency_ms
    at_overload = curves["idem"][200].latency_ms
    assert at_overload < 1.5 * at_saturation


def test_nopr_latency_explodes_under_overload(curves):
    at_saturation = curves["idem-nopr"][50].latency_ms
    at_overload = curves["idem-nopr"][200].latency_ms
    assert at_overload > 2.5 * at_saturation


def test_paxos_latency_explodes_under_overload(curves):
    at_saturation = curves["paxos"][50].latency_ms
    at_overload = curves["paxos"][200].latency_ms
    assert at_overload > 2.5 * at_saturation


def test_rejection_costs_nothing_below_the_threshold(curves):
    idem = curves["idem"][25]
    nopr = curves["idem-nopr"][25]
    assert idem.throughput == pytest.approx(nopr.throughput, rel=0.02)
    assert idem.latency_ms == pytest.approx(nopr.latency_ms, rel=0.05)
    assert idem.reject_throughput == 0


def test_idem_rejects_only_past_saturation(curves):
    assert curves["idem"][25].reject_throughput == 0
    assert curves["idem"][200].reject_throughput > 0


def test_bftsmart_saturates_below_paxos(curves):
    bft_peak = max(r.throughput for r in curves["bftsmart"].values())
    paxos_peak = max(r.throughput for r in curves["paxos"].values())
    assert bft_peak < paxos_peak


def test_cluster_is_cpu_bound_at_overload(curves):
    overload = curves["paxos"][200]
    assert max(s["utilization"] for s in overload.replica_stats) > 0.9

"""Tests for ``repro.campaign``: planner, cache, pool, engine, baselines.

The acceptance properties from the campaign design:

* a parallel campaign's rendered output is byte-identical to the serial
  path (and a re-run resolves everything from the cache, still
  byte-identical);
* the planner covers *every* simulation an experiment's ``run()``
  executes, for every registered experiment (no plan drift);
* the baseline gate passes on freshly written baselines and fails
  (non-zero exit) once a metric is perturbed beyond its tolerance band.
"""

import json

import pytest

from repro.campaign import (
    CampaignOptions,
    ExecutionStats,
    MISS,
    ResultCache,
    UnplannableSpec,
    check_baselines,
    execute_jobs,
    extract_headlines,
    job_key,
    payload_to_spec,
    plan_campaign,
    plan_experiment,
    result_fingerprint,
    run_campaign,
    should_verify,
    spec_to_payload,
    write_baseline,
)
from repro.campaign.baseline import baseline_path
from repro.campaign.engine import CampaignExecutor
from repro.campaign.plan import KIND_CELL, KIND_SIM, sim_job
from repro.cluster.faults import FaultSchedule
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec, run_experiment
from repro.experiments import EXPERIMENTS, common
from repro.experiments.tab1_overhead import Tab1Cell
from repro.workload.open_loop import ArrivalSpec
from repro.workload.schedule import BurstSchedule, ConstantSchedule, StepSchedule


def tiny_spec(seed: int = 0, **overrides) -> RunSpec:
    values = dict(
        system="idem", clients=2, duration=0.3, warmup=0.1, seed=seed,
        keep_metrics=True,
    )
    values.update(overrides)
    return RunSpec(**values)


@pytest.fixture(scope="module")
def tiny_result():
    """One real simulation result, shared by every test that needs one."""
    return run_experiment(tiny_spec())


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """One cache directory shared across the campaign-level tests, so
    the CLI round-trip reuses what the parity test already simulated."""
    return tmp_path_factory.mktemp("campaign-cache")


class RecordingExecutor:
    """Serves canned results while recording the key of every request."""

    def __init__(self, result):
        self.result = result
        self.keys = []

    def run_spec(self, spec):
        self.keys.append(job_key(KIND_SIM, spec_to_payload(spec)))
        return self.result

    def run_cell(self, kwargs):
        self.keys.append(job_key(KIND_CELL, dict(kwargs)))
        return Tab1Cell(
            system=kwargs["system"],
            load_label=kwargs["load_label"],
            clients=kwargs["clients"],
            requests_completed=100,
            total_bytes=1_000,
            client_bytes=800,
            replica_bytes=200,
            rejects=0,
            sim_seconds=1.0,
        )


class TestPlan:
    def test_payload_roundtrip_with_faults_profile_overrides(self):
        spec = tiny_spec(
            overrides={"reject_threshold": 40},
            profile=ClusterProfile(),
            faults=FaultSchedule().crash_leader(2.0),
            safety=True,
        )
        payload = spec_to_payload(spec)
        json.dumps(payload)  # must be JSON-safe as-is
        rebuilt = payload_to_spec(payload)
        assert spec_to_payload(rebuilt) == payload
        assert rebuilt.faults.faults == spec.faults.faults
        assert rebuilt.profile == spec.profile

    def test_key_excludes_experiment_and_label(self):
        spec = tiny_spec()
        a, b = sim_job("fig7", spec), sim_job("fig9", spec)
        assert a.key == b.key
        assert a.label != b.label

    def test_key_changes_with_payload(self):
        assert sim_job("x", tiny_spec(seed=0)).key != sim_job("x", tiny_spec(seed=1)).key

    def test_unplannable_specs_raise(self):
        class CustomSchedule(ConstantSchedule):
            """Subclasses are unplannable: a worker cannot rebuild them."""

        with pytest.raises(UnplannableSpec):
            spec_to_payload(tiny_spec(observe=True))
        with pytest.raises(UnplannableSpec):
            spec_to_payload(tiny_spec(schedule=CustomSchedule(clients=2)))
        with pytest.raises(UnplannableSpec):
            spec_to_payload(tiny_spec(overrides={"bad": object()}))

    @pytest.mark.parametrize(
        "schedule",
        [
            ConstantSchedule(clients=2),
            StepSchedule(steps=((0.0, 1), (0.2, 3))),
            BurstSchedule(base=1, burst=4, period=0.2, burst_duration=0.05),
        ],
        ids=["constant", "step", "burst"],
    )
    def test_builtin_schedules_roundtrip(self, schedule):
        payload = spec_to_payload(tiny_spec(schedule=schedule))
        json.dumps(payload)
        rebuilt = payload_to_spec(payload)
        assert rebuilt.schedule == schedule
        assert spec_to_payload(rebuilt) == payload

    def test_arrivals_roundtrip(self):
        arrivals = ArrivalSpec(steps=((0.0, 100.0), (0.2, 400.0)))
        payload = spec_to_payload(tiny_spec(arrivals=arrivals))
        json.dumps(payload)
        rebuilt = payload_to_spec(payload)
        assert rebuilt.arrivals == arrivals
        assert spec_to_payload(rebuilt) == payload

    def test_cross_experiment_jobs_dedup_by_key(self):
        jobs = plan_campaign(["fig7", "fig9"], quick=True, runs=1, duration=0.3)
        keys = [job.key for job in jobs]
        # fig7's 2x/8x idem points reappear in fig9b's sweep.
        assert len(set(keys)) < len(keys)

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    @pytest.mark.parametrize("quick", [True, False])
    def test_plan_covers_exactly_what_run_executes(
        self, experiment_id, quick, tiny_result
    ):
        """Every sim/cell ``run()`` asks for is in the plan, and vice versa."""
        recorder = RecordingExecutor(tiny_result)
        with common.use_executor(recorder):
            EXPERIMENTS[experiment_id].run(
                quick=quick, runs=1, seed0=3, duration=0.5
            )
        planned = plan_experiment(
            experiment_id, quick=quick, runs=1, seed0=3, duration=0.5
        )
        assert sorted(recorder.keys) == sorted(job.key for job in planned)


class TestCache:
    def test_store_load_roundtrip(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path)
        job = sim_job("t", tiny_spec())
        cache.store(job.key, tiny_result, job)
        loaded = cache.load(job.key)
        assert result_fingerprint(loaded) == result_fingerprint(tiny_result)
        meta = json.loads(
            (tmp_path / job.key[:2] / f"{job.key}.json").read_text()
        )
        assert meta["label"] == job.label

    def test_missing_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("0" * 64) is MISS
        assert cache.stats.misses == 1

    def test_corrupt_entry_is_evicted_and_missed(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path)
        job = sim_job("t", tiny_spec())
        cache.store(job.key, tiny_result, job)
        (tmp_path / job.key[:2] / f"{job.key}.pkl").write_bytes(b"not a pickle")
        assert cache.load(job.key) is MISS
        assert cache.stats.corrupt == 1
        assert not cache.contains(job.key)

    def test_fingerprint_masks_object_identity(self, tiny_result):
        # keep_metrics embeds repr()s with memory addresses; two loads of
        # the same result must fingerprint identically regardless.
        import pickle

        clone = pickle.loads(pickle.dumps(tiny_result))
        assert result_fingerprint(clone) == result_fingerprint(tiny_result)

    def test_should_verify_bounds_and_determinism(self):
        key = "ab" * 32
        assert not should_verify(key, 0.0)
        assert should_verify(key, 1.0)
        assert should_verify(key, 0.3) == should_verify(key, 0.3)


class TestPool:
    def test_execute_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [sim_job("t", tiny_spec())]
        results, stats = execute_jobs(jobs, workers=1, cache=cache)
        assert stats.executed == 1 and stats.cache_hits == 0 and stats.stored == 1
        again, stats2 = execute_jobs(jobs, workers=1, cache=cache)
        assert stats2.cache_hits == 1 and stats2.executed == 0
        assert stats2.hit_rate == 1.0
        key = jobs[0].key
        assert result_fingerprint(again[key]) == result_fingerprint(results[key])

    def test_duplicate_jobs_execute_once(self, tmp_path):
        job = sim_job("t", tiny_spec())
        results, stats = execute_jobs([job, job], workers=1, cache=None)
        assert stats.planned == 2 and stats.unique == 1 and stats.executed == 1
        assert list(results) == [job.key]

    def test_verification_catches_stale_entry(self, tmp_path, tiny_result):
        from repro.campaign import CacheVerificationError

        cache = ResultCache(tmp_path)
        job = sim_job("t", tiny_spec(seed=1))
        # Poison the cache: the seed=0 result stored under the seed=1 key.
        cache.store(job.key, tiny_result, job)
        with pytest.raises(CacheVerificationError):
            execute_jobs([job], workers=1, cache=cache, verify_fraction=1.0)
        assert not cache.contains(job.key)  # stale entry evicted


class TestCampaignExecutor:
    def test_inline_fallback_counts_plan_drift(self, tiny_result):
        stats = ExecutionStats()
        spec = tiny_spec()
        executor = CampaignExecutor({}, stats)
        first = executor.run_spec(spec)
        assert stats.inline_misses == 1
        # The inline result is memoised, so a repeat is served from it.
        assert executor.run_spec(spec) is first
        assert stats.inline_misses == 1

    def test_unplannable_spec_runs_inline(self):
        stats = ExecutionStats()
        executor = CampaignExecutor({}, stats)
        result = executor.run_spec(tiny_spec(observe=True))
        assert result.obs is not None
        assert stats.inline_misses == 1


class TestCampaignEndToEnd:
    IDS = ["fig2", "fig7"]
    SETTINGS = dict(quick=True, runs=1, duration=0.25, seed0=0)

    def serial_texts(self):
        return {
            experiment_id: EXPERIMENTS[experiment_id].render(
                EXPERIMENTS[experiment_id].run(**self.SETTINGS)
            )
            for experiment_id in self.IDS
        }

    def test_parallel_campaign_matches_serial_and_caches(self, shared_cache_dir):
        serial = self.serial_texts()
        options = CampaignOptions(
            experiments=list(self.IDS),
            jobs=4,
            cache_dir=shared_cache_dir,
            **self.SETTINGS,
        )
        cold = run_campaign(options)
        assert [o.experiment_id for o in cold.outcomes] == self.IDS
        assert {o.experiment_id: o.text for o in cold.outcomes} == serial
        assert cold.stats.inline_misses == 0  # the plan covered everything
        assert cold.stats.executed == cold.stats.unique

        warm = run_campaign(options)
        assert {o.experiment_id: o.text for o in warm.outcomes} == serial
        assert warm.stats.executed == 0
        assert warm.stats.hit_rate == 1.0
        assert warm.exit_code == 0

    def test_baseline_cycle_via_cli(self, shared_cache_dir, tmp_path, capsys):
        """--update-baselines → --check passes → perturb → --check fails."""
        from repro.cli import main

        baseline_dir = tmp_path / "baselines"
        argv = [
            "campaign", "--experiments", "fig2", "--quick", "--runs", "1",
            "--duration", "0.25", "--jobs", "1",
            "--cache-dir", str(shared_cache_dir),
            "--baseline-dir", str(baseline_dir),
        ]
        assert main(argv + ["--update-baselines"]) == 0
        capsys.readouterr()
        assert main(argv + ["--check"]) == 0
        err = capsys.readouterr().err
        assert "=> PASS" in err

        path = baseline_path(baseline_dir, "fig2")
        document = json.loads(path.read_text())
        document["metrics"]["knee.throughput"] *= 1.5
        path.write_text(json.dumps(document))
        assert main(argv + ["--check"]) == 1
        err = capsys.readouterr().err
        assert "regressed" in err and "=> FAIL" in err

    def test_unknown_experiment_exits_two(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--experiments", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestBaselines:
    SETTINGS = dict(quick=True, runs=1, duration=0.5, seed0=0)

    def test_write_then_check_passes(self, tmp_path):
        write_baseline(tmp_path, "fig2", {"m": 100.0}, self.SETTINGS)
        report = check_baselines(tmp_path, {"fig2": {"m": 110.0}}, self.SETTINGS)
        assert report.ok
        assert "=> PASS" in report.render()

    def test_drift_beyond_tolerance_fails(self, tmp_path):
        write_baseline(tmp_path, "fig2", {"m": 100.0}, self.SETTINGS)
        report = check_baselines(tmp_path, {"fig2": {"m": 130.0}}, self.SETTINGS)
        assert not report.ok
        assert report.regressions[0].status == "regressed"

    def test_settings_mismatch_fails(self, tmp_path):
        write_baseline(tmp_path, "fig2", {"m": 100.0}, self.SETTINGS)
        other = dict(self.SETTINGS, runs=3)
        report = check_baselines(tmp_path, {"fig2": {"m": 100.0}}, other)
        assert not report.ok
        assert report.entries[0].status == "settings-mismatch"

    def test_missing_baseline_fails(self, tmp_path):
        report = check_baselines(tmp_path, {"fig2": {"m": 1.0}}, self.SETTINGS)
        assert not report.ok
        assert report.entries[0].status == "missing-baseline"

    def test_new_metric_passes_missing_metric_fails(self, tmp_path):
        write_baseline(tmp_path, "fig2", {"a": 1.0, "b": 2.0}, self.SETTINGS)
        report = check_baselines(
            tmp_path, {"fig2": {"a": 1.0, "c": 3.0}}, self.SETTINGS
        )
        statuses = {entry.metric: entry.status for entry in report.entries}
        assert statuses == {"a": "ok", "b": "missing-metric", "c": "new-metric"}
        assert not report.ok

    def test_per_metric_tolerance_override(self, tmp_path):
        path = write_baseline(tmp_path, "fig2", {"m": 100.0}, self.SETTINGS)
        document = json.loads(path.read_text())
        document["tolerances"] = {"m": {"relative": 0.5}}
        path.write_text(json.dumps(document))
        report = check_baselines(tmp_path, {"fig2": {"m": 140.0}}, self.SETTINGS)
        assert report.ok

    def test_extract_headlines_unknown_experiment(self):
        assert extract_headlines("not-an-experiment", object()) == {}

    def test_extract_headlines_fig2(self):
        from repro.experiments.fig2_existing_protocols import Fig2Data

        point = common.Point(
            system="paxos", clients=50, load_factor=1.0, throughput=50_000.0,
            throughput_std=0.0, latency_ms=1.2, latency_std_ms=0.1,
            reject_throughput=0.0, reject_latency_ms=0.0,
            reject_latency_std_ms=0.0, timeouts=0, runs=1,
        )
        headlines = extract_headlines("fig2", Fig2Data([point]))
        assert headlines["knee.throughput"] == 50_000.0
        assert set(headlines) == {
            "knee.throughput", "knee.latency_ms", "max_load.latency_ms",
        }

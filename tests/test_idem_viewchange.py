"""Integration tests for IDEM's view change and crash robustness."""

from repro.cluster.builder import build_cluster
from repro.cluster.faults import FaultSchedule

from tests.conftest import live_replicas, small_profile, total_successes


def crash_run(
    system: str = "idem",
    clients: int = 4,
    crash_at: float = 0.5,
    duration: float = 3.5,
    target: str = "leader",
    overrides=None,
    vc_timeout: float = 0.4,
):
    """Run a cluster with a mid-run crash and a shortened VC timeout."""
    merged = {"view_change_timeout": vc_timeout}
    merged.update(overrides or {})
    cluster = build_cluster(
        system,
        clients,
        seed=1,
        profile=small_profile(),
        overrides=merged,
        stop_time=duration,
    )
    faults = FaultSchedule()
    if target == "leader":
        faults.crash_leader(crash_at)
    else:
        faults.crash_follower(crash_at)
    faults.install(cluster)
    cluster.run_until(duration)
    cluster.stop_clients()
    cluster.run_until(duration + 1.0)
    return cluster


class TestLeaderCrash:
    def test_view_changes_and_service_resumes(self):
        cluster = crash_run()
        survivors = live_replicas(cluster)
        assert len(survivors) == 2
        assert all(replica.view >= 1 for replica in survivors)
        # The service processed requests after the crash.
        post = cluster.metrics.reply_counter.rate_between(2.0, 3.5)
        assert post > 0

    def test_survivors_converge(self):
        cluster = crash_run()
        survivors = live_replicas(cluster)
        transfers = sum(r.stats["state_transfers"] for r in survivors)
        if transfers == 0:
            assert len({r.exec_sqn for r in survivors}) == 1
            assert len({r.exec_order_digest for r in survivors}) == 1
        assert len({r.app.digest() for r in survivors}) == 1

    def test_new_leader_is_view_determined(self):
        cluster = crash_run()
        survivors = live_replicas(cluster)
        view = max(replica.view for replica in survivors)
        assert view % cluster.config.n == cluster.current_leader()
        assert not cluster.replicas[cluster.current_leader()].halted

    def test_clients_keep_making_progress(self):
        cluster = crash_run()
        assert all(client.successes > 0 for client in cluster.clients)

    def test_rejections_continue_during_view_change(self):
        """The headline robustness claim: collaborative rejection keeps
        notifying clients while the leader is dead."""
        cluster = crash_run(
            clients=20,
            overrides={"reject_threshold": 2},
            duration=3.0,
            crash_at=0.5,
        )
        gap = cluster.metrics.reject_gaps.longest_gap_overlapping(0.5, until=3.0)
        assert gap < 0.5

    def test_repeated_leader_crashes(self):
        cluster = build_cluster(
            "idem",
            3,
            seed=2,
            profile=small_profile(),
            overrides={"view_change_timeout": 0.3},
            stop_time=3.0,
        )
        FaultSchedule().crash_leader(0.5).crash_leader(1.5).install(cluster)
        cluster.run_until(3.0)
        cluster.stop_clients()
        cluster.run_until(4.0)
        survivors = live_replicas(cluster)
        assert len(survivors) == 1  # f exceeded: no progress guarantee,
        # but the last replica must not have crashed logically.
        assert survivors[0].view >= 1


class TestFollowerCrash:
    def test_no_view_change_needed(self):
        cluster = crash_run(target="follower")
        survivors = live_replicas(cluster)
        assert all(replica.view == 0 for replica in survivors)

    def test_service_uninterrupted(self):
        cluster = crash_run(target="follower", duration=2.0)
        # Throughput in every 0.25s bucket after the crash.
        series = cluster.metrics.reply_counter.series()
        post_crash = [rate for time, rate in series if 0.75 <= time < 1.75]
        assert post_crash and all(rate > 0 for rate in post_crash)

    def test_survivors_converge(self):
        cluster = crash_run(target="follower")
        survivors = live_replicas(cluster)
        assert len({r.app.digest() for r in survivors}) == 1


class TestNoAqmUnderCrash:
    def test_noaqm_still_safe_if_slower(self):
        cluster = crash_run(system="idem-noaqm", clients=10, duration=3.0)
        survivors = live_replicas(cluster)
        assert len({r.app.digest() for r in survivors}) == 1
        assert total_successes(cluster) > 0

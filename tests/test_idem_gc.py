"""Tests for implicit garbage collection, checkpointing and state transfer."""

from repro.cluster.builder import build_cluster
from repro.net.addresses import replica_address

from tests.conftest import run_cluster, small_profile


class TestImplicitGc:
    def test_window_advances_with_execution(self):
        cluster = run_cluster("idem", clients=10, duration=0.8)
        for replica in cluster.replicas:
            # Far more than r_max instances were agreed; the window must
            # have moved (Theorem 6.1).
            assert replica.next_sqn > cluster.config.r_max
            assert replica.window_start > 1

    def test_window_start_stays_behind_execution_head(self):
        cluster = run_cluster("idem", clients=10, duration=0.8)
        for replica in cluster.replicas:
            assert replica.window_start <= replica.exec_sqn + 1

    def test_old_instances_are_discarded(self):
        cluster = run_cluster("idem", clients=10, duration=0.8)
        for replica in cluster.replicas:
            assert all(sqn >= replica.window_start for sqn in replica.instances)
            # The live instance set is bounded by the window contents.
            assert len(replica.instances) <= cluster.config.window_size

    def test_request_store_is_garbage_collected(self):
        cluster = run_cluster("idem", clients=10, duration=0.8)
        for replica in cluster.replicas:
            executed = replica.stats["executed"]
            assert executed > len(replica.request_store)
            # Exactly the requests the retained window references (plus
            # any still-active slots) may keep their bodies.
            retained = sum(len(i.rids) for i in replica.instances.values())
            assert len(replica.request_store) <= retained + len(replica.active)

    def test_proposed_rids_pruned_with_window(self):
        cluster = run_cluster("idem", clients=10, duration=0.8)
        leader = cluster.replicas[0]
        retained = sum(len(i.rids) for i in leader.instances.values())
        assert len(leader.proposed_rids) <= retained + len(leader._propose_queue)


class TestCheckpointing:
    def test_checkpoint_records_execution_position(self):
        cluster = run_cluster(
            "idem", clients=10, duration=0.6, overrides={"checkpoint_interval": 32}
        )
        for replica in cluster.replicas:
            assert replica._checkpoint is not None
            sqn, snapshot, executed_onr = replica._checkpoint
            assert sqn % 32 == 0
            assert isinstance(snapshot, dict)
            assert executed_onr

    def test_checkpoint_interval_respected(self):
        cluster = run_cluster(
            "idem", clients=10, duration=0.6, overrides={"checkpoint_interval": 64}
        )
        leader = cluster.replicas[0]
        expected = leader.exec_sqn // 64
        assert abs(leader.stats["checkpoints"] - expected) <= 1


class TestStateTransfer:
    def test_isolated_replica_catches_up_via_checkpoint(self):
        """A replica partitioned away falls beyond the implicit-GC
        horizon and recovers through a checkpoint transfer."""
        cluster = build_cluster(
            "idem",
            10,
            seed=1,
            profile=small_profile(),
            overrides={"checkpoint_interval": 64, "reject_threshold": 10},
            stop_time=2.0,
        )
        lagging = replica_address(2)
        for other in (replica_address(0), replica_address(1)):
            cluster.network.partition(lagging, other)
        for client in cluster.clients:
            cluster.network.partition(client.address, lagging)
        cluster.run_until(1.2)
        for other in (replica_address(0), replica_address(1)):
            cluster.network.heal(lagging, other)
        for client in cluster.clients:
            cluster.network.heal(client.address, lagging)
        cluster.run_until(2.0)
        cluster.stop_clients()
        cluster.run_until(3.0)
        lagger = cluster.replicas[2]
        assert lagger.stats["state_transfers"] >= 1
        assert lagger.exec_sqn == cluster.replicas[0].exec_sqn
        assert lagger.app.digest() == cluster.replicas[0].app.digest()

"""Unit tests for traffic accounting and addresses."""

from repro.net.addresses import (
    Address,
    CLIENT,
    REPLICA,
    client_address,
    replica_address,
)
from repro.net.traffic import TrafficMeter


class TestAddresses:
    def test_kinds(self):
        assert replica_address(0).kind == REPLICA
        assert client_address(3).kind == CLIENT

    def test_str(self):
        assert str(replica_address(2)) == "replica-2"
        assert str(client_address(7)) == "client-7"

    def test_equality_and_hashing(self):
        assert replica_address(1) == Address(REPLICA, 1)
        assert replica_address(1) != client_address(1)
        assert len({replica_address(1), Address(REPLICA, 1)}) == 1


class TestTrafficMeter:
    def test_totals(self):
        meter = TrafficMeter()
        meter.record(client_address(0), replica_address(0), "Request", 100)
        meter.record(replica_address(0), replica_address(1), "Commit", 30)
        assert meter.total_bytes == 130
        assert meter.total_messages == 2

    def test_flow_classification(self):
        meter = TrafficMeter()
        meter.record(client_address(0), replica_address(0), "Request", 100)
        meter.record(replica_address(0), client_address(0), "Reply", 50)
        meter.record(replica_address(0), replica_address(1), "Commit", 30)
        assert meter.client_bytes == 150
        assert meter.replica_bytes == 30
        assert meter.flow_bytes(CLIENT, REPLICA) == 100
        assert meter.flow_bytes(REPLICA, CLIENT) == 50

    def test_by_type_breakdown(self):
        meter = TrafficMeter()
        for _ in range(3):
            meter.record(client_address(0), replica_address(0), "Request", 100)
        meter.record(replica_address(0), client_address(0), "Reply", 50)
        breakdown = meter.by_type()
        assert breakdown["Request"] == 300
        assert breakdown["Reply"] == 50

    def test_snapshot(self):
        meter = TrafficMeter()
        meter.record(client_address(0), replica_address(0), "Request", 100)
        snapshot = meter.snapshot()
        assert snapshot == {
            "total_bytes": 100,
            "total_messages": 1,
            "client_bytes": 100,
            "replica_bytes": 0,
        }

    def test_unknown_flow_is_zero(self):
        assert TrafficMeter().flow_bytes(REPLICA, CLIENT) == 0


class TestTrafficCompositionEndToEnd:
    def test_idem_request_traffic_dominates_and_commits_are_small(self):
        """With 1 KB values, client requests are the bulk of the bytes
        and the id-based agreement messages are a sliver."""
        from repro.cluster.builder import build_cluster
        from tests.conftest import small_profile

        cluster = build_cluster(
            "idem", 3, seed=1, profile=small_profile(), stop_time=0.3
        )
        cluster.run_until(0.3)
        breakdown = cluster.network.traffic.by_type()
        assert breakdown["Request"] > 0.5 * cluster.network.traffic.total_bytes
        agreement = (
            breakdown.get("Propose", 0)
            + breakdown.get("Commit", 0)
            + breakdown.get("RequireBatch", 0)
        )
        assert agreement < 0.1 * breakdown["Request"]

"""Tests for repro.obs: metrics registry, lifecycle tracing, exporters.

The load-bearing property is the observer-only contract: a seeded run
with tracing attached must return byte-identical results to the same
run without it.  Everything else (span reconstruction, exports, fault
annotation) builds on traces from one shared observed run.
"""

import io
import json

import pytest

from repro.cluster.faults import FaultSchedule
from repro.cluster.runner import RunSpec, run_experiment
from repro.obs import (
    MetricsRegistry,
    ObservabilityHub,
    RequestTracer,
    build_breakdowns,
    chrome_trace_events,
    reject_reason_histogram,
    render_report,
    top_slowest,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs import spans

from tests.conftest import small_profile


def fingerprint(result):
    """Every result field that must not move when tracing is attached."""
    return (
        result.throughput,
        result.latency,
        result.reject_throughput,
        result.reject_latency,
        result.timeouts,
        tuple(sorted(result.traffic.items())),
        tuple(tuple(sorted(stats.items())) for stats in result.replica_stats),
    )


def observed_run(**kwargs):
    kwargs.setdefault("system", "idem")
    kwargs.setdefault("clients", 6)
    kwargs.setdefault("duration", 0.5)
    kwargs.setdefault("warmup", 0.15)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("profile", small_profile())
    kwargs.setdefault("observe", True)
    return run_experiment(RunSpec(**kwargs))


@pytest.fixture(scope="module")
def traced_result():
    """One observed run shared by all read-only assertions below."""
    return observed_run()


# -- metrics registry ------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests", replica=0)
        counter.inc()
        counter.inc(2)
        assert counter.value == 3

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", replica=0)
        b = registry.counter("requests", replica=1)
        a.inc()
        assert a.value == 1
        assert b.value == 0
        assert registry.counter("requests", replica=0) is a

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_tracks_extremes(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        for value in (3.0, 1.0, 5.0):
            gauge.set(value)
        assert gauge.value == 5.0
        assert gauge.minimum == 1.0
        assert gauge.maximum == 5.0
        assert gauge.updates == 3

    def test_histogram_percentiles_ordered(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.percentile(0.5) <= histogram.percentile(0.99)
        assert histogram.percentile(0.99) <= histogram.maximum

    def test_snapshot_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        names = [entry["name"] for entry in registry.snapshot()]
        assert names == sorted(names)
        assert all(entry["kind"] == "counter" for entry in registry.snapshot())


# -- the observer-only contract --------------------------------------------


class TestObserverOnly:
    def test_traced_run_is_byte_identical(self):
        plain = observed_run(observe=False)
        traced = observed_run()
        assert plain.obs is None
        assert traced.obs is not None
        assert fingerprint(plain) == fingerprint(traced)

    def test_identical_under_rejection_load(self):
        # Overload a tiny acceptance buffer so the reject path runs too.
        kwargs = dict(
            clients=20,
            seed=3,
            overrides={"reject_threshold": 2},
        )
        plain = observed_run(observe=False, **kwargs)
        traced = observed_run(**kwargs)
        assert traced.reject_throughput > 0, "scenario must exercise rejection"
        assert fingerprint(plain) == fingerprint(traced)

    def test_identical_across_a_crash_and_recovery(self):
        def schedule():
            return FaultSchedule().crash_follower(0.25).recover_replica(0.45)

        kwargs = dict(duration=0.7, warmup=0.1, seed=5)
        plain = observed_run(observe=False, faults=schedule(), **kwargs)
        traced = observed_run(faults=schedule(), **kwargs)
        assert fingerprint(plain) == fingerprint(traced)
        # The fault plan is annotated into the trace as windows.
        faults = [
            event for event in traced.obs.tracer.events if event.kind == spans.FAULT
        ]
        assert len(faults) == 1
        assert faults[0].data["begin"] == 0.25
        assert faults[0].data["end"] == 0.45


# -- lifecycle tracing -----------------------------------------------------


class TestLifecycle:
    def test_all_lifecycle_kinds_present(self, traced_result):
        counts = traced_result.obs.tracer.by_kind()
        for kind in (
            spans.CLIENT_SEND,
            spans.RECV,
            spans.ACCEPT,
            spans.PROPOSE,
            spans.QUORUM,
            spans.EXECUTE,
            spans.REPLY_SENT,
            spans.CLIENT_OUTCOME,
            spans.SAMPLE,
        ):
            assert counts.get(kind, 0) > 0, kind

    def test_breakdown_stages_sum_to_latency(self, traced_result):
        breakdowns = build_breakdowns(traced_result.obs.tracer)
        slowest = top_slowest(breakdowns, k=5)
        assert slowest
        for breakdown in slowest:
            assert breakdown.outcome == "success"
            total = sum(duration for _label, duration in breakdown.stages())
            assert total == pytest.approx(breakdown.latency, rel=1e-6)

    def test_registry_captures_replica_internals(self, traced_result):
        registry = traced_result.obs.registry
        names = {entry["name"] for entry in registry.snapshot()}
        for expected in (
            "busy_fraction",
            "queue_depth",
            "queue_depth_at_arrival",
            "active_at_decision",
            "handling_cost",
        ):
            assert expected in names, expected

    def test_reject_reasons_recorded(self):
        result = observed_run(
            system="paxos-lbr", clients=30, seed=2, overrides={"reject_threshold": 2}
        )
        histogram = reject_reason_histogram(result.obs.tracer)
        assert histogram.get("leader-threshold", 0) > 0

    def test_render_report_mentions_stages_and_reasons(self, traced_result):
        report = render_report(
            traced_result.obs.tracer, traced_result.obs.registry, k=3
        )
        assert "slowest" in report
        assert "agreement (propose -> quorum)" in report
        assert "busy_fraction" in report


# -- exporters -------------------------------------------------------------


class TestExporters:
    def test_jsonl_roundtrip(self, traced_result):
        stream = io.StringIO()
        lines = write_jsonl(traced_result.obs.tracer, stream)
        payload = stream.getvalue().splitlines()
        assert lines == len(payload) == len(traced_result.obs.tracer.events)
        for line in payload[:100]:
            row = json.loads(line)
            assert {"ts", "node", "kind"} <= set(row)
            assert set(row) <= {"ts", "node", "kind", "rid", "data"}

    def test_chrome_trace_is_valid(self, traced_result):
        stream = io.StringIO()
        write_chrome_trace(
            traced_result.obs.tracer, stream, traced_result.obs.registry
        )
        document = json.loads(stream.getvalue())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events
        phases = {event["ph"] for event in events}
        assert {"M", "X", "i", "C"} <= phases
        names = [
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        ]
        assert names == ["repro-sim"]
        for event in events:
            assert event["pid"] == 1
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0

    def test_request_spans_cover_successes(self, traced_result):
        rows = chrome_trace_events(traced_result.obs.tracer)
        requests = [
            row
            for row in rows
            if row.get("cat") == "request" and "[success]" in row.get("name", "")
        ]
        assert requests
        assert all(row["ph"] == "X" for row in requests)


# -- tracer bounds ---------------------------------------------------------


class TestRequestTracer:
    def test_cap_truncates_and_counts(self):
        tracer = RequestTracer(max_events=3)
        for index in range(5):
            tracer.emit(float(index), "replica-0", spans.RECV, (0, index))
        assert len(tracer) == 3
        assert tracer.truncated == 2

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            RequestTracer(max_events=0)

    def test_for_rid_filters(self):
        tracer = RequestTracer()
        tracer.emit(0.0, "client-0", spans.CLIENT_SEND, (0, 1))
        tracer.emit(0.1, "replica-0", spans.RECV, (0, 2))
        assert [event.kind for event in tracer.for_rid((0, 1))] == [spans.CLIENT_SEND]

"""Unit tests for latency models."""

import random

import pytest

from repro.net.latency import ConstantLatency, LogNormalLatency, UniformLatency


def rng() -> random.Random:
    return random.Random(42)


class TestConstantLatency:
    def test_sample_is_constant(self):
        model = ConstantLatency(0.001)
        r = rng()
        assert all(model.sample(r) == 0.001 for _ in range(10))

    def test_mean(self):
        assert ConstantLatency(0.002).mean() == 0.002

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.001)


class TestUniformLatency:
    def test_samples_within_bounds(self):
        model = UniformLatency(0.001, 0.002)
        r = rng()
        for _ in range(100):
            assert 0.001 <= model.sample(r) <= 0.002

    def test_mean(self):
        assert UniformLatency(1.0, 3.0).mean() == 2.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)

    def test_rejects_negative_low(self):
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 1.0)


class TestLogNormalLatency:
    def test_samples_above_floor(self):
        model = LogNormalLatency(median=100e-6, sigma=0.3, floor=20e-6)
        r = rng()
        for _ in range(200):
            assert model.sample(r) > 20e-6

    def test_empirical_median_close_to_parameter(self):
        model = LogNormalLatency(median=100e-6, sigma=0.3)
        r = rng()
        samples = sorted(model.sample(r) for _ in range(4001))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(100e-6, rel=0.05)

    def test_empirical_mean_close_to_analytic(self):
        model = LogNormalLatency(median=100e-6, sigma=0.25)
        r = rng()
        samples = [model.sample(r) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(model.mean(), rel=0.03)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(median=1.0, sigma=-0.1)

"""End-to-end runs with non-default workloads (YCSB B/C, scans)."""

from dataclasses import replace

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.profile import ClusterProfile
from repro.workload.ycsb import WORKLOAD_B, WORKLOAD_C, YcsbProfile

from tests.conftest import assert_replicas_consistent, total_successes


def run_workload(profile: YcsbProfile, system="idem", clients=5, duration=0.4):
    cluster_profile = ClusterProfile(
        workload=replace(profile, record_count=50)
    )
    cluster = build_cluster(
        system, clients, seed=2, profile=cluster_profile, stop_time=duration
    )
    cluster.run_until(duration)
    cluster.stop_clients()
    cluster.run_until(duration + 0.5)
    return cluster


def test_read_heavy_workload_b():
    cluster = run_workload(WORKLOAD_B)
    assert total_successes(cluster) > 100
    assert_replicas_consistent(cluster)


def test_read_only_workload_c_leaves_state_untouched():
    cluster = run_workload(WORKLOAD_C)
    assert total_successes(cluster) > 100
    # 50 preloaded records, nothing else: reads only.
    assert all(len(replica.app) == 50 for replica in cluster.replicas)


def test_read_replies_carry_the_value_bytes():
    """READ replies ship the record, so read-heavy runs have heavier
    replica->client traffic per op than update-heavy ones."""
    reads = run_workload(WORKLOAD_C)
    writes = run_workload(replace(WORKLOAD_C, name="w", read_proportion=0.0, update_proportion=1.0))
    reads_out = reads.network.traffic.flow_bytes("replica", "client")
    writes_out = writes.network.traffic.flow_bytes("replica", "client")
    reads_per_op = reads_out / total_successes(reads)
    writes_per_op = writes_out / total_successes(writes)
    assert reads_per_op > 3 * writes_per_op


def test_scan_workload_executes_consistently():
    scan_profile = YcsbProfile(
        "scan-mix",
        read_proportion=0.4,
        update_proportion=0.4,
        scan_proportion=0.2,
        max_scan_length=5,
    )
    cluster = run_workload(scan_profile)
    assert total_successes(cluster) > 50
    assert_replicas_consistent(cluster)


def test_insert_workload_grows_the_store():
    insert_profile = YcsbProfile(
        "insert-mix",
        read_proportion=0.5,
        update_proportion=0.3,
        insert_proportion=0.2,
    )
    cluster = run_workload(insert_profile)
    sizes = {len(replica.app) for replica in cluster.replicas}
    assert len(sizes) == 1
    assert sizes.pop() > 50  # inserts extended the keyspace


@pytest.mark.parametrize("system", ["paxos", "bftsmart"])
def test_baselines_handle_read_heavy_workloads(system):
    cluster = run_workload(WORKLOAD_B, system=system)
    assert total_successes(cluster) > 100
    assert_replicas_consistent(cluster)

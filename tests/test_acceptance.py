"""Unit tests for IDEM's acceptance tests (paper Section 5.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.acceptance import (
    AlwaysAccept,
    AqmPriorityTest,
    TailDrop,
    make_acceptance_test,
)
from repro.core.config import IdemConfig


class TestAlwaysAccept:
    def test_accepts_everything(self):
        test = AlwaysAccept()
        assert test.accept((1, 1), 0.0, 10**9)


class TestTailDrop:
    def test_accepts_below_threshold(self):
        test = TailDrop(50)
        assert test.accept((1, 1), 0.0, 49)

    def test_rejects_at_threshold(self):
        test = TailDrop(50)
        assert not test.accept((1, 1), 0.0, 50)
        assert not test.accept((1, 1), 0.0, 120)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            TailDrop(0)


class TestAqmPriorityTest:
    def make(self, threshold=50) -> AqmPriorityTest:
        return AqmPriorityTest(threshold, start_fraction=0.6, time_slice=2.0)

    def test_everything_accepted_at_low_load(self):
        test = self.make()
        for cid in range(120):
            assert test.accept((cid, 1), 0.0, 10)

    def test_everything_rejected_when_full(self):
        test = self.make()
        for cid in range(120):
            assert not test.accept((cid, 1), 0.0, 50)

    def test_prioritized_clients_survive_heavy_load(self):
        test = self.make()
        # Make groups known: clients 0..99 -> groups 0 and 1.
        for cid in (0, 99):
            test.accept((cid, 1), 0.0, 0)
        # During slice 0 group 0 is prioritized: any client 0..49 passes
        # even at 98% load.
        assert test.prioritized_group(0.0) == 0
        for cid in range(0, 50, 7):
            assert test.accept((cid, 1), 0.1, 49)

    def test_prioritization_rotates_with_time_slices(self):
        test = self.make()
        for cid in (0, 99):
            test.accept((cid, 1), 0.0, 0)
        assert test.prioritized_group(0.0) == 0
        assert test.prioritized_group(2.5) == 1
        assert test.prioritized_group(4.1) == 0

    def test_group_assignment(self):
        test = self.make(threshold=50)
        assert test.group_of(0) == 0
        assert test.group_of(49) == 0
        assert test.group_of(50) == 1
        assert test.group_of(149) == 2

    def test_nonprioritized_rejection_is_probabilistic_in_aggregate(self):
        test = self.make()
        for cid in (0, 99):
            test.accept((cid, 1), 0.0, 0)
        # Group 1 (cids 50..99) is not prioritized in slice 0; at 90%
        # load roughly 90% of its requests should be rejected.
        decisions = [
            test.accept((cid, onr), 0.1, 45)
            for cid in range(50, 100)
            for onr in range(1, 21)
        ]
        reject_share = decisions.count(False) / len(decisions)
        assert 0.8 < reject_share < 0.98

    def test_below_start_fraction_everyone_passes(self):
        test = self.make()
        for cid in (0, 99):
            test.accept((cid, 1), 0.0, 0)
        for cid in range(50, 100, 5):
            assert test.accept((cid, 1), 0.1, 25)  # 50% < 60% start

    def test_replicas_reach_identical_decisions_at_equal_load(self):
        """The shared pseudo-random function makes two independent
        replica-side instances agree given the same observations."""
        a = self.make()
        b = self.make()
        for cid in (0, 99):
            a.accept((cid, 1), 0.0, 0)
            b.accept((cid, 1), 0.0, 0)
        for cid in range(100):
            for onr in range(1, 6):
                assert a.accept((cid, onr), 1.0, 42) == b.accept((cid, onr), 1.0, 42)

    @given(
        cid=st.integers(0, 500),
        onr=st.integers(1, 1000),
        active=st.integers(0, 49),
        now=st.floats(min_value=0, max_value=100),
    )
    def test_decision_is_deterministic_per_input(self, cid, onr, active, now):
        test = AqmPriorityTest(50)
        test._group_count = 11  # fix the group universe
        first = test.accept((cid, onr), now, active)
        assert test.accept((cid, onr), now, active) == first

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AqmPriorityTest(0)
        with pytest.raises(ValueError):
            AqmPriorityTest(50, time_slice=0)


class TestFactory:
    def test_default_is_aqm(self):
        assert isinstance(make_acceptance_test(IdemConfig()), AqmPriorityTest)

    def test_rejection_disabled_gives_always_accept(self):
        config = IdemConfig(rejection_enabled=False)
        assert isinstance(make_acceptance_test(config), AlwaysAccept)

    def test_taildrop_selection(self):
        config = IdemConfig(acceptance="taildrop")
        test = make_acceptance_test(config)
        assert isinstance(test, TailDrop)
        assert test.threshold == config.reject_threshold

    def test_unknown_name_rejected(self):
        config = IdemConfig()
        config.acceptance = "nonsense"
        with pytest.raises(ValueError):
            make_acceptance_test(config)

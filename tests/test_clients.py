"""Focused tests for client-side behaviour (Section 5.3 semantics)."""

from repro.cluster.builder import build_cluster
from repro.cluster.metrics import MetricsCollector
from repro.core.client import IdemClient
from repro.core.config import IdemConfig
from repro.net.addresses import replica_address
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.protocols.messages import Reject, Reply
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry
from repro.workload.ycsb import YcsbWorkload

from tests.conftest import run_cluster, small_profile


def make_client(optimistic: bool = True):
    """A lone IDEM client on a network with no replicas attached.

    Requests go nowhere, so tests drive the client by injecting replica
    responses directly through ``deliver``.
    """
    loop = EventLoop()
    rng = RngRegistry(1)
    network = Network(loop, rng, latency_model=ConstantLatency(1e-4))
    config = IdemConfig(optimistic_client=optimistic)
    metrics = MetricsCollector()
    client = IdemClient(
        0, loop, network, config, metrics, YcsbWorkload(), rng
    )
    network.attach(client)
    client.start(at=0.0)
    loop.run_until(0.001)  # the first request is now in flight
    assert client.current_rid is not None
    return loop, config, metrics, client


def test_reply_completes_the_operation():
    loop, config, metrics, client = make_client()
    rid = client.current_rid
    client.deliver(replica_address(0), Reply(rid, True, 1, 0))
    assert client.successes == 1
    assert client.current_rid is None


def test_stale_reply_is_ignored():
    loop, config, metrics, client = make_client()
    client.deliver(replica_address(0), Reply((0, 999), True, 1, 0))
    assert client.successes == 0
    assert client.current_rid is not None


def test_n_rejects_is_immediate_failure():
    loop, config, metrics, client = make_client()
    rid = client.current_rid
    for index in range(3):
        client.deliver(replica_address(index), Reject(rid))
    assert client.rejections == 1
    assert client.failure_aborts == 1
    assert client.ambivalent_aborts == 0


def test_optimistic_client_waits_the_grace_period():
    loop, config, metrics, client = make_client(optimistic=True)
    rid = client.current_rid
    client.deliver(replica_address(0), Reject(rid))
    client.deliver(replica_address(1), Reject(rid))
    # n - f = 2 rejects: ambivalence, but not aborted yet.
    assert client.rejections == 0
    loop.run_until(loop.now + config.optimistic_grace + 1e-4)
    assert client.rejections == 1
    assert client.ambivalent_aborts == 1


def test_optimistic_client_accepts_late_reply_during_grace():
    loop, config, metrics, client = make_client(optimistic=True)
    rid = client.current_rid
    client.deliver(replica_address(0), Reject(rid))
    client.deliver(replica_address(1), Reject(rid))
    client.deliver(replica_address(2), Reply(rid, True, 1, 0))
    assert client.successes == 1
    assert client.rejections == 0
    # The grace timer must not fire afterwards.
    loop.run_until(loop.now + 1.0)
    assert client.rejections == 0


def test_pessimistic_client_aborts_at_ambivalence():
    loop, config, metrics, client = make_client(optimistic=False)
    rid = client.current_rid
    client.deliver(replica_address(0), Reject(rid))
    assert client.rejections == 0
    client.deliver(replica_address(1), Reject(rid))
    assert client.rejections == 1
    assert client.ambivalent_aborts == 1


def test_duplicate_rejects_from_one_replica_do_not_abort():
    loop, config, metrics, client = make_client(optimistic=False)
    rid = client.current_rid
    client.deliver(replica_address(0), Reject(rid))
    client.deliver(replica_address(0), Reject(rid))
    assert client.rejections == 0


def test_backoff_after_rejection_is_within_the_configured_range():
    loop, config, metrics, client = make_client()
    rid = client.current_rid
    abort_time = loop.now
    for index in range(3):
        client.deliver(replica_address(index), Reject(rid))
    onr_before = client.onr
    # The next operation must start within [min, max] backoff.
    loop.run_until(abort_time + config.reject_backoff_min - 1e-6)
    assert client.onr == onr_before
    loop.run_until(abort_time + config.reject_backoff_max + 1e-6)
    assert client.onr == onr_before + 1


def test_fallback_invoked_on_rejection():
    calls = []
    loop = EventLoop()
    rng = RngRegistry(1)
    network = Network(loop, rng, latency_model=ConstantLatency(1e-4))
    config = IdemConfig()
    client = IdemClient(
        0, loop, network, config, MetricsCollector(), YcsbWorkload(), rng,
        fallback=calls.append,
    )
    network.attach(client)
    client.start(at=0.0)
    loop.run_until(0.001)
    rid = client.current_rid
    for index in range(3):
        client.deliver(replica_address(index), Reject(rid))
    assert len(calls) == 1
    assert calls[0] is not None  # the command the fallback must handle


def test_request_timeout_gives_up_and_moves_on():
    loop, config, metrics, client = make_client()
    loop.run_until(config.request_timeout + 0.01)
    assert client.timeouts >= 1
    assert metrics.timeouts >= 1


def test_retransmission_fires_until_an_outcome():
    loop, config, metrics, client = make_client()
    sent = []
    client._send_request = lambda request: sent.append(loop.now)  # type: ignore
    loop.run_until(config.retransmit_interval * 2.5)
    assert len(sent) >= 2


def test_operation_numbers_increase_monotonically():
    cluster = run_cluster("idem", clients=2, duration=0.3, profile=small_profile())
    for client in cluster.clients:
        assert client.onr == client.successes  # all ops completed, in order

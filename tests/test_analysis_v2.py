"""detlint v2: project index, call graph, interprocedural OBS005,
incremental cache and SARIF output.

The per-rule fixture matrix lives in ``test_analysis.py``; this file
covers everything that needs more than one module at a time.
"""

from __future__ import annotations

import dataclasses
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import incremental
from repro.analysis.__main__ import main
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    lint_paths,
    lint_project,
    lint_source,
    module_name_for,
)
from repro.analysis.incremental import LintCache, engine_fingerprint
from repro.analysis.index import ProjectIndex


def dedent(source: str) -> str:
    return textwrap.dedent(source)


# -- the project index --------------------------------------------------


MUTATOR = dedent(
    """\
    def poke(sim):
        sim.acceptance_threshold = 0
    """
)


def test_index_resolves_from_import_with_alias():
    index = ProjectIndex()
    index.add_source("repro.cluster.mutators", MUTATOR, "<m>")
    index.add_source(
        "repro.experiments.helpers",
        "from repro.cluster import mutators as m\n\ndef relay(sim):\n    m.poke(sim)\n",
        "<h>",
    )
    found = index.resolve_function("repro.experiments.helpers", "m.poke")
    assert found is not None and found.fqn == "repro.cluster.mutators.poke"


def test_index_resolves_reexport_through_package_init():
    index = ProjectIndex()
    index.add_source("repro.cluster.mutators", MUTATOR, "<m>")
    index.add_source(
        "repro.cluster",
        "from repro.cluster.mutators import poke\n",
        "<init>",
        is_package=True,
    )
    index.add_source(
        "repro.obs.probe",
        "import repro.cluster\n\ndef go(sim):\n    repro.cluster.poke(sim)\n",
        "<p>",
    )
    found = index.resolve_function("repro.obs.probe", "repro.cluster.poke")
    assert found is not None and found.fqn == "repro.cluster.mutators.poke"


def test_index_resolves_relative_reexport():
    index = ProjectIndex()
    index.add_source("repro.cluster.mutators", MUTATOR, "<m>")
    index.add_source(
        "repro.cluster",
        "from .mutators import poke\n",
        "<init>",
        is_package=True,
    )
    found = index.resolve_function("repro.cluster", "poke")
    assert found is not None and found.fqn == "repro.cluster.mutators.poke"


def test_index_resolves_star_import():
    index = ProjectIndex()
    index.add_source("repro.cluster.mutators", MUTATOR, "<m>")
    index.add_source(
        "repro.obs.star",
        "from repro.cluster.mutators import *\n\ndef go(sim):\n    poke(sim)\n",
        "<s>",
    )
    found = index.resolve_function("repro.obs.star", "poke")
    assert found is not None and found.fqn == "repro.cluster.mutators.poke"


def test_index_reexport_cycle_terminates():
    index = ProjectIndex()
    index.add_source("repro.a", "from repro.b import thing\n", "<a>")
    index.add_source("repro.b", "from repro.a import thing\n", "<b>")
    assert index.resolve_function("repro.a", "thing") is None


def test_dep_closure_handles_cycles():
    index = ProjectIndex()
    index.add_source(
        "repro.a", "from repro.b import beta\n\ndef alpha():\n    pass\n", "<a>"
    )
    index.add_source(
        "repro.b", "from repro.a import alpha\n\ndef beta():\n    pass\n", "<b>"
    )
    assert index.dep_closure("repro.a") == frozenset({"repro.b"})
    assert index.dep_closure("repro.b") == frozenset({"repro.a"})


def test_plain_import_counts_as_dependency():
    index = ProjectIndex()
    index.add_source("repro.cluster.mutators", MUTATOR, "<m>")
    index.add_source(
        "repro.obs.plain",
        "import repro.cluster.mutators\n\ndef go(sim):\n    repro.cluster.mutators.poke(sim)\n",
        "<p>",
    )
    assert "repro.cluster.mutators" in index.project_deps("repro.obs.plain")


def test_module_name_for_anchors_at_repro_and_tools():
    assert module_name_for(Path("src/repro/cluster/builder.py")) == (
        "repro.cluster.builder"
    )
    assert module_name_for(Path("/x/src/repro/obs/__init__.py")) == "repro.obs"
    assert module_name_for(Path("/x/tools/overhead_guard.py")) == (
        "tools.overhead_guard"
    )


# -- interprocedural OBS005 ---------------------------------------------


TWO_HOP = {
    "repro.cluster.mutators": MUTATOR,
    "repro.experiments.helpers": dedent(
        """\
        from repro.cluster.mutators import poke

        def relay(sim):
            poke(sim)
        """
    ),
    "repro.obs.watcher": dedent(
        """\
        from repro.experiments.helpers import relay

        def sample(replica):
            relay(replica)
        """
    ),
}


def test_obs005_flags_a_two_hop_cross_module_mutation():
    report = lint_project(TWO_HOP)
    assert report.parse_errors == []
    findings = [f for f in report.active if f.rule == "OBS005"]
    assert len(findings) == 1
    finding = findings[0]
    assert finding.module == "repro.obs.watcher"
    assert "repro.experiments.helpers.relay" in finding.message
    assert "repro.cluster.mutators.poke" in finding.message


def test_v1_misses_the_two_hop_mutation_v2_catches_it():
    # v1 semantics: the observer module linted alone is clean — the
    # mutation lives two calls away in other modules.
    alone = lint_source(TWO_HOP["repro.obs.watcher"], "repro.obs.watcher")
    assert [f for f in alone if f.rule.startswith("OBS")] == []
    # v2 semantics: the project-wide pass chases the chain and flags it.
    report = lint_project(TWO_HOP)
    assert [f.rule for f in report.active] == ["OBS005"]


def test_obs005_negative_pure_chain():
    sources = dict(TWO_HOP)
    sources["repro.cluster.mutators"] = dedent(
        """\
        def poke(sim):
            return sim.acceptance_threshold
        """
    )
    report = lint_project(sources)
    assert [f for f in report.findings if f.rule == "OBS005"] == []


def test_obs005_sees_through_self_attributes():
    sources = {
        "repro.experiments.helpers": TWO_HOP["repro.experiments.helpers"],
        "repro.cluster.mutators": MUTATOR,
        "repro.obs.cls": dedent(
            """\
            from repro.experiments.helpers import relay

            class Probe:
                def __init__(self, replica):
                    self.replica = replica

                def sample(self):
                    relay(self.replica)
            """
        ),
    }
    report = lint_project(sources)
    findings = [f for f in report.active if f.rule == "OBS005"]
    assert len(findings) == 1 and findings[0].module == "repro.obs.cls"


def test_obs005_follows_method_calls():
    sources = {
        "repro.obs.meth": dedent(
            """\
            class Probe:
                def poke(self, replica):
                    replica.queue = []

                def sample(self, replica):
                    self.poke(replica)
            """
        ),
    }
    report = lint_project(sources)
    rules = {f.rule for f in report.active}
    assert "OBS005" in rules  # the call site in sample()
    assert "OBS001" in rules  # the direct assignment in poke()


def test_obs005_exempts_the_hook_attribute():
    sources = {
        "repro.cluster.hooks": dedent(
            """\
            def attach_hook(sim, hub):
                sim.obs = hub
            """
        ),
        "repro.obs.attacher": dedent(
            """\
            from repro.cluster.hooks import attach_hook

            def wire(replica, hub):
                attach_hook(replica, hub)
            """
        ),
    }
    report = lint_project(sources)
    assert [f for f in report.findings if f.rule == "OBS005"] == []


def test_obs005_pragma_suppression():
    sources = dict(TWO_HOP)
    sources["repro.obs.watcher"] = sources["repro.obs.watcher"].replace(
        "    relay(replica)",
        "    relay(replica)  # detlint: disable=OBS005 -- fixture justification",
    )
    report = lint_project(sources)
    assert report.active == []
    assert [f.rule for f in report.pragma_suppressed] == ["OBS005"]


def test_obs005_v1_and_v2_agree_on_sim_rootedness():
    # The v2 pass reuses the v1 scope rules, so a locally constructed
    # object passed into a mutating helper is *not* flagged.
    sources = dict(TWO_HOP)
    sources["repro.obs.watcher"] = dedent(
        """\
        from repro.experiments.helpers import relay

        def sample(replica):
            own = {}
            relay(own)
        """
    )
    report = lint_project(sources)
    assert [f for f in report.findings if f.rule == "OBS005"] == []


# -- the incremental cache ----------------------------------------------


CLEAN_TREE = {
    "repro/__init__.py": "",
    "repro/cluster/__init__.py": "",
    "repro/cluster/topo.py": dedent(
        """\
        def quorum(config):
            return config.quorum
        """
    ),
    "repro/experiments/__init__.py": "",
    "repro/experiments/runs.py": dedent(
        """\
        from repro.cluster.topo import quorum

        def plan(config):
            return quorum(config)
        """
    ),
    "repro/workload/__init__.py": "",
    "repro/workload/gen.py": dedent(
        """\
        def shape():
            return "update-heavy"
        """
    ),
}

ALL_MODULES = sorted(
    {
        "repro",
        "repro.cluster",
        "repro.cluster.topo",
        "repro.experiments",
        "repro.experiments.runs",
        "repro.workload",
        "repro.workload.gen",
    }
)


def write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


def run_cached(tmp_path: Path, baseline: Baseline | None = None):
    cache = LintCache(tmp_path / "cache")
    report = lint_paths([tmp_path / "repro"], baseline=baseline, cache=cache)
    return report


def test_cold_then_warm_run(tmp_path):
    write_tree(tmp_path, CLEAN_TREE)
    cold = run_cached(tmp_path)
    assert cold.incremental
    assert sorted(cold.modules_analysed) == ALL_MODULES
    assert cold.modules_cached == []
    warm = run_cached(tmp_path)
    assert warm.modules_analysed == []
    assert sorted(warm.modules_cached) == ALL_MODULES


def test_editing_a_dependency_relints_only_its_dependents(tmp_path):
    write_tree(tmp_path, CLEAN_TREE)
    run_cached(tmp_path)
    # topo.py is imported by runs.py; nothing else depends on it.
    (tmp_path / "repro/cluster/topo.py").write_text(
        CLEAN_TREE["repro/cluster/topo.py"] + "\n\ndef extra(config):\n    return config.f\n",
        encoding="utf-8",
    )
    report = run_cached(tmp_path)
    assert sorted(report.modules_analysed) == [
        "repro.cluster.topo",
        "repro.experiments.runs",
    ]
    assert "repro.workload.gen" in report.modules_cached


def test_editing_a_leaf_relints_only_that_module(tmp_path):
    write_tree(tmp_path, CLEAN_TREE)
    run_cached(tmp_path)
    (tmp_path / "repro/workload/gen.py").write_text(
        'def shape():\n    return "read-heavy"\n', encoding="utf-8"
    )
    report = run_cached(tmp_path)
    assert report.modules_analysed == ["repro.workload.gen"]


def test_cached_findings_match_fresh_ones(tmp_path):
    tree = dict(CLEAN_TREE)
    tree["repro/cluster/topo.py"] = "def make():\n    f = 1\n"  # PROTO001
    write_tree(tmp_path, tree)
    cold = run_cached(tmp_path)
    warm = run_cached(tmp_path)
    key = lambda f: (f.rule, f.module, f.line, f.message)
    assert [key(f) for f in warm.findings] == [key(f) for f in cold.findings]
    assert warm.modules_analysed == []
    assert [f.rule for f in warm.active] == ["PROTO001"]


def test_suppressions_apply_to_cached_findings(tmp_path):
    # The cache stores raw findings; a baseline added between runs
    # suppresses them without any re-analysis.
    tree = dict(CLEAN_TREE)
    tree["repro/cluster/topo.py"] = "def make():\n    f = 1\n"
    write_tree(tmp_path, tree)
    run_cached(tmp_path)
    baseline = Baseline(
        entries=[
            BaselineEntry(
                rule="PROTO001",
                module="repro.cluster.topo",
                context="f = 1",
                reason="fixture justification",
            )
        ]
    )
    warm = run_cached(tmp_path, baseline=baseline)
    assert warm.modules_analysed == []
    assert warm.active == []
    assert [f.rule for f in warm.baseline_suppressed] == ["PROTO001"]


def test_engine_fingerprint_invalidates_the_cache(tmp_path, monkeypatch):
    write_tree(tmp_path, CLEAN_TREE)
    run_cached(tmp_path)
    old_fingerprint = engine_fingerprint()
    monkeypatch.setattr(incremental, "ANALYSIS_SCHEMA_VERSION", 99)
    assert engine_fingerprint() != old_fingerprint
    report = run_cached(tmp_path)
    assert sorted(report.modules_analysed) == ALL_MODULES
    assert report.modules_cached == []


def test_rules_filter_bypasses_the_cache(tmp_path):
    write_tree(tmp_path, CLEAN_TREE)
    run_cached(tmp_path)
    cache = LintCache(tmp_path / "cache")
    report = lint_paths(
        [tmp_path / "repro"], rules_filter={"DET001"}, cache=cache
    )
    assert report.modules_cached == []


def test_corrupt_cache_is_treated_as_empty(tmp_path):
    write_tree(tmp_path, CLEAN_TREE)
    run_cached(tmp_path)
    (tmp_path / "cache" / incremental.CACHE_FILE).write_text(
        "{not json", encoding="utf-8"
    )
    report = run_cached(tmp_path)
    assert sorted(report.modules_analysed) == ALL_MODULES


# -- the CLI: --changed, --sarif, --update-baseline ---------------------


def test_cli_changed_warm_run_reports_zero_reanalysed(tmp_path, capsys, monkeypatch):
    write_tree(tmp_path, CLEAN_TREE)
    monkeypatch.chdir(tmp_path)
    argv = ["--changed", "--baseline", str(tmp_path / "b.json"), "repro"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "served from cache" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "0 module(s) re-analysed" in second


def test_cli_sarif_output(tmp_path, capsys):
    write_tree(tmp_path, CLEAN_TREE)
    out = tmp_path / "detlint.sarif"
    code = main(
        [
            "--sarif",
            str(out),
            "--baseline",
            str(tmp_path / "b.json"),
            str(tmp_path / "repro"),
        ]
    )
    capsys.readouterr()
    assert code == 0
    log = json.loads(out.read_text(encoding="utf-8"))
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["tool"]["driver"]["name"] == "detlint"


def justify_all(baseline_path: Path) -> None:
    """Replace every placeholder reason with a real justification."""
    baseline = load_baseline(baseline_path)
    entries = [
        dataclasses.replace(entry, reason="fixture justification")
        for entry in baseline.entries
    ]
    write_baseline(baseline_path, Baseline(entries=entries))


def test_cli_update_baseline_reports_resolved_entries(tmp_path, capsys):
    bad = tmp_path / "repro" / "cluster" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def make():\n    f = 1\n", encoding="utf-8")
    baseline_path = tmp_path / "b.json"
    assert main(["--update-baseline", "--baseline", str(baseline_path), str(bad)]) == 0
    capsys.readouterr()
    # Justify the placeholder, then fix the finding at the source.
    justify_all(baseline_path)
    bad.write_text(
        "from repro.protocols.config import fault_tolerance\n"
        "def make(n):\n    return fault_tolerance(n)\n",
        encoding="utf-8",
    )
    assert main(["--update-baseline", "--baseline", str(baseline_path), str(bad)]) == 0
    err = capsys.readouterr().err
    assert "resolved: PROTO001" in err
    assert load_baseline(baseline_path).entries == []


def test_cli_update_baseline_preserves_suppressing_entries(tmp_path, capsys):
    # Regression: a justified entry suppresses its finding, and a
    # rewrite must regenerate from *all* findings (not just active
    # ones) or a second --update-baseline would silently drop every
    # working suppression.
    bad = tmp_path / "repro" / "cluster" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def make():\n    f = 1\n", encoding="utf-8")
    baseline_path = tmp_path / "b.json"
    assert main(["--update-baseline", "--baseline", str(baseline_path), str(bad)]) == 0
    justify_all(baseline_path)
    assert main(["--update-baseline", "--baseline", str(baseline_path), str(bad)]) == 0
    capsys.readouterr()
    entries = load_baseline(baseline_path).entries
    assert len(entries) == 1
    assert entries[0].reason == "fixture justification"


# -- SARIF --------------------------------------------------------------


SARIF_FIXTURE = {
    "repro.cluster.topo": dedent(
        """\
        def a():
            f = 1

        def b():
            quorum = 2  # detlint: disable=PROTO001 -- fixture justification

        def c():
            majority = 2
        """
    ),
}

SARIF_BASELINE = Baseline(
    entries=[
        BaselineEntry(
            rule="PROTO001",
            module="repro.cluster.topo",
            context="majority = 2",
            reason="fixture justification",
        )
    ]
)


def sarif_report():
    from repro.analysis.sarif import render_sarif

    report = lint_project(SARIF_FIXTURE, baseline=SARIF_BASELINE)
    assert len(report.findings) == 3
    return render_sarif(report)


def test_sarif_log_structure():
    log = sarif_report()
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    rules = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"DET001", "OBS005", "PROTO001", "PERF001"} <= rules
    results = run["results"]
    assert len(results) == 3
    by_kind = {}
    for result in results:
        assert result["ruleId"] == "PROTO001"
        assert result["level"] == "error"
        location = result["locations"][0]
        assert location["physicalLocation"]["region"]["startLine"] >= 1
        assert (
            location["logicalLocations"][0]["fullyQualifiedName"]
            == "repro.cluster.topo"
        )
        assert "detlint/v1" in result["partialFingerprints"]
        suppressions = result.get("suppressions", [])
        kind = suppressions[0]["kind"] if suppressions else "active"
        by_kind[kind] = result
    assert set(by_kind) == {"active", "inSource", "external"}
    assert (
        by_kind["inSource"]["suppressions"][0]["justification"]
        == "fixture justification"
    )


def test_sarif_validates_against_the_2_1_0_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema_path = (
        Path(__file__).parent.parent / "tools" / "sarif_2.1.0_subset_schema.json"
    )
    schema = json.loads(schema_path.read_text(encoding="utf-8"))
    jsonschema.validate(sarif_report(), schema)


def test_real_tree_sarif_validates_against_the_schema():
    jsonschema = pytest.importorskip("jsonschema")
    import repro

    package = Path(repro.__file__).parent
    tools_dir = package.parent.parent / "tools"
    baseline = load_baseline(tools_dir / "detlint_baseline.json")
    report = lint_paths(
        [package, tools_dir / "overhead_guard.py"], baseline=baseline
    )
    assert report.ok
    from repro.analysis.sarif import render_sarif

    schema = json.loads(
        (tools_dir / "sarif_2.1.0_subset_schema.json").read_text(encoding="utf-8")
    )
    jsonschema.validate(render_sarif(report), schema)

"""Integration tests for the IDEM protocol in the normal case."""

import pytest

from repro.net.addresses import client_address, replica_address
from repro.protocols.messages import Reject, Reply, Request

from tests.conftest import (
    assert_replicas_consistent,
    run_cluster,
    small_profile,
    total_successes,
)


class TestNormalOperation:
    def test_operations_complete(self):
        cluster = run_cluster("idem", clients=3, duration=0.5)
        assert total_successes(cluster) > 100

    def test_replicas_stay_consistent(self):
        cluster = run_cluster("idem", clients=5, duration=0.5)
        assert_replicas_consistent(cluster)

    def test_only_the_leader_sends_replies(self):
        cluster = run_cluster("idem", clients=2, duration=0.3)
        # Replica 0 leads view 0; followers cache results (for client
        # retransmissions) but never actively answer clients.
        leader, *followers = cluster.replicas
        assert leader.stats["replies_sent"] > 0
        assert all(follower.stats["replies_sent"] == 0 for follower in followers)
        assert all(follower.last_reply for follower in followers)

    def test_every_replica_executes_every_request(self):
        cluster = run_cluster("idem", clients=3, duration=0.5)
        executed = {replica.stats["executed"] for replica in cluster.replicas}
        assert len(executed) == 1
        assert executed.pop() == total_successes(cluster)

    def test_no_rejections_below_threshold(self):
        cluster = run_cluster("idem", clients=5, duration=0.5)
        assert all(replica.stats["rejected"] == 0 for replica in cluster.replicas)
        assert all(client.rejections == 0 for client in cluster.clients)

    def test_client_latency_is_sane(self):
        cluster = run_cluster("idem", clients=3, duration=0.5)
        summary = cluster.metrics.latency_summary()
        assert 0.0002 < summary.mean < 0.01

    def test_active_slots_drain_after_quiescence(self):
        cluster = run_cluster("idem", clients=5, duration=0.5)
        assert all(not replica.active for replica in cluster.replicas)

    def test_no_forwards_or_fetches_in_the_good_case(self):
        cluster = run_cluster("idem", clients=3, duration=0.5)
        assert all(replica.stats["forwards"] == 0 for replica in cluster.replicas)
        assert all(replica.stats["fetches"] == 0 for replica in cluster.replicas)

    def test_checkpoints_are_taken(self):
        cluster = run_cluster(
            "idem", clients=10, duration=0.8, overrides={"checkpoint_interval": 16}
        )
        assert all(replica.stats["checkpoints"] > 0 for replica in cluster.replicas)


class TestDuplicateSuppression:
    def test_duplicate_request_is_not_executed_twice(self):
        cluster = run_cluster("idem", clients=1, duration=0.3)
        leader = cluster.replicas[0]
        client = cluster.clients[0]
        executed_before = leader.stats["executed"]
        # Replay the client's first (long-executed) request everywhere.
        for replica in cluster.replicas:
            replica.deliver(client.address, Request((client.cid, 1), _any_command()))
        cluster.run_until(cluster.loop.now + 0.2)
        assert leader.stats["executed"] == executed_before

    def test_duplicate_triggers_reply_resend(self):
        cluster = run_cluster("idem", clients=1, duration=0.3)
        leader = cluster.replicas[0]
        client = cluster.clients[0]
        successes = client.successes
        cached = leader.last_reply[client.cid]
        # Pretend the client never saw the reply and retransmits.
        client.current_rid = cached.rid
        client.current_command = _any_command()
        leader.deliver(client.address, Request(cached.rid, _any_command()))
        cluster.run_until(cluster.loop.now + 0.2)
        assert client.successes == successes + 1


def _any_command():
    from repro.app.commands import Command, KvOp

    return Command(KvOp.UPDATE, "user00000001", 10)


class TestRejection:
    def test_overload_produces_rejections(self):
        cluster = run_cluster(
            "idem", clients=20, duration=0.6, overrides={"reject_threshold": 2}
        )
        assert sum(replica.stats["rejected"] for replica in cluster.replicas) > 0
        assert sum(client.rejections for client in cluster.clients) > 0

    def test_rejected_clients_still_make_progress(self):
        """Theorem 6.4: every client keeps reaching the success state."""
        cluster = run_cluster(
            "idem", clients=12, duration=1.5, overrides={"reject_threshold": 3}
        )
        assert all(client.successes > 0 for client in cluster.clients)

    def test_outcome_accounting_is_complete(self):
        cluster = run_cluster(
            "idem", clients=10, duration=0.8, overrides={"reject_threshold": 2}
        )
        for client in cluster.clients:
            finished = client.successes + client.rejections + client.timeouts
            assert client.onr - finished <= 1  # at most the in-flight op

    def test_rejection_keeps_active_requests_bounded(self):
        threshold = 3
        cluster = run_cluster(
            "idem",
            clients=20,
            duration=0.6,
            drain=0.0,
            overrides={"reject_threshold": threshold, "acceptance": "taildrop"},
        )
        # Client-admitted requests are bounded by the threshold; only
        # forwarded requests may exceed it (Section 4.3).
        for replica in cluster.replicas:
            assert len(replica.active) <= threshold + cluster.config.n * threshold

    def test_reject_abort_classification(self):
        cluster = run_cluster(
            "idem", clients=15, duration=0.8, overrides={"reject_threshold": 2}
        )
        for client in cluster.clients:
            assert client.failure_aborts + client.ambivalent_aborts == client.rejections

    def test_pessimistic_client_aborts_faster(self):
        slow = run_cluster(
            "idem", clients=15, duration=0.8, overrides={"reject_threshold": 2}
        )
        fast = run_cluster(
            "idem-pessimistic",
            clients=15,
            duration=0.8,
            overrides={"reject_threshold": 2},
        )
        slow_lat = slow.metrics.reject_latency_summary()
        fast_lat = fast.metrics.reject_latency_summary()
        assert fast_lat.count > 0 and slow_lat.count > 0
        assert fast_lat.mean < slow_lat.mean

    def test_nopr_never_rejects(self):
        cluster = run_cluster(
            "idem-nopr", clients=20, duration=0.6, overrides={"reject_threshold": 2}
        )
        assert sum(replica.stats["rejected"] for replica in cluster.replicas) == 0


class TestForwardingLiveness:
    def test_request_accepted_by_one_replica_still_executes(self):
        """Property 5.1: acceptance by one correct replica suffices."""
        from repro.cluster.builder import build_cluster

        cluster = build_cluster(
            "idem", 1, seed=1, profile=small_profile(), stop_time=0.4
        )
        client = cluster.clients[0]
        # The client can only reach replica 0; replicas talk freely.
        cluster.network.partition(client.address, replica_address(1))
        cluster.network.partition(client.address, replica_address(2))
        cluster.run_until(0.4)
        cluster.stop_clients()
        cluster.run_until(1.0)
        assert client.successes > 0
        assert cluster.replicas[0].stats["forwards"] > 0
        # All replicas executed the forwarded requests.
        assert len({r.exec_order_digest for r in cluster.replicas}) == 1

    def test_fetch_recovers_missing_bodies(self):
        """A replica that never saw a request fetches it on commit."""
        from repro.cluster.builder import build_cluster

        cluster = build_cluster(
            "idem", 2, seed=1, profile=small_profile(), stop_time=0.4
        )
        isolated = cluster.replicas[2]
        for client in cluster.clients:
            cluster.network.partition(client.address, isolated.address)
        cluster.run_until(0.4)
        cluster.stop_clients()
        cluster.run_until(1.0)
        assert isolated.stats["fetches"] + isolated.stats["requests_seen"] > 0
        assert isolated.exec_sqn == cluster.replicas[0].exec_sqn
        assert isolated.exec_order_digest == cluster.replicas[0].exec_order_digest

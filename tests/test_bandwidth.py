"""Tests for egress-bandwidth modelling and the leader-link bottleneck.

The paper's Section 4.2 argues that clients multicasting requests and
id-based agreement remove a common bottleneck: in traditional protocols
the leader distributes full requests, so its network link saturates
first.  With a constrained egress link, our Paxos should lose throughput
while IDEM (ids only on the leader's link) keeps most of its capacity.
"""

import pytest

from repro.cluster.runner import RunSpec, run_experiment
from repro.net.addresses import replica_address
from repro.net.latency import ConstantLatency
from repro.net.message import Message
from repro.net.network import Network, NetworkNode
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry

from tests.conftest import small_profile


class Blob(Message):
    __slots__ = ("size",)

    def __init__(self, size: int):
        self.size = size

    def payload_bytes(self) -> int:
        return self.size


class Sink(NetworkNode):
    def __init__(self, address, loop):
        self.address = address
        self.loop = loop
        self.times = []

    def deliver(self, src, message):
        self.times.append(self.loop.now)


def make(bandwidth):
    loop = EventLoop()
    network = Network(
        loop,
        RngRegistry(1),
        latency_model=ConstantLatency(0.0),
        egress_bandwidth=bandwidth,
    )
    a = Sink(replica_address(0), loop)
    b = Sink(replica_address(1), loop)
    network.attach(a)
    network.attach(b)
    return loop, network, a, b


class TestSerializationDelay:
    def test_single_message_takes_size_over_bandwidth(self):
        loop, network, a, b = make(bandwidth=1e6)  # 1 MB/s
        network.send(a.address, b.address, Blob(10_000))
        loop.run_until(1.0)
        expected = Blob(10_000).size_bytes() / 1e6
        assert b.times == [pytest.approx(expected)]

    def test_messages_queue_on_the_senders_link(self):
        loop, network, a, b = make(bandwidth=1e6)
        for _ in range(3):
            network.send(a.address, b.address, Blob(10_000))
        loop.run_until(1.0)
        per_message = Blob(10_000).size_bytes() / 1e6
        assert b.times == [
            pytest.approx(per_message * (i + 1)) for i in range(3)
        ]

    def test_links_are_independent_per_sender(self):
        loop, network, a, b = make(bandwidth=1e6)
        network.send(a.address, b.address, Blob(10_000))
        network.send(b.address, a.address, Blob(10_000))
        loop.run_until(1.0)
        per_message = Blob(10_000).size_bytes() / 1e6
        assert a.times == [pytest.approx(per_message)]
        assert b.times == [pytest.approx(per_message)]

    def test_link_idles_between_bursts(self):
        loop, network, a, b = make(bandwidth=1e6)
        network.send(a.address, b.address, Blob(10_000))
        loop.call_after(0.5, network.send, a.address, b.address, Blob(10_000))
        loop.run_until(1.0)
        per_message = Blob(10_000).size_bytes() / 1e6
        assert b.times[1] == pytest.approx(0.5 + per_message)

    def test_backlog_accounting(self):
        loop, network, a, b = make(bandwidth=1e6)
        network.send(a.address, b.address, Blob(1_000_000))
        assert network.egress_backlog(a.address) == pytest.approx(
            Blob(1_000_000).size_bytes() / 1e6
        )

    def test_disabled_by_default(self):
        loop, network, a, b = make(bandwidth=None)
        network.send(a.address, b.address, Blob(10_000_000))
        loop.run_until(1.0)
        assert b.times == [0.0]

    def test_invalid_bandwidth_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            Network(loop, RngRegistry(0), egress_bandwidth=0.0)


class TestLeaderLinkBottleneck:
    def test_full_request_protocol_suffers_more_than_idem(self):
        """Constrain egress to ~40 MB/s: the Paxos leader must push full
        1 KB requests to every follower and saturates its link; IDEM's
        leader only ships ids."""

        def throughput(system, bandwidth):
            profile = small_profile()
            profile.egress_bandwidth = bandwidth
            result = run_experiment(
                RunSpec(
                    system=system,
                    clients=60,
                    duration=0.8,
                    warmup=0.25,
                    seed=1,
                    profile=profile,
                )
            )
            return result.throughput

        paxos_free = throughput("paxos", None)
        paxos_tight = throughput("paxos", 40e6)
        idem_free = throughput("idem", None)
        idem_tight = throughput("idem", 40e6)
        paxos_loss = 1.0 - paxos_tight / paxos_free
        idem_loss = 1.0 - idem_tight / idem_free
        assert paxos_loss > 0.2
        assert idem_loss < paxos_loss / 2

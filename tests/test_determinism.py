"""Reproducibility: identical seeds give bit-identical results."""

import os
import subprocess
import sys

import pytest

from repro.cluster.runner import RunSpec, run_experiment

from tests.conftest import small_profile


def result_fingerprint(result):
    return (
        result.throughput,
        result.latency,
        result.reject_throughput,
        result.reject_latency,
        result.timeouts,
        result.traffic["total_bytes"],
        result.traffic["total_messages"],
        tuple(tuple(sorted(stats.items())) for stats in result.replica_stats),
    )


@pytest.mark.parametrize("system", ["idem", "paxos", "paxos-lbr", "bftsmart"])
def test_same_seed_is_bit_reproducible(system):
    spec = dict(
        system=system, clients=8, duration=0.5, warmup=0.1, seed=11,
        profile=small_profile(),
    )
    a = run_experiment(RunSpec(**spec))
    b = run_experiment(RunSpec(**spec))
    assert result_fingerprint(a) == result_fingerprint(b)


def test_different_seeds_differ():
    base = dict(
        system="idem", clients=8, duration=0.5, warmup=0.1, profile=small_profile()
    )
    a = run_experiment(RunSpec(seed=1, **base))
    b = run_experiment(RunSpec(seed=2, **base))
    assert result_fingerprint(a) != result_fingerprint(b)


def test_reproducible_under_message_loss():
    profile = small_profile(loss_probability=0.02)
    spec = dict(
        system="idem", clients=5, duration=0.6, warmup=0.1, seed=5, profile=profile
    )
    a = run_experiment(RunSpec(**spec))
    b = run_experiment(RunSpec(**spec))
    assert result_fingerprint(a) == result_fingerprint(b)


def test_reproducible_across_crashes():
    from repro.cluster.faults import FaultSchedule

    def run():
        return run_experiment(
            RunSpec(
                system="idem",
                clients=5,
                duration=2.0,
                warmup=0.2,
                seed=9,
                profile=small_profile(),
                overrides={"view_change_timeout": 0.4},
                faults=FaultSchedule().crash_leader(0.5),
            )
        )

    assert result_fingerprint(run()) == result_fingerprint(run())


def _run_fig2_with_hash_seed(hash_seed: str) -> str:
    """Render fig2 (tiny settings) in a subprocess with PYTHONHASHSEED set."""
    code = (
        "from repro.experiments import fig2_existing_protocols as fig2\n"
        "data = fig2.run(quick=True, runs=1, duration=0.2)\n"
        "print(fig2.render(data))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_fig2_byte_identical_across_hash_seeds():
    """Hash randomization must not leak into experiment output.

    Set iteration order (and str hashing generally) varies with
    PYTHONHASHSEED; detlint's DET005 guards the known sites statically,
    and this test pins the end-to-end property: the same seeded fig2
    sweep renders byte-identically under different hash seeds.
    """
    out_a = _run_fig2_with_hash_seed("1")
    out_b = _run_fig2_with_hash_seed("4242")
    assert "paxos" in out_a  # the run actually produced the table
    assert out_a == out_b

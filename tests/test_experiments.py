"""Tests for the experiment suite machinery (fast paths only).

Full experiment runs live in ``benchmarks/``; here we test the shared
sweep/averaging machinery, the renderers (against synthetic data) and
the registry/CLI plumbing.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment_by_id
from repro.experiments import common
from repro.experiments import (
    fig2_existing_protocols,
    fig6_comparison,
    fig7_reject_behavior,
    fig8_threshold,
    fig9_disruptive,
    fig10_replica_crash,
    tab1_overhead,
)


def make_point(system="idem", clients=50, **overrides) -> common.Point:
    values = dict(
        system=system,
        clients=clients,
        load_factor=clients / 50,
        throughput=43_000.0,
        throughput_std=500.0,
        latency_ms=1.3,
        latency_std_ms=0.2,
        reject_throughput=100.0,
        reject_latency_ms=1.5,
        reject_latency_std_ms=1.0,
        timeouts=0,
        runs=2,
    )
    values.update(overrides)
    return common.Point(**values)


class TestCommon:
    def test_point_properties(self):
        point = make_point(throughput=40_000, reject_throughput=10_000)
        assert point.throughput_kops == pytest.approx(40.0)
        assert point.reject_share == pytest.approx(0.2)

    def test_reject_share_of_idle_point(self):
        point = make_point(throughput=0.0, reject_throughput=0.0)
        assert point.reject_share == 0.0

    def test_render_table_alignment(self):
        table = common.render_table("T", ["col", "x"], [["a", "1"], ["bb", "22"]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2]
        assert lines[3].startswith("---")

    def test_point_rows_with_rejects(self):
        rows = common.point_rows([make_point()], with_rejects=True)
        assert len(rows[0]) == len(common.REJECT_HEADERS)

    def test_averaged_point_runs_real_simulations(self):
        point = common.averaged_point(
            "idem", clients=2, runs=2, duration=0.3, warmup=0.1
        )
        assert point.runs == 2
        assert point.throughput > 0
        assert point.clients == 2

    def test_sweep_lengths(self):
        points = common.sweep("idem", [1, 2], runs=1, duration=0.3, warmup=0.1)
        assert [p.clients for p in points] == [1, 2]

    def test_defaults_respect_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS", "7")
        monkeypatch.setenv("REPRO_DURATION", "2.5")
        assert common.default_runs() == 7
        assert common.default_duration() == 2.5


class TestRenderers:
    def test_fig2_render(self):
        data = fig2_existing_protocols.Fig2Data([make_point("paxos")])
        text = fig2_existing_protocols.render(data)
        assert "Figure 2" in text and "paxos" in text

    def test_fig2_saturation_point(self):
        slow = make_point("paxos", clients=25, throughput=20_000)
        fast = make_point("paxos", clients=50, throughput=50_000)
        data = fig2_existing_protocols.Fig2Data([slow, fast])
        assert data.saturation_point() is fast

    def test_fig6_render_and_accessors(self):
        curves = {
            system: [make_point(system, 50), make_point(system, 200, latency_ms=4.0)]
            for system in fig6_comparison.SYSTEMS
        }
        data = fig6_comparison.Fig6Data(curves)
        assert data.max_throughput("idem") == 43_000.0
        assert data.latency_at_max_load("paxos") == 4.0
        text = fig6_comparison.render(data)
        assert "Figure 6" in text and "bftsmart" in text

    def test_fig7_point_lookup(self):
        data = fig7_reject_behavior.Fig7Data([make_point(clients=100)])
        assert data.point_at(2.0).clients == 100
        with pytest.raises(KeyError):
            data.point_at(9.0)

    def test_fig8_render(self):
        data = fig8_threshold.Fig8Data({20: [make_point()], 75: [make_point()]})
        text = fig8_threshold.render(data)
        assert "RT=" in text and "Figure 8" in text

    def test_fig9_render(self):
        data = fig9_disruptive.Fig9Data([make_point()], [make_point(clients=700)])
        text = fig9_disruptive.render(data)
        assert "Figure 9a" in text and "Figure 9b" in text

    def test_tab1_cell_math(self):
        cell = tab1_overhead.Tab1Cell(
            system="idem",
            load_label="high (1x)",
            clients=50,
            requests_completed=1000,
            total_bytes=3_300_000,
            client_bytes=3_000_000,
            replica_bytes=300_000,
            rejects=0,
            sim_seconds=1.0,
        )
        assert cell.bytes_per_request == pytest.approx(3300.0)
        assert cell.projected_gb_per_million == pytest.approx(3.3)

    def test_tab1_lookup(self):
        cell = tab1_overhead.Tab1Cell(
            "idem", "high (1x)", 50, 1, 1, 1, 0, 0, 1.0
        )
        data = tab1_overhead.Tab1Data([cell], 1)
        assert data.cell("idem", "high (1x)") is cell
        with pytest.raises(KeyError):
            data.cell("idem", "nope")

    def test_fig10_timeline_outage_detection(self):
        series = [(0.0, 100.0), (0.25, 0.0), (0.5, 0.0), (0.75, 50.0)]
        outage = fig10_replica_crash._longest_outage(series, 0.25, 1.0, 0.25)
        assert outage == pytest.approx(0.5)

    def test_fig10_find(self):
        run = fig10_replica_crash.TimelineRun(
            system="idem",
            clients=100,
            target="leader",
            crash_time=3.5,
            duration=9.0,
            throughput_series=[],
            latency_series=[],
            reject_rate_series=[],
            reject_latency_series=[],
            service_gap=1.5,
            reject_downtime=0.0,
            pre_throughput=43_000,
            post_throughput=39_000,
            pre_latency_ms=1.1,
            post_latency_ms=1.6,
            timeouts=0,
        )
        data = fig10_replica_crash.Fig10Data([run], [])
        assert data.find("idem", 100, "leader") is run
        with pytest.raises(KeyError):
            data.find("idem", 50, "leader")


class _SpecRecorder:
    """Executor stub: records every requested spec, serves a canned result."""

    def __init__(self, result):
        self.result = result
        self.specs = []

    def run_spec(self, spec):
        self.specs.append(spec)
        return self.result

    def run_cell(self, kwargs):  # pragma: no cover - fig2 never asks
        raise AssertionError("unexpected tab1 cell")


@pytest.fixture(scope="module")
def canned_result():
    from repro.cluster.runner import RunSpec, run_experiment

    return run_experiment(
        RunSpec(system="idem", clients=2, duration=0.3, warmup=0.1, seed=0)
    )


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig6", "fig7", "tab1", "fig8", "fig9", "fig10",
            "figR", "figM",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment_by_id("fig99")

    def test_unknown_id_message_lists_choices(self):
        with pytest.raises(KeyError) as error:
            run_experiment_by_id("fig99")
        message = str(error.value)
        assert "unknown experiment" in message and "fig2" in message

    def test_modules_expose_run_and_render(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.render)

    def test_modules_expose_campaign_plan(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "plan_runs") or hasattr(module, "plan_cells")

    def test_explicit_runs_and_duration_reach_sweep(self, canned_result):
        recorder = _SpecRecorder(canned_result)
        with common.use_executor(recorder):
            text = run_experiment_by_id(
                "fig2", quick=True, runs=2, seed0=5, duration=0.7
            )
        assert "Figure 2" in text
        points = fig2_existing_protocols.QUICK_CLIENTS
        assert len(recorder.specs) == 2 * len(points)
        assert {spec.duration for spec in recorder.specs} == {0.7}
        # Two seeded runs per point, seeds counted up from seed0.
        for start in range(0, len(recorder.specs), 2):
            pair = recorder.specs[start : start + 2]
            assert [spec.seed for spec in pair] == [5, 6]

    def test_env_runs_is_default_only_fallback(self, monkeypatch, canned_result):
        monkeypatch.setenv("REPRO_RUNS", "3")
        recorder = _SpecRecorder(canned_result)
        with common.use_executor(recorder):
            run_experiment_by_id("fig2", quick=False, duration=0.4)
        full = fig2_existing_protocols.FULL_CLIENTS
        assert len(recorder.specs) == 3 * len(full)  # env supplies the default
        recorder.specs.clear()
        with common.use_executor(recorder):
            run_experiment_by_id("fig2", quick=False, runs=1, duration=0.4)
        assert len(recorder.specs) == len(full)  # explicit runs wins over env


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "tab1" in out

    def test_unknown_experiment_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["nope"]) == 2

"""Property-based whole-system tests (hypothesis).

Random small scenarios — load levels, seeds, thresholds, loss, crashes —
must never violate the protocol's core invariants:

* safety: all live replicas execute the same request sequence,
* bounded admission: client-admitted active requests stay within the
  reject threshold,
* outcome accounting: every client operation ends in exactly one of
  success / rejection / timeout (or is the single in-flight one).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.builder import build_cluster
from repro.cluster.faults import FaultSchedule

from tests.conftest import small_profile

SCENARIO_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_scenario(
    system: str,
    seed: int,
    clients: int,
    threshold: int,
    loss: float,
    crash: str | None,
):
    profile = small_profile(loss_probability=loss)
    overrides = {"view_change_timeout": 0.4}
    if system.startswith("idem"):
        overrides["reject_threshold"] = threshold
        # Rotate prioritisation within the short run so AQM fairness is
        # exercised (the paper's 2 s slice would never rotate here).
        overrides["aqm_time_slice"] = 0.25
    cluster = build_cluster(
        system, clients, seed=seed, profile=profile, overrides=overrides,
        stop_time=1.0,
    )
    if crash is not None:
        schedule = FaultSchedule()
        if crash == "leader":
            schedule.crash_leader(0.3)
        else:
            schedule.crash_follower(0.3)
        schedule.install(cluster)
    cluster.run_until(1.0)
    cluster.stop_clients()
    # Drain adaptively: under sustained message loss, timeout-paced
    # recovery can legitimately take several seconds to converge.
    deadline = 8.0
    horizon = 2.0
    while horizon <= deadline:
        cluster.run_until(horizon)
        live = [replica for replica in cluster.replicas if not replica.halted]
        if len({replica.exec_sqn for replica in live}) == 1 and not any(
            replica._unexecuted for replica in live
        ):
            break
        horizon += 0.5
    return cluster


def check_invariants(cluster) -> None:
    live = [replica for replica in cluster.replicas if not replica.halted]
    # Safety: identical state on all live replicas that did not state
    # transfer past part of the history.
    assert len({replica.app.digest() for replica in live}) == 1
    if not any(replica.stats["state_transfers"] for replica in live):
        assert len({replica.exec_order_digest for replica in live}) == 1
        assert len({replica.exec_sqn for replica in live}) == 1
    # No replica executed more operations than were issued in total.
    issued = sum(client.onr for client in cluster.clients)
    for replica in live:
        assert replica.stats["executed"] <= issued
    # Outcome accounting per client.
    for client in cluster.clients:
        finished = client.successes + client.rejections + client.timeouts
        assert client.onr - finished <= 1


@given(
    seed=st.integers(0, 10_000),
    clients=st.integers(1, 20),
    threshold=st.integers(1, 50),
)
@SCENARIO_SETTINGS
def test_idem_fault_free_invariants(seed, clients, threshold):
    cluster = run_scenario("idem", seed, clients, threshold, 0.0, None)
    check_invariants(cluster)
    # The system as a whole always makes progress, and no client is ever
    # *silently* starved: a client without a success in this finite run
    # must have been told so through rejections (per-client success is
    # only guaranteed asymptotically — Theorem 6.4).
    assert sum(client.successes for client in cluster.clients) > 0
    for client in cluster.clients:
        if client.successes == 0:
            assert client.rejections + client.timeouts > 0


@given(
    seed=st.integers(0, 10_000),
    clients=st.integers(2, 15),
    crash=st.sampled_from(["leader", "follower"]),
)
@SCENARIO_SETTINGS
def test_idem_crash_invariants(seed, clients, crash):
    cluster = run_scenario("idem", seed, clients, 25, 0.0, crash)
    check_invariants(cluster)
    assert sum(1 for replica in cluster.replicas if replica.halted) == 1


@given(
    seed=st.integers(0, 10_000),
    clients=st.integers(1, 10),
    loss=st.floats(0.0, 0.05),
)
@SCENARIO_SETTINGS
def test_idem_lossy_network_invariants(seed, clients, loss):
    cluster = run_scenario("idem", seed, clients, 25, loss, None)
    check_invariants(cluster)


@given(
    system=st.sampled_from(["paxos", "paxos-lbr", "bftsmart"]),
    seed=st.integers(0, 10_000),
    clients=st.integers(1, 15),
)
@SCENARIO_SETTINGS
def test_baseline_fault_free_invariants(system, seed, clients):
    cluster = run_scenario(system, seed, clients, 25, 0.0, None)
    check_invariants(cluster)
    assert all(client.successes > 0 for client in cluster.clients)


@given(
    seed=st.integers(0, 10_000),
    clients=st.integers(2, 12),
    crash=st.sampled_from([None, "leader", "follower"]),
)
@SCENARIO_SETTINGS
def test_multileader_invariants(seed, clients, crash):
    """The Mencius-style variant upholds the same safety invariants,
    with and without crashes (which force the single-leader fallback)."""
    cluster = run_scenario("idem-multileader", seed, clients, 25, 0.0, crash)
    check_invariants(cluster)
    if crash is None:
        assert all(client.successes > 0 for client in cluster.clients)


@given(
    seed=st.integers(0, 1_000),
    clients=st.integers(5, 25),
)
@SCENARIO_SETTINGS
def test_taildrop_admission_bound(seed, clients):
    """Client-admitted requests never exceed the threshold; only
    forwarded requests may exceed it (Section 4.3)."""
    threshold = 3
    profile = small_profile()
    cluster = build_cluster(
        "idem",
        clients,
        seed=seed,
        profile=profile,
        overrides={"reject_threshold": threshold, "acceptance": "taildrop"},
        stop_time=0.5,
    )
    bound = threshold + cluster.config.n * threshold
    violations = []

    def probe():
        for replica in cluster.replicas:
            if len(replica.active) > bound:
                violations.append((cluster.loop.now, replica.index, len(replica.active)))
        if cluster.loop.now < 0.5:
            cluster.loop.call_after(0.01, probe)

    cluster.loop.call_after(0.01, probe)
    cluster.run_until(0.5)
    assert not violations

"""Integration tests for the BFT-SMaRt-like baseline."""

from repro.cluster.builder import build_cluster
from repro.cluster.faults import FaultSchedule

from tests.conftest import (
    assert_replicas_consistent,
    live_replicas,
    run_cluster,
    small_profile,
    total_successes,
)


class TestNormalOperation:
    def test_operations_complete(self):
        cluster = run_cluster("bftsmart", clients=3, duration=0.5)
        assert total_successes(cluster) > 100

    def test_replicas_stay_consistent(self):
        cluster = run_cluster("bftsmart", clients=5, duration=0.5)
        assert_replicas_consistent(cluster)

    def test_all_replicas_see_all_requests(self):
        cluster = run_cluster("bftsmart", clients=3, duration=0.5)
        seen = [replica.stats["requests_seen"] for replica in cluster.replicas]
        assert min(seen) > 0
        assert max(seen) - min(seen) <= max(seen) * 0.05

    def test_every_replica_replies(self):
        cluster = run_cluster("bftsmart", clients=3, duration=0.5)
        assert all(replica.stats["replies_sent"] > 0 for replica in cluster.replicas)

    def test_duplicate_replies_do_not_double_count(self):
        cluster = run_cluster("bftsmart", clients=3, duration=0.5)
        total_replies = sum(r.stats["replies_sent"] for r in cluster.replicas)
        successes = total_successes(cluster)
        # n replies per operation on the wire, exactly one success each.
        assert total_replies >= 2 * successes
        for client in cluster.clients:
            assert client.successes < client.onr + 1

    def test_request_pool_drains(self):
        cluster = run_cluster("bftsmart", clients=5, duration=0.5)
        assert all(not replica.pool for replica in cluster.replicas)


class TestCrashes:
    def test_follower_crash_is_harmless(self):
        cluster = build_cluster(
            "bftsmart", 4, seed=1, profile=small_profile(), stop_time=2.0
        )
        FaultSchedule().crash_follower(0.5).install(cluster)
        cluster.run_until(2.0)
        cluster.stop_clients()
        cluster.run_until(3.0)
        survivors = live_replicas(cluster)
        assert all(replica.view == 0 for replica in survivors)
        assert cluster.metrics.reply_counter.rate_between(1.0, 2.0) > 0

    def test_leader_crash_recovers_via_view_change(self):
        cluster = build_cluster(
            "bftsmart",
            4,
            seed=1,
            profile=small_profile(),
            overrides={"view_change_timeout": 0.4},
            stop_time=3.5,
        )
        FaultSchedule().crash_leader(0.5).install(cluster)
        cluster.run_until(3.5)
        cluster.stop_clients()
        cluster.run_until(4.5)
        survivors = live_replicas(cluster)
        assert all(replica.view >= 1 for replica in survivors)
        assert len({r.app.digest() for r in survivors}) == 1
        assert cluster.metrics.reply_counter.rate_between(2.5, 3.5) > 0

"""Unit tests for the YCSB workload generator, key choosers and schedules."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.app.commands import KvOp
from repro.app.kvstore import KeyValueStore
from repro.workload.keys import LatestKeys, UniformKeys, ZipfianKeys
from repro.workload.schedule import BurstSchedule, ConstantSchedule, StepSchedule
from repro.workload.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_UPDATE_HEAVY,
    YcsbProfile,
    YcsbWorkload,
)


class TestKeyChoosers:
    def test_uniform_in_bounds(self):
        chooser = UniformKeys(100)
        rng = random.Random(1)
        for _ in range(1000):
            assert 0 <= chooser.next_index(rng) < 100

    def test_uniform_covers_keyspace(self):
        chooser = UniformKeys(10)
        rng = random.Random(1)
        seen = {chooser.next_index(rng) for _ in range(500)}
        assert seen == set(range(10))

    def test_zipfian_in_bounds(self):
        chooser = ZipfianKeys(1000)
        rng = random.Random(2)
        for _ in range(2000):
            assert 0 <= chooser.next_index(rng) < 1000

    def test_zipfian_is_skewed(self):
        chooser = ZipfianKeys(1000, scrambled=False)
        rng = random.Random(3)
        draws = [chooser.next_index(rng) for _ in range(20000)]
        top_share = draws.count(0) / len(draws)
        # With theta=0.99 and 1000 records, rank 0 gets roughly 13%.
        assert top_share > 0.05

    def test_zipfian_scrambling_moves_the_hot_key(self):
        plain = ZipfianKeys(1000, scrambled=False)
        scrambled = ZipfianKeys(1000, scrambled=True)
        rng = random.Random(4)
        plain_draws = [plain.next_index(rng) for _ in range(5000)]
        rng = random.Random(4)
        scrambled_draws = [scrambled.next_index(rng) for _ in range(5000)]
        hot_plain = max(set(plain_draws), key=plain_draws.count)
        hot_scrambled = max(set(scrambled_draws), key=scrambled_draws.count)
        assert hot_plain == 0
        assert hot_scrambled != 0

    def test_zipfian_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            ZipfianKeys(100, theta=1.0)

    def test_latest_skews_to_newest(self):
        chooser = LatestKeys(100)
        rng = random.Random(5)
        draws = [chooser.next_index(rng) for _ in range(5000)]
        assert draws.count(99) / len(draws) > 0.05

    def test_latest_advance_extends_keyspace(self):
        chooser = LatestKeys(10)
        chooser.advance()
        assert chooser.record_count == 11

    def test_record_count_must_be_positive(self):
        with pytest.raises(ValueError):
            UniformKeys(0)


class TestYcsbProfiles:
    def test_core_workload_mixes(self):
        assert WORKLOAD_A.read_proportion == 0.5
        assert WORKLOAD_B.read_proportion == 0.95
        assert WORKLOAD_C.read_proportion == 1.0
        assert WORKLOAD_UPDATE_HEAVY.update_proportion == 0.5

    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            YcsbProfile("bad", read_proportion=0.5, update_proportion=0.4)


class TestYcsbWorkload:
    def test_operation_mix_matches_profile(self):
        workload = YcsbWorkload(WORKLOAD_A)
        rng = random.Random(6)
        ops = [workload.next_command(rng).op for _ in range(4000)]
        read_share = ops.count(KvOp.READ) / len(ops)
        assert 0.45 < read_share < 0.55
        assert all(op in (KvOp.READ, KvOp.UPDATE) for op in ops)

    def test_updates_carry_the_profile_value_size(self):
        workload = YcsbWorkload(WORKLOAD_UPDATE_HEAVY)
        rng = random.Random(7)
        commands = [workload.next_command(rng) for _ in range(100)]
        updates = [c for c in commands if c.op is KvOp.UPDATE]
        assert updates
        assert all(c.value_size == WORKLOAD_UPDATE_HEAVY.value_size for c in updates)

    def test_keys_are_within_the_keyspace(self):
        workload = YcsbWorkload(WORKLOAD_A)
        rng = random.Random(8)
        for _ in range(500):
            command = workload.next_command(rng)
            index = int(command.key.removeprefix("user"))
            assert 0 <= index < WORKLOAD_A.record_count

    def test_preload_fills_the_store(self):
        workload = YcsbWorkload(WORKLOAD_A)
        store = KeyValueStore()
        workload.preload(store)
        assert len(store) == WORKLOAD_A.record_count

    def test_preloaded_reads_always_hit(self):
        workload = YcsbWorkload(WORKLOAD_A)
        store = KeyValueStore()
        workload.preload(store)
        rng = random.Random(9)
        for _ in range(200):
            command = workload.next_command(rng)
            assert store.apply(command).ok

    def test_same_rng_stream_same_commands(self):
        workload_a = YcsbWorkload(WORKLOAD_A)
        workload_b = YcsbWorkload(WORKLOAD_A)
        a = [workload_a.next_command(random.Random(10)) for _ in range(1)]
        b = [workload_b.next_command(random.Random(10)) for _ in range(1)]
        assert a == b


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(7)
        assert schedule.active_clients(0.0) == 7
        assert schedule.active_clients(100.0) == 7
        assert schedule.max_clients() == 7

    def test_step_schedule(self):
        schedule = StepSchedule(((1.0, 10), (2.0, 30)))
        assert schedule.active_clients(0.5) == 0
        assert schedule.active_clients(1.5) == 10
        assert schedule.active_clients(2.5) == 30
        assert schedule.max_clients() == 30

    def test_step_schedule_must_be_sorted(self):
        with pytest.raises(ValueError):
            StepSchedule(((2.0, 10), (1.0, 30)))

    def test_burst_schedule(self):
        schedule = BurstSchedule(base=10, burst=40, period=10.0, burst_duration=2.0)
        assert schedule.active_clients(1.0) == 50
        assert schedule.active_clients(5.0) == 10
        assert schedule.active_clients(11.0) == 50
        assert schedule.max_clients() == 50

    def test_burst_duration_cannot_exceed_period(self):
        with pytest.raises(ValueError):
            BurstSchedule(base=1, burst=1, period=1.0, burst_duration=2.0)

    @given(st.floats(min_value=0, max_value=1000))
    def test_burst_schedule_always_within_bounds(self, time):
        schedule = BurstSchedule(base=5, burst=20, period=7.0, burst_duration=3.0)
        assert 5 <= schedule.active_clients(time) <= 25

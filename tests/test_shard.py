"""Sharded campaign execution: planning, exact merge, determinism.

The shard layer's contract (see ``repro/campaign/shard.py``) has three
legs, each pinned here: the *plan* is balanced and shard-aware in the
cache key; the *merge* is exact (recomputed from pooled raw samples,
not a summary-of-summaries); and the merged result is a pure function
of the shard plan — byte-identical across worker counts and hash
seeds.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign.cache import result_fingerprint
from repro.campaign.plan import KIND_CELL, KIND_SHARD, KIND_SIM, Job, sim_job, spec_to_payload
from repro.campaign.pool import execute_jobs
from repro.campaign.shard import (
    SHARD_SEED_STRIDE,
    merge_shard_groups,
    merge_shard_results,
    run_sharded,
    shard_campaign_jobs,
    shard_payloads,
    shardable_reason,
)
from repro.cluster.runner import RunSpec
from repro.sim.monitor import SummaryStats
from repro.workload.open_loop import ArrivalSpec


def tiny_spec(**overrides) -> RunSpec:
    values = dict(system="idem", clients=4, duration=0.3, warmup=0.1, seed=3)
    values.update(overrides)
    return RunSpec(**values)


def tiny_payload(**overrides) -> dict:
    return spec_to_payload(tiny_spec(**overrides))


# -- planning -----------------------------------------------------------


class TestShardPlanning:
    def test_clients_split_evenly_remainder_to_earliest(self):
        payloads = shard_payloads(tiny_payload(clients=10), 4)
        assert [p["clients"] for p in payloads] == [3, 3, 2, 2]
        assert sum(p["clients"] for p in payloads) == 10

    def test_cohort_seeds_offset_by_the_stride(self):
        payloads = shard_payloads(tiny_payload(seed=3), 2)
        assert [p["seed"] for p in payloads] == [
            3 + SHARD_SEED_STRIDE,
            3 + 2 * SHARD_SEED_STRIDE,
        ]

    def test_cohorts_force_keep_metrics_and_carry_the_descriptor(self):
        payloads = shard_payloads(tiny_payload(), 2)
        assert all(p["keep_metrics"] for p in payloads)
        assert [p["shard"] for p in payloads] == [
            {"index": 0, "of": 2},
            {"index": 1, "of": 2},
        ]

    def test_open_loop_rates_scale_to_the_cohort_share(self):
        arrivals = ArrivalSpec(steps=((0.0, 100.0), (0.5, 200.0)))
        payloads = shard_payloads(tiny_payload(clients=3, arrivals=arrivals), 2)
        big, small = 2 / 3, 1 / 3
        assert payloads[0]["arrivals"]["steps"] == [[0.0, 100.0 * big], [0.5, 200.0 * big]]
        assert payloads[1]["arrivals"]["steps"] == [[0.0, 100.0 * small], [0.5, 200.0 * small]]

    def test_shard_keys_differ_from_the_base_and_each_other(self):
        base = sim_job("t", tiny_spec())
        jobs, groups = shard_campaign_jobs([base], 2)
        keys = {job.key for job in jobs}
        assert len(keys) == 2 and base.key not in keys
        assert groups == {base.key: (base, [jobs[0].key, jobs[1].key])}
        assert [job.kind for job in jobs] == [KIND_SHARD, KIND_SHARD]
        assert jobs[0].label == f"{base.label}#shard0of2"
        assert jobs[1].label == f"{base.label}#shard1of2"

    @pytest.mark.parametrize(
        "overrides, phrase",
        [
            (dict(safety=True), "safety"),
            (dict(probes=True), "probe"),
            (dict(keep_metrics=True), "metrics collector"),
        ],
    )
    def test_intrinsic_guards(self, overrides, phrase):
        payload = tiny_payload(**overrides)
        reason = shardable_reason(payload)
        assert reason is not None and phrase in reason
        with pytest.raises(ValueError, match="not shardable"):
            shard_payloads(payload, 2)

    def test_fault_and_schedule_guards(self):
        # Faults/schedules round-trip through the payload as dicts; the
        # guard keys off presence, so poke the payload directly.
        payload = tiny_payload()
        payload["faults"] = {"events": []}
        assert "fault" in shardable_reason(payload)
        payload = tiny_payload()
        payload["schedule"] = {"kind": "constant"}
        assert "schedule" in shardable_reason(payload)

    def test_too_few_clients_and_too_few_shards_raise(self):
        with pytest.raises(ValueError, match="cohorts"):
            shard_payloads(tiny_payload(clients=2), 3)
        with pytest.raises(ValueError, match="at least 2"):
            shard_payloads(tiny_payload(), 1)

    def test_campaign_transform_passes_through_what_it_cannot_shard(self):
        cell = Job(experiment_id="t", kind=KIND_CELL, payload={"x": 1}, label="cell")
        guarded = sim_job("t", tiny_spec(safety=True))
        small = sim_job("t", tiny_spec(clients=1))
        shardable = sim_job("t", tiny_spec())
        jobs, groups = shard_campaign_jobs([cell, guarded, small, shardable], 2)
        assert jobs[:3] == [cell, guarded, small]
        assert len(jobs) == 5
        assert set(groups) == {shardable.key}

    def test_shards_of_one_is_the_identity(self):
        base = sim_job("t", tiny_spec())
        jobs, groups = shard_campaign_jobs([base], 1)
        assert jobs == [base] and groups == {}


# -- exact merge --------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_reference():
    """One serial 2-way sharded run, shared by the merge tests."""
    payload = tiny_payload()
    from repro.campaign.pool import execute_payload

    cohorts = [
        execute_payload(KIND_SHARD, shard_payload)
        for shard_payload in shard_payloads(payload, 2)
    ]
    return payload, cohorts, merge_shard_results(payload, cohorts)


class TestShardMerge:
    def test_latency_recomputed_from_pooled_raw_samples(self, sharded_reference):
        _, cohorts, merged = sharded_reference
        pooled = []
        for cohort in cohorts:
            pooled.extend(cohort.metrics.reply_latency.samples)
        assert merged.latency == SummaryStats.of(pooled)

    def test_rates_counters_and_traffic_sum(self, sharded_reference):
        _, cohorts, merged = sharded_reference
        assert merged.throughput == sum(c.throughput for c in cohorts)
        assert merged.timeouts == sum(c.timeouts for c in cohorts)
        for key, value in merged.traffic.items():
            assert value == sum(c.traffic.get(key, 0) for c in cohorts)
        assert len(merged.replica_stats) == sum(
            len(c.replica_stats) for c in cohorts
        )

    def test_identity_fields_come_from_the_base_payload(self, sharded_reference):
        payload, _, merged = sharded_reference
        assert merged.clients == payload["clients"]
        assert merged.seed == payload["seed"]
        assert merged.system == payload["system"]
        assert merged.metrics is None

    def test_sim_stats_sum_except_peak_heap(self, sharded_reference):
        _, cohorts, merged = sharded_reference
        assert merged.sim_stats["dispatched_events"] == sum(
            c.sim_stats["dispatched_events"] for c in cohorts
        )
        assert merged.sim_stats["peak_heap"] == max(
            c.sim_stats["peak_heap"] for c in cohorts
        )
        assert merged.sim_stats["shards"] == 2

    def test_client_stats_sum_and_amplification_recomputes(self, sharded_reference):
        _, cohorts, merged = sharded_reference
        sends = sum(c.client_stats["sends"] for c in cohorts)
        commands = sum(c.client_stats["commands"] for c in cohorts)
        assert merged.client_stats["sends"] == sends
        assert merged.client_stats["load_amplification"] == sends / commands

    def test_merge_guards(self, sharded_reference):
        import dataclasses

        payload, cohorts, _ = sharded_reference
        with pytest.raises(ValueError, match="zero shard"):
            merge_shard_results(payload, [])
        stripped = dataclasses.replace(cohorts[0], metrics=None)
        with pytest.raises(ValueError, match="no metrics collector"):
            merge_shard_results(payload, [stripped, cohorts[1]])


# -- determinism across workers and hash seeds -------------------------


class TestShardDeterminism:
    @pytest.fixture(scope="class")
    def serial_fingerprint(self):
        return result_fingerprint(run_sharded(tiny_payload(), 4))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_execution_matches_the_serial_reference(
        self, workers, serial_fingerprint
    ):
        base = sim_job("t", tiny_spec())
        jobs, groups = shard_campaign_jobs([base], 4)
        results, stats = execute_jobs(jobs, workers=workers, cache=None)
        merge_shard_groups(results, groups)
        assert result_fingerprint(results[base.key]) == serial_fingerprint

    def test_merge_is_invariant_to_result_arrival_order(self):
        base = sim_job("t", tiny_spec())
        jobs, groups = shard_campaign_jobs([base], 4)
        results, _ = execute_jobs(jobs, workers=1, cache=None)
        scrambled = dict(reversed(list(results.items())))
        merge_shard_groups(results, groups)
        merge_shard_groups(scrambled, groups)
        assert result_fingerprint(scrambled[base.key]) == result_fingerprint(
            results[base.key]
        )

    def test_fingerprint_is_hash_seed_invariant(self, serial_fingerprint):
        """A fresh interpreter with a different PYTHONHASHSEED reproduces
        the exact merged fingerprint — no dict/set iteration order leaks
        into the sharded result."""
        script = (
            "from repro.campaign.cache import result_fingerprint\n"
            "from repro.campaign.shard import run_sharded\n"
            "from repro.campaign.plan import spec_to_payload\n"
            "from repro.cluster.runner import RunSpec\n"
            "payload = spec_to_payload(RunSpec(system='idem', clients=4, "
            "duration=0.3, warmup=0.1, seed=3))\n"
            "print(result_fingerprint(run_sharded(payload, 4)))\n"
        )
        fingerprints = set()
        for hash_seed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
            output = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            fingerprints.add(output)
        fingerprints.add(serial_fingerprint)
        assert len(fingerprints) == 1


# -- the campaign engine end to end ------------------------------------


class TestShardedCampaign:
    SETTINGS = dict(quick=True, runs=1, duration=0.25, seed0=0)

    def test_sharded_campaign_is_reproducible_and_caches(self, tmp_path):
        from repro.campaign import CampaignOptions, run_campaign
        from repro.campaign.report import render_shards, report_jsonable

        options = CampaignOptions(
            experiments=["fig2"],
            jobs=2,
            shards=2,
            cache_dir=tmp_path / "cache",
            **self.SETTINGS,
        )
        cold = run_campaign(options)
        assert cold.exit_code == 0
        warm = run_campaign(options)
        assert {o.experiment_id: o.text for o in warm.outcomes} == {
            o.experiment_id: o.text for o in cold.outcomes
        }
        assert warm.stats.executed == 0 and warm.stats.hit_rate == 1.0
        # Shard jobs surface in the report machinery.
        assert report_jsonable(cold)["stats"]["shards"] == 2
        shard_table = render_shards(cold)
        assert "#shard" not in shard_table and "shard0of2" in shard_table

    def test_sharded_results_differ_from_unsharded_but_are_self_consistent(
        self, tmp_path
    ):
        # The contract: sharding changes the modelled deployment (K
        # cohorts), so results legitimately differ from the monolithic
        # run — while the sharded run itself is exactly reproducible.
        from repro.campaign import CampaignOptions, run_campaign

        unsharded = run_campaign(
            CampaignOptions(experiments=["fig2"], jobs=1, **self.SETTINGS)
        )
        sharded = run_campaign(
            CampaignOptions(experiments=["fig2"], jobs=1, shards=2, **self.SETTINGS)
        )
        assert sharded.exit_code == 0
        assert unsharded.outcomes[0].text != sharded.outcomes[0].text

    def test_gc_keeps_what_the_sharded_manifest_references(self, tmp_path):
        from repro.campaign import (
            CampaignOptions,
            ResultCache,
            collect_garbage,
            run_campaign,
        )

        cache_dir = tmp_path / "cache"
        options = CampaignOptions(
            experiments=["fig2"],
            jobs=1,
            shards=2,
            cache_dir=cache_dir,
            **self.SETTINGS,
        )
        run_campaign(options)
        cache = ResultCache(cache_dir)
        entries_before, _ = cache.size()
        assert entries_before > 0
        report = collect_garbage(cache, keep_runs=5)
        assert report.removed == 0
        assert cache.size()[0] == entries_before
        # A rerun resolves entirely from the kept entries.
        warm = run_campaign(options)
        assert warm.stats.executed == 0

    def test_cli_shards_flag_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "campaign", "--experiments", "fig2", "--quick", "--runs", "1",
            "--duration", "0.25", "--jobs", "1", "--shards", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--report", str(tmp_path / "report.json"),
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "shards      : 2" in err
        assert "Shard profiles" in err
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["stats"]["shards"] == 2
        labels = [p["label"] for p in report["job_profiles"]]
        assert any("#shard0of2" in label for label in labels)

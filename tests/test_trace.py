"""Tests for network message tracing."""

import pytest

from repro.cluster.builder import build_cluster
from repro.net.addresses import client_address, replica_address
from repro.net.trace import MessageTracer, TraceFilter, TraceRecord, message_rids

from tests.conftest import small_profile


def traced_cluster(trace_filter=None, max_records=100_000, clients=1, duration=0.2):
    cluster = build_cluster(
        "idem", clients, seed=1, profile=small_profile(), stop_time=duration
    )
    tracer = MessageTracer(trace_filter, max_records=max_records)
    cluster.network.tracer = tracer
    cluster.run_until(duration)
    return cluster, tracer


class TestTraceFilter:
    def record(self, time=0.5, type_name="Request"):
        return TraceRecord(
            time, client_address(0), replica_address(0), type_name, 100
        )

    def test_empty_filter_matches_everything(self):
        assert TraceFilter().matches(self.record())

    def test_type_filter(self):
        trace_filter = TraceFilter(types=frozenset({"Reply"}))
        assert not trace_filter.matches(self.record(type_name="Request"))
        assert trace_filter.matches(self.record(type_name="Reply"))

    def test_endpoint_filter(self):
        trace_filter = TraceFilter(endpoints=frozenset({replica_address(0)}))
        assert trace_filter.matches(self.record())
        other = TraceRecord(
            0.5, replica_address(1), replica_address(2), "Commit", 32
        )
        assert not trace_filter.matches(other)

    def test_time_window(self):
        trace_filter = TraceFilter(start=1.0, end=2.0)
        assert not trace_filter.matches(self.record(time=0.5))
        assert trace_filter.matches(self.record(time=1.5))


class TestMessageTracer:
    def test_records_protocol_messages(self):
        cluster, tracer = traced_cluster()
        counts = tracer.by_type()
        for expected in ("Request", "RequireBatch", "Propose", "Commit", "Reply"):
            assert counts.get(expected, 0) > 0, expected

    def test_type_filter_restricts_recording(self):
        cluster, tracer = traced_cluster(TraceFilter(types=frozenset({"Reply"})))
        assert set(tracer.by_type()) == {"Reply"}

    def test_cap_truncates_and_counts(self):
        cluster, tracer = traced_cluster(max_records=10)
        assert len(tracer) == 10
        assert tracer.truncated > 0

    def test_between(self):
        cluster, tracer = traced_cluster()
        pair = tracer.between(replica_address(0), replica_address(1))
        assert pair
        for record in pair:
            assert {record.src, record.dst} == {
                replica_address(0),
                replica_address(1),
            }

    def test_conversation_rendering(self):
        cluster, tracer = traced_cluster(max_records=20)
        text = tracer.conversation()
        assert "Request" in text
        assert "->" in text
        assert "truncated" in text

    def test_tracer_does_not_change_the_run(self):
        plain = build_cluster("idem", 1, seed=1, profile=small_profile(), stop_time=0.2)
        plain.run_until(0.2)
        traced, _ = traced_cluster()
        assert (
            plain.replicas[0].exec_order_digest
            == traced.replicas[0].exec_order_digest
        )

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            MessageTracer(max_records=0)


class TestMessageRids:
    class _Plain:
        pass

    def _message(self, **attrs):
        message = self._Plain()
        for name, value in attrs.items():
            setattr(message, name, value)
        return message

    def test_single_rid_message(self):
        assert message_rids(self._message(rid=(0, 1))) == ((0, 1),)

    def test_batch_message(self):
        assert message_rids(self._message(rids=[(0, 1), (1, 2)])) == ((0, 1), (1, 2))

    def test_wrapped_request(self):
        request = self._message(rid=(2, 3))
        assert message_rids(self._message(request=request)) == ((2, 3),)

    def test_protocol_internal_message(self):
        assert message_rids(self._message()) == ()


class TestConversationRidFilter:
    """Regression: ``rid_filter`` used to be accepted but ignored."""

    def test_filter_restricts_to_one_request(self):
        cluster, tracer = traced_cluster(clients=2, duration=0.3)
        carrying = [record for record in tracer.records if record.rids]
        assert carrying, "run must produce rid-carrying messages"
        rid = carrying[0].rids[0]
        everything = tracer.conversation()
        filtered = tracer.conversation(rid_filter=[rid])
        assert filtered, "filtered rendering must not be empty"
        assert len(filtered.splitlines()) < len(everything.splitlines())
        # Commits carry no rids, so they never survive a rid filter.
        assert "Commit" in everything
        assert "Commit" not in filtered
        for line in filtered.splitlines():
            assert line in everything

    def test_string_and_tuple_filters_agree(self):
        cluster, tracer = traced_cluster(clients=1, duration=0.2)
        rid = next(record.rids[0] for record in tracer.records if record.rids)
        assert tracer.conversation(rid_filter=[rid]) == tracer.conversation(
            rid_filter=[str(rid)]
        )

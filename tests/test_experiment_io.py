"""Tests for JSON export of experiment results."""

import json

from repro.experiments.io import save_json, to_jsonable
from repro.net.trace import TraceRecord
from repro.net.addresses import replica_address
from repro.sim.monitor import SummaryStats

from tests.test_experiments import make_point


class TestToJsonable:
    def test_point_round_trips(self):
        data = to_jsonable(make_point())
        assert data["system"] == "idem"
        assert data["throughput"] == 43_000.0
        json.dumps(data)  # must be serialisable

    def test_nested_structures(self):
        from repro.experiments.fig6_comparison import Fig6Data

        data = Fig6Data({"idem": [make_point()], "paxos": [make_point("paxos")]})
        jsonable = to_jsonable(data)
        assert jsonable["curves"]["idem"][0]["system"] == "idem"
        json.dumps(jsonable)

    def test_summary_stats(self):
        stats = SummaryStats.of([1.0, 2.0, 3.0])
        jsonable = to_jsonable(stats)
        assert jsonable["count"] == 3

    def test_namedtuples(self):
        record = TraceRecord(1.0, replica_address(0), replica_address(1), "Commit", 32)
        jsonable = to_jsonable(record)
        assert jsonable["type_name"] == "Commit"
        json.dumps(jsonable)

    def test_unknown_objects_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert to_jsonable(Weird()) == "<weird>"

    def test_scalars_pass_through(self):
        assert to_jsonable(None) is None
        assert to_jsonable(3) == 3
        assert to_jsonable("x") == "x"


class TestSaveJson:
    def test_writes_valid_json(self, tmp_path):
        path = save_json(make_point(), tmp_path / "out" / "point.json")
        loaded = json.loads(path.read_text())
        assert loaded["clients"] == 50

    def test_cli_json_flag(self, tmp_path, capsys, monkeypatch):
        from repro import cli
        from repro.experiments import registry

        class FakeModule:
            __doc__ = "Fake."

            @staticmethod
            def run(quick=False, runs=None, seed0=0, duration=None):
                return make_point()

            @staticmethod
            def render(data):
                return "fake"

        monkeypatch.setitem(registry.EXPERIMENTS, "fakejson", FakeModule)
        assert cli.main(["fakejson", "--json", str(tmp_path)]) == 0
        loaded = json.loads((tmp_path / "fakejson.json").read_text())
        assert loaded["system"] == "idem"

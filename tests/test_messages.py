"""Unit tests for wire messages and their size model."""

from repro.app.commands import Command, KvOp
from repro.net.message import HEADER_BYTES
from repro.protocols.messages import (
    CheckpointRequest,
    CheckpointTransfer,
    Commit,
    Fetch,
    Forward,
    ID_BYTES,
    NewView,
    NewViewAck,
    ProposalRequest,
    Propose,
    ProposeFull,
    Reject,
    Reply,
    Request,
    RequireBatch,
    SQN_BYTES,
    VIEW_BYTES,
    ViewChange,
    WindowEntry,
)


def make_request(cid: int = 1, onr: int = 1, value_size: int = 100) -> Request:
    return Request((cid, onr), Command(KvOp.UPDATE, "key", value_size))


def test_every_message_includes_the_header():
    assert Reject((1, 1)).size_bytes() == HEADER_BYTES + ID_BYTES


def test_request_size_includes_command_payload():
    request = make_request(value_size=100)
    assert request.payload_bytes() == ID_BYTES + 1 + 3 + 100


def test_reply_size_scales_with_result():
    small = Reply((1, 1), True, 1, 0)
    big = Reply((1, 1), True, 1000, 0)
    assert big.size_bytes() - small.size_bytes() == 999


def test_require_batch_amortises_over_ids():
    one = RequireBatch(((1, 1),))
    many = RequireBatch(tuple((cid, 1) for cid in range(10)))
    assert many.size_bytes() - one.size_bytes() == 9 * ID_BYTES


def test_id_propose_is_much_smaller_than_full_propose():
    rids = tuple((cid, 1) for cid in range(20))
    requests = tuple(make_request(cid, value_size=1000) for cid in range(20))
    id_based = Propose(0, 1, rids)
    full = ProposeFull(0, 1, requests)
    # This asymmetry is IDEM's design point (Section 4.2).
    assert full.size_bytes() > 10 * id_based.size_bytes()


def test_propose_full_payload_is_cached_and_correct():
    requests = tuple(make_request(cid) for cid in range(3))
    full = ProposeFull(0, 1, requests)
    expected = VIEW_BYTES + SQN_BYTES + sum(r.payload_bytes() for r in requests)
    assert full.payload_bytes() == expected
    assert full.payload_bytes() == expected  # second call uses the cache


def test_commit_is_small_and_constant():
    assert Commit(3, 99).payload_bytes() == VIEW_BYTES + SQN_BYTES


def test_forward_carries_the_full_request():
    request = make_request()
    assert Forward(request).payload_bytes() == request.payload_bytes()


def test_fetch_and_proposal_request_sizes():
    assert Fetch((1, 2)).payload_bytes() == ID_BYTES
    assert ProposalRequest(5).payload_bytes() == SQN_BYTES


def test_window_entry_without_bodies():
    entry = WindowEntry(1, 0, ((1, 1), (2, 1)))
    assert entry.payload_bytes() == SQN_BYTES + VIEW_BYTES + 2 * ID_BYTES


def test_window_entry_with_bodies_is_larger():
    rids = ((1, 1),)
    bare = WindowEntry(1, 0, rids)
    loaded = WindowEntry(1, 0, rids, (make_request(),))
    assert loaded.payload_bytes() > bare.payload_bytes()


def test_viewchange_size_sums_entries():
    entries = tuple(WindowEntry(sqn, 0, ((1, 1),)) for sqn in range(3))
    message = ViewChange(1, entries)
    assert message.payload_bytes() == VIEW_BYTES + 3 * entries[0].payload_bytes()


def test_newview_and_ack_sizes():
    entries = (WindowEntry(1, 0, ((1, 1),)),)
    newview = NewView(1, entries, 2)
    assert newview.payload_bytes() == VIEW_BYTES + SQN_BYTES + entries[0].payload_bytes()
    ack = NewViewAck(1, (1, 2, 3))
    assert ack.payload_bytes() == VIEW_BYTES + 3 * SQN_BYTES


def test_checkpoint_messages():
    assert CheckpointRequest(9).payload_bytes() == SQN_BYTES
    transfer = CheckpointTransfer(9, {"a": 1}, {1: 2}, declared_bytes=500)
    assert transfer.payload_bytes() == SQN_BYTES + 500 + ID_BYTES


def test_type_name_used_for_traffic_breakdown():
    assert make_request().type_name() == "Request"
    assert Commit(0, 1).type_name() == "Commit"

"""Tests for the open-loop (Poisson) load driver."""

import pytest

from repro.cluster.builder import build_cluster
from repro.workload.open_loop import OpenLoopDriver, spike_rate

from tests.conftest import small_profile


def open_loop_cluster(system="idem", pool=20, rate=2000.0, duration=1.0, **kwargs):
    cluster = build_cluster(
        system,
        pool,
        seed=4,
        profile=small_profile(),
        start_clients=False,
        stop_time=duration,
        **kwargs,
    )
    driver = OpenLoopDriver(
        cluster.loop,
        cluster.clients,
        rate,
        cluster.rng.stream("open-loop"),
        stop_time=duration,
    )
    driver.start(at=0.0)
    cluster.run_until(duration)
    cluster.stop_clients()
    cluster.run_until(duration + 0.5)
    return cluster, driver


def test_arrival_rate_is_roughly_the_configured_rate():
    cluster, driver = open_loop_cluster(rate=2000.0, duration=1.0)
    assert 1700 < driver.arrivals < 2300


def test_operations_complete():
    cluster, driver = open_loop_cluster()
    successes = sum(client.successes for client in cluster.clients)
    assert successes > 0
    # At this light load nothing is shed and nearly all arrivals finish.
    assert driver.shed_arrivals == 0
    assert successes >= 0.9 * driver.arrivals


def test_saturated_pool_sheds_arrivals():
    cluster, driver = open_loop_cluster(pool=2, rate=20000.0, duration=0.3)
    assert driver.shed_arrivals > 0
    assert driver.arrivals > driver.shed_arrivals  # some were served


def test_time_varying_rate_spike():
    rate = spike_rate(base=500.0, spike=5000.0, start=0.4, duration=0.2)
    cluster, driver = open_loop_cluster(
        pool=50, rate=rate, duration=1.0, bucket_width=0.05
    )
    series = cluster.metrics.reply_counter.series()
    quiet = [r for t, r in series if 0.05 <= t < 0.35]
    spiky = [r for t, r in series if 0.45 <= t < 0.6]
    assert quiet and spiky
    assert max(spiky) > 3 * max(quiet)


def test_zero_rate_generates_nothing():
    cluster, driver = open_loop_cluster(rate=lambda t: 0.0, duration=0.3)
    assert driver.arrivals == 0


def test_driver_requires_clients():
    cluster = build_cluster(
        "idem", 1, profile=small_profile(), start_clients=False
    )
    with pytest.raises(ValueError):
        OpenLoopDriver(cluster.loop, [], 100.0, cluster.rng.stream("x"))


def test_rejected_clients_respect_backoff():
    """A client that was rejected only rejoins the pool after backing off."""
    cluster, driver = open_loop_cluster(
        pool=30,
        rate=30000.0,
        duration=0.6,
        overrides={"reject_threshold": 2},
    )
    rejections = sum(client.rejections for client in cluster.clients)
    assert rejections > 0
    assert driver.busy_clients <= len(cluster.clients)

"""Tests for the open-loop (Poisson) load driver."""

import pytest

from repro.cluster.builder import build_cluster
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry
from repro.workload.open_loop import ArrivalSpec, OpenLoopDriver, spike_rate

from tests.conftest import small_profile


def open_loop_cluster(system="idem", pool=20, rate=2000.0, duration=1.0, **kwargs):
    cluster = build_cluster(
        system,
        pool,
        seed=4,
        profile=small_profile(),
        start_clients=False,
        stop_time=duration,
        **kwargs,
    )
    driver = OpenLoopDriver(
        cluster.loop,
        cluster.clients,
        rate,
        cluster.rng.stream("open-loop"),
        stop_time=duration,
    )
    driver.start(at=0.0)
    cluster.run_until(duration)
    cluster.stop_clients()
    cluster.run_until(duration + 0.5)
    return cluster, driver


def test_arrival_rate_is_roughly_the_configured_rate():
    cluster, driver = open_loop_cluster(rate=2000.0, duration=1.0)
    assert 1700 < driver.arrivals < 2300


def test_operations_complete():
    cluster, driver = open_loop_cluster()
    successes = sum(client.successes for client in cluster.clients)
    assert successes > 0
    # At this light load nothing is shed and nearly all arrivals finish.
    assert driver.shed_arrivals == 0
    assert successes >= 0.9 * driver.arrivals


def test_saturated_pool_sheds_arrivals():
    cluster, driver = open_loop_cluster(pool=2, rate=20000.0, duration=0.3)
    assert driver.shed_arrivals > 0
    assert driver.arrivals > driver.shed_arrivals  # some were served


def test_time_varying_rate_spike():
    rate = spike_rate(base=500.0, spike=5000.0, start=0.4, duration=0.2)
    cluster, driver = open_loop_cluster(
        pool=50, rate=rate, duration=1.0, bucket_width=0.05
    )
    series = cluster.metrics.reply_counter.series()
    quiet = [r for t, r in series if 0.05 <= t < 0.35]
    spiky = [r for t, r in series if 0.45 <= t < 0.6]
    assert quiet and spiky
    assert max(spiky) > 3 * max(quiet)


def test_zero_rate_generates_nothing():
    cluster, driver = open_loop_cluster(rate=lambda t: 0.0, duration=0.3)
    assert driver.arrivals == 0


def test_driver_requires_clients():
    cluster = build_cluster(
        "idem", 1, profile=small_profile(), start_clients=False
    )
    with pytest.raises(ValueError):
        OpenLoopDriver(cluster.loop, [], 100.0, cluster.rng.stream("x"))


class _StubClient:
    """Minimal client for driver-only tests: completes instantly."""

    def __init__(self):
        self.driver = None
        self.issued = 0

    def _issue_next(self):
        self.issued += 1
        self.driver.client_finished(self, 0.0)


def stub_driver(rate, stop_time=1.0, pool=4, seed=7):
    loop = EventLoop()
    clients = [_StubClient() for _ in range(pool)]
    driver = OpenLoopDriver(
        loop, clients, rate, RngRegistry(seed).stream("open-loop"), stop_time
    )
    driver.start(at=0.0)
    return loop, driver


class TestArrivalSpec:
    def test_boundary_belongs_to_the_new_phase(self):
        spec = ArrivalSpec(steps=((0.0, 100.0), (0.5, 900.0)))
        assert spec.rate_at(0.5 - 1e-9) == 100.0
        # An arrival landing exactly on the boundary deterministically
        # draws its next gap from the new phase's rate.
        assert spec.rate_at(0.5) == 900.0
        assert spec.rate_at(0.7) == 900.0

    def test_rate_before_the_first_step_is_zero(self):
        spec = ArrivalSpec(steps=((0.2, 100.0),))
        assert spec.rate_at(0.0) == 0.0
        assert spec.rate_at(0.2) == 100.0

    def test_next_change(self):
        spec = ArrivalSpec(steps=((0.0, 100.0), (0.5, 0.0), (0.8, 200.0)))
        assert spec.next_change(0.0) == 0.5
        assert spec.next_change(0.5) == 0.8  # strictly after
        assert spec.next_change(0.8) is None
        assert spec.next_change(3.0) is None

    def test_max_rate_over_a_modulated_plan(self):
        spec = ArrivalSpec(
            steps=((0.0, 100.0), (0.3, 2500.0), (0.4, 0.0), (0.9, 700.0))
        )
        assert spec.max_rate() == 2500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(steps=())
        with pytest.raises(ValueError):
            ArrivalSpec(steps=((0.5, 100.0), (0.2, 50.0)))  # unsorted
        with pytest.raises(ValueError):
            ArrivalSpec(steps=((0.0, -1.0),))


class TestZeroRateSuspension:
    def test_spec_driver_suspends_through_zero_rate_phases(self):
        """With a declarative plan the driver sleeps to the exact phase
        boundary instead of polling every 10 ms."""
        spec = ArrivalSpec(steps=((0.0, 0.0), (0.9, 0.0)))
        loop, driver = stub_driver(spec, stop_time=1.0)
        loop.run_until(1.0)
        assert driver.arrivals == 0
        # One event at t=0 (sees rate 0, schedules the boundary) and one
        # at the 0.9 boundary (rate still 0, no further phases) — not
        # ~100 zero-rate polls.
        assert loop.dispatched_events <= 3

    def test_spec_driver_suspends_forever_after_the_last_phase(self):
        spec = ArrivalSpec(steps=((0.0, 0.0),))
        loop, driver = stub_driver(spec, stop_time=5.0)
        loop.run_until(5.0)
        assert driver.arrivals == 0
        assert loop.dispatched_events <= 1

    def test_spec_driver_resumes_at_the_boundary(self):
        spec = ArrivalSpec(steps=((0.0, 0.0), (0.5, 4000.0)))
        loop, driver = stub_driver(spec, stop_time=1.0)
        loop.run_until(1.0)
        assert driver.arrivals > 0
        issued = sum(client.issued for client in driver.clients)
        assert issued == driver.arrivals - driver.shed_arrivals

    def test_callable_rate_still_polls(self):
        """Opaque callables cannot reveal their next change; the driver
        keeps the short re-check poll (the pre-spec behaviour)."""
        loop, driver = stub_driver(lambda t: 0.0, stop_time=0.3)
        loop.run_until(0.3)
        assert driver.arrivals == 0
        assert loop.dispatched_events > 10


def test_rejected_clients_respect_backoff():
    """A client that was rejected only rejoins the pool after backing off."""
    cluster, driver = open_loop_cluster(
        pool=30,
        rate=30000.0,
        duration=0.6,
        overrides={"reject_threshold": 2},
    )
    rejections = sum(client.rejections for client in cluster.clients)
    assert rejections > 0
    assert driver.busy_clients <= len(cluster.clients)

#!/usr/bin/env python
"""Guard the observer-only contract of repro.obs.

Runs one seeded scenario twice — tracing off, then on — and demands the
two ExperimentResults agree on every measured field, including the
per-replica protocol counters.  Any drift means instrumentation leaked
into the simulation (scheduled an event, drew randomness, or mutated
protocol state) and fails CI.

Usage::

    PYTHONPATH=src python tools/overhead_guard.py [--seed N] [--system S]
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.faults import FaultSchedule
from repro.cluster.runner import RunSpec, run_experiment


def fingerprint(result) -> list[tuple[str, object]]:
    """Every result field that must not move when tracing is attached."""
    return [
        ("throughput", result.throughput),
        ("latency", result.latency),
        ("reject_throughput", result.reject_throughput),
        ("reject_latency", result.reject_latency),
        ("timeouts", result.timeouts),
        ("traffic", tuple(sorted(result.traffic.items()))),
        (
            "replica_stats",
            tuple(tuple(sorted(stats.items())) for stats in result.replica_stats),
        ),
    ]


def scenarios(system: str, seed: int) -> list[tuple[str, dict]]:
    """Steady state, overload (rejection path) and a crash/recovery."""
    return [
        (
            "steady",
            dict(system=system, clients=10, duration=1.0, warmup=0.3, seed=seed),
        ),
        (
            "overload",
            dict(
                system=system,
                clients=40,
                duration=1.0,
                warmup=0.3,
                seed=seed,
                overrides={"reject_threshold": 2},
            ),
        ),
        (
            "crash",
            dict(
                system=system,
                clients=10,
                duration=1.2,
                warmup=0.2,
                seed=seed,
                faults=FaultSchedule().crash_follower(0.4).recover_replica(0.8),
            ),
        ),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--system", default="idem")
    args = parser.parse_args(argv)

    failures = 0
    for label, kwargs in scenarios(args.system, args.seed):
        plain = run_experiment(RunSpec(**kwargs))
        traced = run_experiment(RunSpec(**kwargs, observe=True))
        drift = [
            (name, a, b)
            for (name, a), (_name, b) in zip(fingerprint(plain), fingerprint(traced))
            if a != b
        ]
        events = len(traced.obs.tracer.events) if traced.obs else 0
        if drift:
            failures += 1
            print(f"[{label}] DRIFT with tracing on ({events} events recorded):")
            for name, a, b in drift:
                print(f"  {name}:\n    off: {a}\n    on:  {b}")
        else:
            print(f"[{label}] ok: identical results, {events} trace events")
    if failures:
        print(f"overhead guard FAILED: {failures} scenario(s) drifted", file=sys.stderr)
        return 1
    print("overhead guard passed: tracing is observer-only")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Guard the observer-only contract of repro.obs.

Runs one seeded scenario three times — bare, traced (``observe=True``)
and probed (``probes=True``) — and demands the three ExperimentResults
agree on every measured field, including the per-replica protocol
counters.  Any drift means instrumentation leaked into the simulation
(scheduled an extra event the protocol can see, drew randomness, or
mutated protocol state) and fails CI.

The probed leg additionally checks a bounded-cost contract: the probe
sampler must record samples (the recorder is live) while dispatching
exactly as many simulation events as the traced leg — probing rides the
observer sampling tick and schedules nothing of its own — and the
sample count must stay within the sampling-cadence budget
(ticks x series, with headroom for node churn).

Usage::

    PYTHONPATH=src python tools/overhead_guard.py [--seed N] [--system S]
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.faults import FaultSchedule
from repro.cluster.runner import RunSpec, run_experiment


def fingerprint(result) -> list[tuple[str, object]]:
    """Every result field that must not move when tracing is attached."""
    return [
        ("throughput", result.throughput),
        ("latency", result.latency),
        ("reject_throughput", result.reject_throughput),
        ("reject_latency", result.reject_latency),
        ("timeouts", result.timeouts),
        ("traffic", tuple(sorted(result.traffic.items()))),
        (
            "replica_stats",
            tuple(tuple(sorted(stats.items())) for stats in result.replica_stats),
        ),
    ]


def scenarios(system: str, seed: int) -> list[tuple[str, dict]]:
    """Steady state, overload (rejection path) and a crash/recovery."""
    return [
        (
            "steady",
            dict(system=system, clients=10, duration=1.0, warmup=0.3, seed=seed),
        ),
        (
            "overload",
            dict(
                system=system,
                clients=40,
                duration=1.0,
                warmup=0.3,
                seed=seed,
                overrides={"reject_threshold": 2},
            ),
        ),
        (
            "crash",
            dict(
                system=system,
                clients=10,
                duration=1.2,
                warmup=0.2,
                seed=seed,
                faults=FaultSchedule().crash_follower(0.4).recover_replica(0.8),
            ),
        ),
    ]


def diff(reference, candidate) -> list[tuple[str, object, object]]:
    return [
        (name, a, b)
        for (name, a), (_name, b) in zip(
            fingerprint(reference), fingerprint(candidate)
        )
        if a != b
    ]


def probe_budget(spec: RunSpec, recorder) -> int:
    """Upper bound on recorder samples for one run of ``spec``.

    One probe pass records at most one sample per (node, series) pair;
    passes fire on the sampling cadence, so ticks x series (plus one
    pass of slack for boundary rounding) bounds the total.
    """
    ticks = int(spec.duration / spec.obs_sample_interval) + 1
    return ticks * max(1, len(recorder))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--system", default="idem")
    args = parser.parse_args(argv)

    failures = 0
    for label, kwargs in scenarios(args.system, args.seed):
        plain = run_experiment(RunSpec(**kwargs))
        traced = run_experiment(RunSpec(**kwargs, observe=True))
        probed_spec = RunSpec(**kwargs, probes=True)
        probed = run_experiment(probed_spec)

        ok = True
        for leg, result in (("tracing", traced), ("probes", probed)):
            drift = diff(plain, result)
            if drift:
                failures += 1
                ok = False
                print(f"[{label}] DRIFT with {leg} on:")
                for name, a, b in drift:
                    print(f"  {name}:\n    off: {a}\n    on:  {b}")

        # Probing must not change the event count either: it rides the
        # sampling tick the traced leg already schedules.
        traced_events = traced.sim_stats["dispatched_events"]
        probed_events = probed.sim_stats["dispatched_events"]
        if probed_events != traced_events:
            failures += 1
            ok = False
            print(
                f"[{label}] probe OVERHEAD: {probed_events} dispatched "
                f"events with probes vs {traced_events} traced"
            )

        recorder = probed.obs.recorder
        budget = probe_budget(probed_spec, recorder)
        if recorder.samples_recorded == 0:
            failures += 1
            ok = False
            print(f"[{label}] probe recorder recorded nothing")
        elif recorder.samples_recorded > budget:
            failures += 1
            ok = False
            print(
                f"[{label}] probe OVERHEAD: {recorder.samples_recorded} "
                f"samples recorded, cadence budget is {budget}"
            )

        if ok:
            events = len(traced.obs.tracer.events) if traced.obs else 0
            print(
                f"[{label}] ok: identical results, {events} trace events, "
                f"{recorder.samples_recorded} probe samples "
                f"(budget {budget}), {probed_events} dispatched events"
            )
    if failures:
        print(f"overhead guard FAILED: {failures} check(s) drifted", file=sys.stderr)
        return 1
    print("overhead guard passed: tracing and probing are observer-only")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A pure-Python ``bdist_wheel`` distutils command (py3-none-any only).

Implements the three entry points setuptools' editable/dist-info builds
use — :meth:`bdist_wheel.get_tag`, :meth:`bdist_wheel.write_wheelfile`
and :meth:`bdist_wheel.egg2dist` — plus a straightforward ``run`` so
non-editable ``pip install .`` also works for pure-Python projects.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile

from distutils import log
from distutils.core import Command

from wheel import __version__
from wheel.wheelfile import WheelFile


def safer_name(name: str) -> str:
    """Escape a project name for use in a wheel filename (PEP 491)."""
    return re.sub(r"[^\w\d.]+", "_", name, flags=re.UNICODE)


def safer_version(version: str) -> str:
    """Escape a version for use in a wheel filename."""
    return re.sub(r"[^\w\d.+]+", "_", version, flags=re.UNICODE)


class bdist_wheel(Command):
    """Build a py3-none-any wheel from a pure-Python distribution."""

    description = "create a wheel distribution (offline shim)"

    user_options = [
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("keep-temp", "k", "keep the build tree"),
    ]
    boolean_options = ["keep-temp"]

    def initialize_options(self) -> None:
        self.dist_dir = None
        self.keep_temp = False

    def finalize_options(self) -> None:
        if self.dist_dir is None:
            self.dist_dir = os.path.join(
                self.distribution.src_root or os.curdir, "dist"
            )

    # -- the surface setuptools needs ----------------------------------

    def get_tag(self) -> tuple[str, str, str]:
        """The wheel tag; this shim only builds pure-Python wheels."""
        return ("py3", "none", "any")

    def write_wheelfile(self, dist_info_dir: str) -> None:
        """Write the WHEEL metadata file into ``dist_info_dir``."""
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: wheel-shim ({__version__})\n"
            "Root-Is-Purelib: true\n"
            f"Tag: {'-'.join(self.get_tag())}\n"
        )
        with open(os.path.join(dist_info_dir, "WHEEL"), "w", encoding="utf-8") as f:
            f.write(content)

    def egg2dist(self, egginfo_path: str, distinfo_path: str) -> None:
        """Convert an ``.egg-info`` directory into a ``.dist-info`` one."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)
        pkg_info = os.path.join(egginfo_path, "PKG-INFO")
        shutil.copyfile(pkg_info, os.path.join(distinfo_path, "METADATA"))
        for extra in ("entry_points.txt", "top_level.txt"):
            source = os.path.join(egginfo_path, extra)
            if os.path.exists(source):
                shutil.copyfile(source, os.path.join(distinfo_path, extra))
        self.write_wheelfile(distinfo_path)
        shutil.rmtree(egginfo_path, ignore_errors=True)

    # -- full (non-editable) builds -------------------------------------

    def run(self) -> None:
        build = self.reinitialize_command("build")
        build.ensure_finalized()
        self.run_command("build")

        name = safer_name(self.distribution.get_name())
        version = safer_version(self.distribution.get_version())
        tag = "-".join(self.get_tag())
        archive = f"{name}-{version}-{tag}.whl"
        os.makedirs(self.dist_dir, exist_ok=True)
        wheel_path = os.path.join(self.dist_dir, archive)

        staging = tempfile.mkdtemp(suffix=".wheel-shim")
        try:
            build_lib = build.build_lib
            if os.path.isdir(build_lib):
                shutil.copytree(build_lib, staging, dirs_exist_ok=True)
            egg_info = self.get_finalized_command("egg_info")
            egg_info.run()
            dist_info_dir = os.path.join(staging, f"{name}-{version}.dist-info")
            self.egg2dist(egg_info.egg_info, dist_info_dir)
            if os.path.exists(wheel_path):
                os.unlink(wheel_path)
            with WheelFile(wheel_path, "w") as wf:
                wf.write_files(staging)
            log.info("created %s", wheel_path)
        finally:
            if not self.keep_temp:
                shutil.rmtree(staging, ignore_errors=True)

        self.distribution.dist_files.append(("bdist_wheel", "3", wheel_path))

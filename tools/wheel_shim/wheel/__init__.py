"""A minimal, offline-friendly subset of the ``wheel`` package.

Fully offline environments sometimes ship setuptools without the
``wheel`` distribution, which breaks ``pip install -e .`` (setuptools'
PEP 660 editable builds import ``wheel.wheelfile`` and run the
``bdist_wheel`` command).  This shim provides exactly the surface
setuptools needs:

* :mod:`wheel.wheelfile` — a RECORD-maintaining zip writer.
* :mod:`wheel.bdist_wheel` — a pure-Python ``bdist_wheel`` command.

Install it with ``python tools/install_wheel_shim.py`` (see README).
It is *not* a general replacement for the real ``wheel`` project.
"""

__version__ = "0.43.0+shim"

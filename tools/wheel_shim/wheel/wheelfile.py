"""A RECORD-maintaining zip file, API-compatible with wheel.wheelfile."""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    encoded = base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")
    return f"sha256={encoded}"


class WheelFile(zipfile.ZipFile):
    """Write a .whl archive, appending a correct RECORD on close."""

    def __init__(self, file, mode: str = "r", compression=zipfile.ZIP_DEFLATED):
        super().__init__(file, mode=mode, compression=compression, allowZip64=True)
        self._records: list[tuple[str, str, int]] = []
        base = os.path.basename(str(file))
        stem = base[: -len(".whl")] if base.endswith(".whl") else base
        parts = stem.split("-")
        self.dist_info_path = f"{parts[0]}-{parts[1]}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"

    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):  # noqa: D102
        if isinstance(data, str):
            data = data.encode("utf-8")
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        name = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else zinfo_or_arcname
        )
        if name != self.record_path:
            self._records.append((name, _record_hash(data), len(data)))

    def write(self, filename, arcname=None, *args, **kwargs):  # noqa: D102
        with open(filename, "rb") as handle:
            data = handle.read()
        name = arcname if arcname is not None else os.path.basename(filename)
        self.writestr(name.replace(os.sep, "/"), data)

    def write_files(self, base_dir) -> None:
        """Recursively add every file below ``base_dir`` to the archive."""
        for root, dirs, files in os.walk(base_dir):
            dirs.sort()
            for filename in sorted(files):
                path = os.path.join(root, filename)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                self.write(path, arcname)

    def close(self) -> None:  # noqa: D102
        if self.mode == "w" and not self._closed_record_written():
            lines = [
                f"{name},{digest},{size}" for name, digest, size in self._records
            ]
            lines.append(f"{self.record_path},,")
            record = "\n".join(lines) + "\n"
            super().writestr(self.record_path, record.encode("utf-8"))
        super().close()

    def _closed_record_written(self) -> bool:
        try:
            return self.record_path in self.namelist()
        except Exception:  # pragma: no cover - archive already closed
            return True

#!/usr/bin/env python3
"""Install the offline ``wheel`` shim into the active environment.

Run this once if ``pip install -e .`` fails with
``error: invalid command 'bdist_wheel'`` — that error means the
environment has setuptools but not the ``wheel`` distribution, and no
network to fetch it.  The shim (see ``tools/wheel_shim``) provides the
small surface setuptools needs.  A real ``wheel`` installation, if one
is present, is left untouched.
"""

from __future__ import annotations

import os
import shutil
import sys
import sysconfig

SHIM_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "wheel_shim")
DIST_INFO = "wheel-0.43.0+shim.dist-info"

METADATA = """\
Metadata-Version: 2.1
Name: wheel
Version: 0.43.0+shim
Summary: Offline shim providing the bdist_wheel surface setuptools needs
"""

ENTRY_POINTS = """\
[distutils.commands]
bdist_wheel = wheel.bdist_wheel:bdist_wheel
"""


def main() -> int:
    try:
        import wheel  # noqa: F401

        if "+shim" not in getattr(wheel, "__version__", "+shim"):
            print("a real 'wheel' package is already installed; nothing to do")
            return 0
    except ImportError:
        pass

    site_packages = sysconfig.get_paths()["purelib"]
    package_src = os.path.join(SHIM_ROOT, "wheel")
    package_dst = os.path.join(site_packages, "wheel")
    shutil.copytree(package_src, package_dst, dirs_exist_ok=True)

    dist_info_dir = os.path.join(site_packages, DIST_INFO)
    os.makedirs(dist_info_dir, exist_ok=True)
    with open(os.path.join(dist_info_dir, "METADATA"), "w", encoding="utf-8") as f:
        f.write(METADATA)
    with open(os.path.join(dist_info_dir, "entry_points.txt"), "w", encoding="utf-8") as f:
        f.write(ENTRY_POINTS)
    with open(os.path.join(dist_info_dir, "RECORD"), "w", encoding="utf-8") as f:
        f.write("")

    print(f"installed wheel shim into {package_dst}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation benchmarks for IDEM's design choices (beyond the paper's plots).

DESIGN.md calls out four load-bearing mechanisms; each ablation removes
or varies one and measures the effect:

* optimistic vs pessimistic clients (Section 5.3's trade-off),
* the forward timeout (Section 5.2's delayed forwarding),
* the recently-rejected cache (Section 5.2),
* AQM vs plain tail drop at full strength (Section 5.1).
"""

from repro.cluster.runner import RunSpec, run_experiment
from repro.experiments import common

from benchmarks.conftest import report

OVERLOAD_CLIENTS = 200  # 4x baseline: rejection active throughout


def measure(system: str, seed: int = 0, **overrides):
    return run_experiment(
        RunSpec(
            system=system,
            clients=OVERLOAD_CLIENTS,
            duration=1.0,
            warmup=0.3,
            seed=seed,
            overrides=overrides,
        )
    )


def test_ablation_batch_size(benchmark):
    """Leader batching is what amortises agreement costs; too small a
    batch burns the leader's CPU on per-batch overheads."""

    def run():
        return {
            batch: measure("idem", batch_max=batch)
            for batch in (4, 32, 128)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: leader batch size (batch_max)"]
    for batch, result in sorted(results.items()):
        lines.append(
            f"  {batch:4d}: {result.throughput_kops:5.1f}k req/s @ "
            f"{result.latency.mean * 1e3:5.2f} ms"
        )
    report("ablation_batch_size", "\n".join(lines))
    # Tiny batches cost throughput; large ones stop helping.
    assert results[4].throughput < results[32].throughput
    assert results[128].throughput > 0.9 * results[32].throughput


def test_ablation_optimistic_vs_pessimistic_clients(benchmark):
    """Optimistic clients trade reject latency for success rate."""

    def run():
        return measure("idem"), measure("idem-pessimistic")

    optimistic, pessimistic = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: client strategy in the ambivalence state",
        f"  optimistic : {optimistic.throughput_kops:5.1f}k req/s, "
        f"reject latency {optimistic.reject_latency.mean * 1e3:5.2f} ms, "
        f"rejects {optimistic.reject_throughput:6.0f}/s",
        f"  pessimistic: {pessimistic.throughput_kops:5.1f}k req/s, "
        f"reject latency {pessimistic.reject_latency.mean * 1e3:5.2f} ms, "
        f"rejects {pessimistic.reject_throughput:6.0f}/s",
    ]
    report("ablation_client_strategy", "\n".join(lines))
    # Pessimistic aborts immediately at n-f rejects: lower reject latency.
    assert pessimistic.reject_latency.mean < optimistic.reject_latency.mean
    # The optimistic grace converts some would-be rejections into
    # successes (or at least never fewer).
    assert optimistic.reject_throughput <= pessimistic.reject_throughput * 1.05


def test_ablation_forward_timeout(benchmark):
    """A shorter forward timeout resolves split acceptance sooner."""

    def run():
        return {
            timeout: measure("idem", forward_timeout=timeout)
            for timeout in (0.002, 0.010, 0.040)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: forward timeout (delayed forwarding)"]
    for timeout, result in sorted(results.items()):
        forwards = sum(s["forwards"] for s in result.replica_stats)
        lines.append(
            f"  {timeout * 1e3:4.0f} ms: {result.throughput_kops:5.1f}k req/s, "
            f"reject latency {result.reject_latency.mean * 1e3:5.2f} ms, "
            f"{forwards} forwards"
        )
    report("ablation_forward_timeout", "\n".join(lines))
    # Shorter timeouts forward more aggressively.
    forwards = {
        timeout: sum(s["forwards"] for s in result.replica_stats)
        for timeout, result in results.items()
    }
    assert forwards[0.002] >= forwards[0.040]
    # Throughput is only mildly sensitive: forwarding is mostly off the
    # critical path (a very long timeout pins split-accepted requests'
    # slots, costing some capacity).
    throughputs = [result.throughput for result in results.values()]
    assert max(throughputs) < 1.3 * min(throughputs)


def test_ablation_rejected_request_cache(benchmark):
    """The reject cache avoids fetches when the group overrules a reject."""

    def run():
        with_cache = measure("idem", rejected_cache_size=256)
        without_cache = measure("idem", rejected_cache_size=0)
        return with_cache, without_cache

    with_cache, without_cache = benchmark.pedantic(run, rounds=1, iterations=1)
    fetches_with = sum(s["fetches"] for s in with_cache.replica_stats)
    fetches_without = sum(s["fetches"] for s in without_cache.replica_stats)
    report(
        "ablation_reject_cache",
        "Ablation: recently-rejected request cache\n"
        f"  cache 256: {fetches_with} fetches, "
        f"{with_cache.throughput_kops:5.1f}k req/s\n"
        f"  cache   0: {fetches_without} fetches, "
        f"{without_cache.throughput_kops:5.1f}k req/s",
    )
    assert fetches_with <= fetches_without
    # Either way the protocol keeps its plateau.
    assert with_cache.latency.mean * 1e3 < 2.0
    assert without_cache.latency.mean * 1e3 < 2.0


def test_ablation_adaptive_threshold_heals_misconfiguration(benchmark):
    """The adaptive controller (automated Section 7.5) recovers the
    healthy latency plateau from the Figure 9a misconfiguration."""

    def run():
        static = run_experiment(
            RunSpec(
                system="idem",
                clients=300,
                duration=2.5,
                warmup=1.5,
                seed=1,
                overrides={"reject_threshold": 100},
            )
        )
        adaptive = run_experiment(
            RunSpec(
                system="idem-adaptive",
                clients=300,
                duration=2.5,
                warmup=1.5,
                seed=1,
                overrides={"reject_threshold": 100},
            )
        )
        return static, adaptive

    static, adaptive = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_adaptive",
        "Ablation: adaptive reject threshold, misconfigured start (RT=100, 6x load)\n"
        f"  static RT=100 : {static.throughput_kops:5.1f}k req/s @ "
        f"{static.latency.mean * 1e3:5.2f} ms\n"
        f"  adaptive      : {adaptive.throughput_kops:5.1f}k req/s @ "
        f"{adaptive.latency.mean * 1e3:5.2f} ms",
    )
    assert adaptive.latency.mean < 0.5 * static.latency.mean
    assert adaptive.latency.mean < 2.0e-3
    assert adaptive.throughput > 0.7 * static.throughput


def test_ablation_aqm_vs_taildrop_normal_case(benchmark):
    """With all replicas alive, AQM and tail drop perform alike —
    the difference only matters in the f+1 regime (Figure 10)."""

    def run():
        return (
            common.averaged_point("idem", OVERLOAD_CLIENTS, runs=2, duration=1.0),
            common.averaged_point(
                "idem-noaqm", OVERLOAD_CLIENTS, runs=2, duration=1.0
            ),
        )

    aqm, taildrop = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_aqm",
        "Ablation: AQM vs tail drop (all replicas alive)\n"
        f"  aqm     : {aqm.throughput_kops:5.1f}k req/s @ {aqm.latency_ms:.2f} ms, "
        f"reject latency {aqm.reject_latency_ms:.2f} ms\n"
        f"  taildrop: {taildrop.throughput_kops:5.1f}k req/s @ "
        f"{taildrop.latency_ms:.2f} ms, "
        f"reject latency {taildrop.reject_latency_ms:.2f} ms",
    )
    assert abs(aqm.throughput - taildrop.throughput) < 0.15 * taildrop.throughput
    # AQM's unanimity nudge shows up as cheaper rejections even here.
    assert aqm.reject_latency_ms <= taildrop.reject_latency_ms * 1.1

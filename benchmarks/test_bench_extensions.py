"""Benchmarks for properties the paper claims in prose (no figure).

* Client fairness under AQM (Section 5.1: "all clients having a similar
  share of accepted and rejected requests over the runtime").
* The leader-link bandwidth argument (Section 4.2: id-based agreement
  removes the leader's dissemination bottleneck).
"""

from repro.cluster.builder import build_cluster
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec, run_experiment
from repro.experiments.common import jain_fairness

from benchmarks.conftest import quick_mode, report


def test_fairness_of_aqm_prioritisation(benchmark):
    """Run IDEM under sustained 4x overload across several AQM time
    slices and measure Jain's fairness index over per-client successes."""

    def run():
        # Fairness comes from the rotating prioritisation: the run must
        # cover at least one full rotation (#groups x 2 s slices).
        clients = 100 if quick_mode() else 200
        groups = clients // 50
        duration = groups * 2.0 + 0.75
        cluster = build_cluster(
            "idem",
            clients,
            seed=5,
            stop_time=duration,
            window_start=0.5,
            window_end=duration,
        )
        cluster.run_until(duration)
        return cluster

    cluster = benchmark.pedantic(run, rounds=1, iterations=1)
    successes = [client.successes for client in cluster.clients]
    rejections = [client.rejections for client in cluster.clients]
    success_fairness = jain_fairness([float(s) for s in successes])
    lines = [
        "Fairness under 4x overload (Jain's index, 1.0 = perfectly fair)",
        f"  successes : {success_fairness:.3f} "
        f"(min {min(successes)}, max {max(successes)})",
        f"  rejections: {jain_fairness([float(r) for r in rejections]):.3f} "
        f"(min {min(rejections)}, max {max(rejections)})",
    ]
    report("fairness", "\n".join(lines))
    # Every client made progress and shares are even.
    assert min(successes) > 0
    assert success_fairness > 0.9


def test_multileader_integration(benchmark):
    """The related-work claim: collaborative rejection carries over to a
    multi-leader protocol.  The Mencius-style variant must (1) spread
    proposing and replying across all replicas, (2) keep the latency
    plateau under overload, and (3) keep rejecting through a crash."""

    def run():
        duration = 2.0 if quick_mode() else 4.0
        cluster = build_cluster(
            "idem-multileader",
            200,
            seed=4,
            stop_time=duration,
            window_start=0.5,
            window_end=duration,
        )
        cluster.run_until(duration)
        from repro.experiments.fig10_replica_crash import measure_timeline

        crash = measure_timeline(
            "idem-multileader", 150, "follower", 6.5, 2.5, seed=4
        )
        return cluster, crash

    cluster, crash = benchmark.pedantic(run, rounds=1, iterations=1)
    proposals = [replica.stats["proposals"] for replica in cluster.replicas]
    replies = [replica.stats["replies_sent"] for replica in cluster.replicas]
    latency = cluster.metrics.latency_summary()
    report(
        "multileader",
        "Multi-leader IDEM under 4x overload\n"
        f"  proposals per replica: {proposals}\n"
        f"  replies per replica  : {replies}\n"
        f"  throughput {cluster.metrics.throughput() / 1e3:.1f}k req/s @ "
        f"{latency.mean * 1e3:.2f} ms, rejects "
        f"{cluster.metrics.reject_throughput():.0f}/s\n"
        f"  crash: reject gap {crash.reject_downtime:.2f} s, post tput "
        f"{crash.post_throughput / 1e3:.1f}k req/s",
    )
    # (1) no single proposer / responder
    assert min(proposals) > 0 and max(proposals) < 2 * min(proposals)
    assert min(replies) > 0
    # (2) the plateau survives the ordering change
    assert latency.mean < 2.0e-3
    assert cluster.metrics.reject_throughput() > 0
    # (3) rejection continuity across a crash
    assert crash.reject_downtime < 0.5
    assert crash.post_throughput > 0.5 * crash.pre_throughput


def test_leader_link_bottleneck(benchmark):
    """Constrain every node's egress link and compare throughput loss:
    the full-request protocols lose far more than IDEM."""

    def measure(system, bandwidth):
        profile = ClusterProfile(egress_bandwidth=bandwidth)
        result = run_experiment(
            RunSpec(
                system=system,
                clients=75,
                duration=1.0,
                warmup=0.3,
                seed=1,
                profile=profile,
            )
        )
        return result.throughput

    def run():
        data = {}
        for system in ("idem", "paxos", "bftsmart"):
            free = measure(system, None)
            tight = measure(system, 40e6)  # ~a third of a 1 Gbit/s link
            data[system] = (free, tight)
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Throughput with unconstrained vs 40 MB/s egress links"]
    losses = {}
    for system, (free, tight) in data.items():
        losses[system] = 1.0 - tight / free
        lines.append(
            f"  {system:9s}: {free / 1e3:5.1f}k -> {tight / 1e3:5.1f}k req/s "
            f"({100 * losses[system]:.0f}% loss)"
        )
    report("leader_link", "\n".join(lines))
    assert losses["paxos"] > 0.2
    assert losses["bftsmart"] > 0.2
    assert losses["idem"] < losses["paxos"] / 2

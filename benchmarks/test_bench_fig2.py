"""Figure 2 benchmark: existing protocols' two service tiers.

Paper claims (Section 3.1): below saturation Paxos offers low, stable
latency (the good tier); past it, latency escalates with offered load
(the bad tier).
"""

from repro.experiments import fig2_existing_protocols as fig2

from benchmarks.conftest import quick_mode, report


def test_fig2_existing_protocols_under_load(benchmark):
    data = benchmark.pedantic(
        lambda: fig2.run(quick=quick_mode()), rounds=1, iterations=1
    )
    report("fig2", fig2.render(data))

    points = data.points
    knee = data.saturation_point()
    heaviest = points[-1]
    lightest = points[0]

    # Good tier: latency under light load is low and near the knee's.
    assert lightest.latency_ms < 1.5
    assert lightest.latency_ms <= knee.latency_ms * 1.5
    # Bad tier: at the heaviest load, latency has escalated by multiples.
    assert heaviest.latency_ms > 3.0 * knee.latency_ms
    # Throughput saturates: the heaviest point gains almost nothing.
    assert heaviest.throughput <= knee.throughput * 1.05

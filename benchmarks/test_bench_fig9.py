"""Figure 9 benchmark: IDEM under disruptive conditions.

Paper claims (Section 7.6):

* Misconfigured threshold (RT=100, above what the cluster can handle):
  latency climbs past the healthy plateau before rejection slows the
  growth — but there is no Paxos-style explosion.
* Extreme load (up to 14x): throughput degrades gracefully (≈55% of
  peak at 14x there) while latency stays low, because most clients are
  rejected quickly and back off.
"""

from repro.experiments import fig9_disruptive as fig9

from benchmarks.conftest import quick_mode, report


def test_fig9_disruptive_conditions(benchmark):
    data = benchmark.pedantic(
        lambda: fig9.run(quick=quick_mode()), rounds=1, iterations=1
    )
    report("fig9", fig9.render(data))

    # 9a: the misconfigured threshold costs latency — the system runs
    # past its healthy plateau before rejection bites...
    base = data.misconfigured[0]
    worst = max(point.latency_ms for point in data.misconfigured)
    assert worst > 1.3 * base.latency_ms
    # ...but throughput never collapses (no metastable failure): the
    # system keeps serving at its peak rate throughout.
    peak = max(point.throughput for point in data.misconfigured)
    assert min(point.throughput for point in data.misconfigured) > 0.8 * peak
    # Rejection does activate once the load is high enough.
    heavy = data.misconfigured[-1]
    assert heavy.reject_throughput > 0
    # NOTE: the paper measured a stronger arrest (latency held near
    # 2 ms between 4x and 6x).  In this reproduction the leader's CPU
    # queue dominates once RT exceeds the sustainable active level, so
    # latency keeps growing with load, though without collapse; see
    # EXPERIMENTS.md for the discussion of this deviation.

    # 9b: graceful degradation under extreme load.
    final = data.extreme_final()
    peak = data.extreme_peak_throughput()
    assert final.throughput > 0.4 * peak
    assert final.latency_ms < 2.0
    # Heavier load -> no latency explosion anywhere on the curve.
    assert max(point.latency_ms for point in data.extreme) < 2.0
    # The last point is the heaviest and rejects substantially.
    assert final.reject_share > 0.05

"""Figure 7 benchmark: reject behaviour in IDEM under increasing load.

Paper claims (Section 7.3):

* Reject latency is stable across overload levels (1.3-1.5 ms there,
  i.e. the same range as a timely reply) even at 8x the baseline load.
* Rejects stay a small share of total operations: <3% in moderate
  overload, around 10% at a client-load factor of 8 — because rejected
  clients back off and relieve the system.
"""

from repro.experiments import fig7_reject_behavior as fig7

from benchmarks.conftest import quick_mode, report


def test_fig7_reject_behavior(benchmark):
    data = benchmark.pedantic(
        lambda: fig7.run(quick=quick_mode()), rounds=1, iterations=1
    )
    report("fig7", fig7.render(data))

    rejecting = [p for p in data.points if p.reject_throughput > 0]
    assert rejecting, "overload must produce rejections"

    # Stability: reject latency varies little across overload levels.
    latencies = [p.reject_latency_ms for p in rejecting]
    assert max(latencies) < 2.5 * min(latencies)
    # Same range as a timely result (allowing the optimistic 5 ms grace
    # to skew the mean upward).
    for point in rejecting:
        assert point.reject_latency_ms < 5.0 * point.latency_ms

    # Reject share: moderate at 8x, small in moderate overload.
    heavy = data.point_at(8.0)
    assert 0.02 < heavy.reject_share < 0.25
    moderate = data.point_at(2.0)
    assert moderate.reject_share < 0.05

    # Reply latency stays on the plateau throughout.
    for point in data.points:
        assert point.latency_ms < 2.0

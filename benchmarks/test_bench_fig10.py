"""Figure 10 benchmark: replica crashes.

Paper claims (Section 7.7 / 7.8):

* Leader crash: IDEM pauses for the view change (≈1.5 s, mostly the
  timeout), then recovers with a modest penalty in the f+1 regime
  (−9% throughput, +45% latency there, latency still stable).
* Follower crash: no interruption for any IDEM variant.
* IDEM_noAQM is unstable in the overloaded f+1 regime — active queue
  management's unanimity nudge is what keeps the reduced group useful.
* Figure 10d: IDEM delivers rejections continuously through a leader
  crash; Paxos_LBR's rejections stop for seconds (view change + client
  failover, ≈4 s there).
"""

from repro.experiments import fig10_replica_crash as fig10

from benchmarks.conftest import quick_mode, report


def test_fig10_replica_crashes(benchmark):
    quick = quick_mode()
    data = benchmark.pedantic(lambda: fig10.run(quick=quick), rounds=1, iterations=1)
    report("fig10", fig10.render(data))

    overload = 100

    # -- leader crash, IDEM, overload ---------------------------------
    idem_leader = data.find("idem", overload, "leader")
    # The outage is the view change: dominated by the 1.4 s timeout.
    assert 0.5 < idem_leader.service_gap < 3.0
    # Recovery with a modest penalty in the f+1 regime.
    assert idem_leader.post_throughput > 0.6 * idem_leader.pre_throughput
    assert idem_leader.post_latency_ms < 2.5 * idem_leader.pre_latency_ms
    # Rejection never stops (collaborative overload prevention).
    assert idem_leader.reject_downtime < 0.5

    # -- noAQM is worse in the same scenario ---------------------------
    # The paper's Figure 10c shows heavy instability; in this
    # reproduction the effect is a consistent post-crash penalty in
    # both throughput and latency (the deterministic substrate keeps
    # replicas' load views more correlated than a real OS would).
    noaqm_leader = data.find("idem-noaqm", overload, "leader")
    assert noaqm_leader.post_throughput < idem_leader.post_throughput
    assert noaqm_leader.post_latency_ms > 1.15 * idem_leader.post_latency_ms

    if not quick:
        # -- follower crashes do not interrupt anything ----------------
        for system in ("idem", "idem-noaqm"):
            follower = data.find(system, overload, "follower")
            assert follower.service_gap < 0.5, system
        # Normal load: IDEM recovers essentially fully from either crash.
        idem_normal = data.find("idem", 50, "leader")
        assert idem_normal.post_throughput > 0.8 * idem_normal.pre_throughput

    # -- panel d: reject continuity, IDEM vs Paxos_LBR ----------------
    idem_d = data.find("idem", 150, "leader", panel_d=True)
    lbr_d = data.find("paxos-lbr", 150, "leader", panel_d=True)
    assert idem_d.reject_downtime < 0.5
    assert lbr_d.reject_downtime > 1.0
    assert lbr_d.reject_downtime > 4 * idem_d.reject_downtime

    if not quick:
        # A follower crash does not disturb Paxos_LBR's rejections at
        # all, and IDEM's only mildly (the grace-timeout effect).
        lbr_follower = data.find("paxos-lbr", 150, "follower", panel_d=True)
        assert lbr_follower.reject_downtime < 0.5
        idem_follower = data.find("idem", 150, "follower", panel_d=True)
        assert idem_follower.reject_downtime < 0.5

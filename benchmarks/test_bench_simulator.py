"""Microbenchmarks of the simulation substrate itself.

These are conventional pytest-benchmark measurements (multiple rounds)
of the hot paths that bound how much simulated traffic a wall-clock
second buys: event dispatch, processor jobs, the network send path and
a small end-to-end cluster slice.  They guard against performance
regressions that would silently make the experiment suite crawl.
"""

from repro.net.addresses import replica_address
from repro.net.latency import ConstantLatency
from repro.net.message import Message
from repro.net.network import Network, NetworkNode
from repro.sim.loop import EventLoop
from repro.sim.processor import Processor
from repro.sim.rng import RngRegistry


def test_event_loop_dispatch_rate(benchmark):
    def run():
        loop = EventLoop()
        for i in range(10_000):
            loop.call_at(i * 1e-6, _nothing)
        loop.run_until(1.0)
        return loop.dispatched_events

    dispatched = benchmark(run)
    assert dispatched == 10_000


def _nothing():
    pass


def test_processor_job_rate(benchmark):
    def run():
        loop = EventLoop()
        cpu = Processor(loop)
        for _ in range(10_000):
            cpu.submit(1e-6, _nothing)
        loop.run_until(1.0)
        return cpu.jobs_completed

    completed = benchmark(run)
    assert completed == 10_000


class _Sink(NetworkNode):
    def __init__(self, address):
        self.address = address
        self.received = 0

    def deliver(self, src, message):
        self.received += 1


class _Probe(Message):
    __slots__ = ()


def test_network_send_path(benchmark):
    def run():
        loop = EventLoop()
        network = Network(loop, RngRegistry(1), latency_model=ConstantLatency(1e-6))
        a, b = _Sink(replica_address(0)), _Sink(replica_address(1))
        network.attach(a)
        network.attach(b)
        message = _Probe()
        for _ in range(10_000):
            network.send(a.address, b.address, message)
        loop.run_until(1.0)
        return b.received

    received = benchmark(run)
    assert received == 10_000


def test_end_to_end_cluster_slice(benchmark):
    """A short IDEM slice: how much wall time 0.1 s of loaded cluster costs."""
    from repro.cluster.builder import build_cluster

    def run():
        cluster = build_cluster("idem", 20, seed=1, stop_time=0.1)
        cluster.run_until(0.1)
        return cluster.metrics.reply_counter.total()

    replies = benchmark(run)
    assert replies > 100

"""Figure 6 benchmark: the headline comparison under increasing load.

Paper claims (Section 7.2):

* Paxos and BFT-SMaRt perform poorly under overload — past their peak
  throughput, latency escalates drastically (>600% of normal at 4x).
* IDEM's latency plateaus once the rejection threshold is reached.
* Rejection costs nothing below the threshold: IDEM and IDEM_noPR only
  diverge after it.
"""

from repro.experiments import fig6_comparison as fig6

from benchmarks.conftest import quick_mode, report


def test_fig6_comparison_under_increasing_load(benchmark):
    data = benchmark.pedantic(
        lambda: fig6.run(quick=quick_mode()), rounds=1, iterations=1
    )
    report("fig6", fig6.render(data))

    # IDEM plateaus: latency at the heaviest load stays near the
    # saturation level.
    assert data.latency_at_max_load("idem") < 1.5 * data.latency_at_saturation("idem")

    # The unprotected systems explode.
    for system in ("idem-nopr", "paxos", "bftsmart"):
        assert data.latency_at_max_load(system) > 2.5 * data.latency_at_saturation(
            system
        ), system

    # Below-threshold overhead is negligible: IDEM's peak throughput is
    # close to IDEM_noPR's.
    assert data.max_throughput("idem") > 0.85 * data.max_throughput("idem-nopr")

    # The production-library baseline saturates below the lean Paxos.
    assert data.max_throughput("bftsmart") < data.max_throughput("paxos")

    # Everyone lands in the paper's throughput regime (tens of k req/s).
    for system in fig6.SYSTEMS:
        assert 20_000 < data.max_throughput(system) < 100_000, system


def test_fig6_idem_and_nopr_identical_below_threshold(benchmark):
    from repro.experiments import common

    def measure():
        idem = common.averaged_point("idem", 25, runs=2, duration=0.8, warmup=0.25)
        nopr = common.averaged_point(
            "idem-nopr", 25, runs=2, duration=0.8, warmup=0.25
        )
        return idem, nopr

    idem, nopr = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert abs(idem.throughput - nopr.throughput) / nopr.throughput < 0.02
    assert abs(idem.latency_ms - nopr.latency_ms) / nopr.latency_ms < 0.05
    assert idem.reject_throughput == 0

"""Table 1 benchmark: rejection-mechanism network overhead.

Paper claims (Section 7.4): for a fixed number of completed requests,
IDEM's total network traffic is indistinguishable from IDEM_noPR's
(run-to-run variation there was 2-3%) at medium load, high load and
overload — the forwarding optimisations and the low reject volume keep
the mechanism's traffic negligible.
"""

from repro.experiments import tab1_overhead as tab1

from benchmarks.conftest import quick_mode, report


def test_tab1_rejection_traffic_overhead(benchmark):
    data = benchmark.pedantic(
        lambda: tab1.run(quick=quick_mode()), rounds=1, iterations=1
    )
    report("tab1", tab1.render(data))

    for load_label, _clients in tab1.LOADS:
        idem = data.cell("idem", load_label)
        nopr = data.cell("idem-nopr", load_label)
        overhead = (
            idem.bytes_per_request - nopr.bytes_per_request
        ) / nopr.bytes_per_request
        # No visible difference: within 10% even under overload, where
        # rejected-and-resubmitted requests add their multicasts.
        assert abs(overhead) < 0.10, (load_label, overhead)

    # Below the threshold the two systems are byte-identical workloads.
    for label in ("medium (0.5x)", "high (1x)"):
        idem = data.cell("idem", label)
        nopr = data.cell("idem-nopr", label)
        assert abs(idem.bytes_per_request - nopr.bytes_per_request) < (
            0.03 * nopr.bytes_per_request
        )

    # Sanity: traffic per request lands in the paper's ballpark
    # (~3.2 KB/request -> ~3.2 GB per million).
    high = data.cell("idem", "high (1x)")
    assert 1.0 < high.projected_gb_per_million < 10.0

"""Figure 8 benchmark: the reject threshold trades throughput for latency.

Paper claims (Section 7.5): RT=50 and RT=75 both plateau, RT=75 with
more throughput at slightly higher latency; RT=20 restricts throughput
to roughly 2/3 of the maximum but pins latency near the floor; below
the threshold all configurations perform identically.
"""

from repro.experiments import fig8_threshold as fig8

from benchmarks.conftest import quick_mode, report


def test_fig8_reject_threshold_variation(benchmark):
    data = benchmark.pedantic(
        lambda: fig8.run(quick=quick_mode()), rounds=1, iterations=1
    )
    report("fig8", fig8.render(data))

    thresholds = sorted(data.curves)
    low, high = thresholds[0], thresholds[-1]

    # A higher threshold buys throughput...
    assert data.max_throughput(high) > data.max_throughput(low)
    # ...at a higher latency plateau.
    assert data.plateau_latency(high) > data.plateau_latency(low)

    # The conservative threshold still reaches a substantial fraction
    # of the maximum (paper: RT=20 gives ~65%).
    ratio = data.max_throughput(low) / data.max_throughput(high)
    assert 0.4 < ratio < 0.95

    # Every configuration plateaus rather than exploding.
    for threshold, points in data.curves.items():
        saturated = [p for p in points if p.reject_throughput > 0]
        if len(saturated) >= 2:
            assert saturated[-1].latency_ms < 1.6 * saturated[0].latency_ms, threshold

    # Below the threshold the curves coincide.
    lightest = {t: points[0] for t, points in data.curves.items()}
    latencies = [p.latency_ms for p in lightest.values()]
    assert max(latencies) < 1.1 * min(latencies)

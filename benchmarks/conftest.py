"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures or tables
(``pytest benchmarks/ --benchmark-only``), prints the series/rows the
paper reports, saves them under ``benchmarks/results/`` and asserts the
paper's *qualitative* claims (who wins, where the knee is, by what
factor) — absolute numbers are simulator-calibrated, not testbed
numbers.

Set ``REPRO_BENCH_QUICK=1`` for a coarse, fast pass, and
``REPRO_BENCH_CACHE=1`` to route every simulation run through the
campaign's content-addressed result cache (``benchmarks/results/cache``)
so repeated benchmark invocations are incremental — only runs whose
spec changed are re-simulated.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def quick_mode() -> bool:
    """Whether to run the scaled-down benchmark settings."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "")


def cache_mode() -> bool:
    """Whether to serve benchmark runs through the campaign cache."""
    return os.environ.get("REPRO_BENCH_CACHE", "0") not in ("0", "")


@pytest.fixture(scope="session", autouse=True)
def campaign_result_cache():
    """Opt-in (``REPRO_BENCH_CACHE=1``) cache-through execution.

    Cache hits are byte-identical to fresh runs (every job is a
    deterministic function of its content-addressed spec), so cached
    benchmark reruns assert exactly what a cold run would.
    """
    if not cache_mode():
        yield None
        return
    from repro.campaign import CachingExecutor, ResultCache
    from repro.experiments import common

    executor = CachingExecutor(ResultCache(RESULTS_DIR / "cache"))
    with common.use_executor(executor):
        yield executor


def report(name: str, text: str) -> None:
    """Print a rendered figure/table and persist it for later reading."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    print(f"[saved to {path}]")

"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures or tables
(``pytest benchmarks/ --benchmark-only``), prints the series/rows the
paper reports, saves them under ``benchmarks/results/`` and asserts the
paper's *qualitative* claims (who wins, where the knee is, by what
factor) — absolute numbers are simulator-calibrated, not testbed
numbers.

Set ``REPRO_BENCH_QUICK=1`` for a coarse, fast pass.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def quick_mode() -> bool:
    """Whether to run the scaled-down benchmark settings."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "")


def report(name: str, text: str) -> None:
    """Print a rendered figure/table and persist it for later reading."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    print(f"[saved to {path}]")

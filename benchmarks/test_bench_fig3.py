"""Figure 3 benchmark: leader-based rejection dies with the leader.

Paper claims (Section 3.3): after a leader crash, Paxos_LBR delivers
neither results nor rejections until the view change completes and
clients fail over — a rejection outage of several seconds.
"""

from repro.experiments import fig3_lbr_crash as fig3

from benchmarks.conftest import quick_mode, report


def test_fig3_lbr_leader_crash_silences_rejection(benchmark):
    data = benchmark.pedantic(
        lambda: fig3.run(quick=quick_mode()), rounds=1, iterations=1
    )
    report("fig3", fig3.render(data))

    # Rejections were flowing before the crash...
    assert data.pre_crash_reject_rate > 100
    # ...went silent for a substantial period (paper: ~4 s; here the
    # view-change timeout plus client failover dominates)...
    assert data.reject_downtime > 1.0
    # ...and resumed after recovery.
    assert data.post_crash_reject_rate > 100

#!/usr/bin/env python3
"""Live data feed: web clients that must distinguish short from long delays.

The Section 2.3 "live data" scenario: chat/newsfeed frontends mask short
service delays by showing cached data, but must show a loading state for
long ones.  What ruins the experience is *not knowing which case you are
in*.  With IDEM, a frontend learns within a couple of milliseconds that
the service is overloaded (rejection) and immediately renders the cached
view; with a traditional protocol it simply waits, and under overload
the wait grows unboundedly.

We model a traffic spike (8x normal) and measure, for each system, the
distribution of "user-visible decision time": how long until the
frontend either has fresh data or *knows* it must fall back to cache.

Run:  python examples/live_data_feed.py
"""

from repro import build_cluster

SPIKE_CLIENTS = 400  # 8x the 50-client saturation point
RUN_SECONDS = 3.0


class FrontendCache:
    """Counts how often frontends fell back to cached content."""

    def __init__(self) -> None:
        self.stale_renders = 0

    def fallback_for(self, cid: int):
        def render_cached(command) -> None:
            self.stale_renders += 1

        return render_cached


def run_spike(system: str) -> dict:
    cache = FrontendCache()
    cluster = build_cluster(
        system,
        SPIKE_CLIENTS,
        seed=3,
        stop_time=RUN_SECONDS,
        window_start=0.5,
        window_end=RUN_SECONDS,
        fallback_factory=cache.fallback_for,
    )
    cluster.run_until(RUN_SECONDS)
    metrics = cluster.metrics
    # Decision time: latency of fresh data OR of a definitive rejection.
    fresh = metrics.reply_latency.samples
    knows_stale = metrics.reject_latency.samples
    decisions = sorted(fresh + knows_stale)
    p50 = decisions[len(decisions) // 2] if decisions else 0.0
    p99 = decisions[int(0.99 * (len(decisions) - 1))] if decisions else 0.0
    return {
        "fresh": len(fresh),
        "stale": len(knows_stale),
        "stale_renders": cache.stale_renders,
        "decision_p50_ms": p50 * 1e3,
        "decision_p99_ms": p99 * 1e3,
        "fresh_mean_ms": metrics.latency_summary().mean * 1e3,
        "timeouts": metrics.timeouts,
    }


def main() -> None:
    print(f"Traffic spike: {SPIKE_CLIENTS} concurrent frontends "
          f"(8x the saturation point)\n")
    print(f"{'system':10s} {'fresh views':>11s} {'cached views':>12s} "
          f"{'decide p50':>10s} {'decide p99':>10s} {'timeouts':>8s}")
    for system in ("idem", "idem-nopr", "paxos"):
        stats = run_spike(system)
        print(
            f"{system:10s} {stats['fresh']:11d} {stats['stale']:12d} "
            f"{stats['decision_p50_ms']:8.2f}ms {stats['decision_p99_ms']:8.2f}ms "
            f"{stats['timeouts']:8d}"
        )
    print()
    print("The p99 column is the user experience: IDEM frontends always know")
    print("within a few milliseconds whether to render fresh or cached data;")
    print("without rejection the tail of that decision time tracks the queue.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Load spike with open-loop traffic: how long until the service recovers?

Closed-loop benchmark clients slow down when the service does — real
edge populations don't.  This example drives the replicated service with
an *open-loop* (Poisson) arrival stream: a base rate just below
capacity, then a 2-second spike at roughly twice capacity, then back to
base.  The interesting part is what happens *after* the spike:

* Without proactive rejection, the backlog built during the spike keeps
  latency elevated long after the offered load returned to normal — the
  pattern behind metastable failures (every request is served, too
  late to matter).
* IDEM sheds the excess during the spike (clients fall back locally)
  and is back at normal latency within a couple hundred milliseconds.

Run:  python examples/metastable_spike.py
"""

from repro import build_cluster
from repro.workload.open_loop import OpenLoopDriver, spike_rate

# Base rate sits below AQM's early-rejection band (60% of RT=50 active
# slots ~= 35k req/s at ~0.85 ms), so a healthy IDEM rejects nothing.
BASE_RATE = 30_000.0
SPIKE_RATE = 90_000.0
SPIKE_START = 2.0
SPIKE_SECONDS = 2.0
RUN_SECONDS = 9.0
POOL = 2_000  # enough virtual clients that arrivals are never starved


def run(system: str) -> dict:
    cluster = build_cluster(
        system,
        POOL,
        seed=11,
        stop_time=RUN_SECONDS,
        start_clients=False,
        bucket_width=0.25,
    )
    driver = OpenLoopDriver(
        cluster.loop,
        cluster.clients,
        spike_rate(BASE_RATE, SPIKE_RATE, SPIKE_START, SPIKE_SECONDS),
        cluster.rng.stream("arrivals"),
        stop_time=RUN_SECONDS,
    )
    driver.start(at=0.0)
    cluster.run_until(RUN_SECONDS)
    metrics = cluster.metrics
    timeline = metrics.latency_timeline()
    spike_end = SPIKE_START + SPIKE_SECONDS
    baseline = _mean(timeline, 0.5, SPIKE_START)
    recovery_at = None
    for time, latency in timeline:
        if time >= spike_end and latency <= 2.0 * baseline:
            recovery_at = time
            break
    return {
        "timeline": timeline,
        "baseline_ms": baseline * 1e3,
        "spike_peak_ms": max(
            (lat for t, lat in timeline if SPIKE_START <= t < spike_end + 1.0),
            default=0.0,
        ) * 1e3,
        "recovery_seconds": (
            None if recovery_at is None else max(0.0, recovery_at - spike_end)
        ),
        "served": metrics.reply_counter.total(),
        "rejected": metrics.reject_counter.total(),
        "shed": driver.shed_arrivals,
        "timeouts": metrics.timeouts,
    }


def _mean(series, start, end):
    values = [v for t, v in series if start <= t < end]
    return sum(values) / len(values) if values else 0.0


def main() -> None:
    print(
        f"Open-loop spike: {BASE_RATE / 1e3:.0f}k req/s baseline, "
        f"{SPIKE_RATE / 1e3:.0f}k req/s for {SPIKE_SECONDS:.0f}s at "
        f"t={SPIKE_START:.0f}s\n"
    )
    for system in ("idem", "idem-nopr"):
        stats = run(system)
        recovery = (
            "never (within the run)"
            if stats["recovery_seconds"] is None
            else f"{stats['recovery_seconds']:.2f} s after the spike"
        )
        print(f"[{system}]")
        print(f"  baseline latency        {stats['baseline_ms']:.2f} ms")
        print(f"  worst latency           {stats['spike_peak_ms']:.2f} ms")
        print(f"  back to ~baseline       {recovery}")
        print(f"  served / rejected       {stats['served']} / {stats['rejected']}")
        print(f"  timeouts (wasted work)  {stats['timeouts']}")
        print()
    print("IDEM converts the spike into explicit rejections and recovers as")
    print("soon as the spike ends; without rejection the backlog keeps the")
    print("service in a degraded state well past the overload itself.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Robot warehouse: semi-autonomous robots with a sensor fallback.

The scenario from Section 2.3 of the paper: robots query a replicated
route-planning service.  A timely answer routes the robot optimally;
when the service is overloaded (or a replica crashes) the robot falls
back to Lidar-based local navigation, which keeps it moving but on a
worse route.

The experiment drives a fleet of robots through a shift with periodic
order bursts (4x the base fleet activity) and a mid-shift leader crash,
once on IDEM and once on IDEM with rejection disabled.  The quality
metric is simple: how many navigation decisions were made with a fresh
service answer vs. the sensor fallback vs. no answer at all (a stale
timeout — the worst case, the robot stalls).

Run:  python examples/robot_warehouse.py
"""

from repro import FaultSchedule, build_cluster
from repro.workload.schedule import BurstSchedule

SHIFT_SECONDS = 12.0
CRASH_AT = 6.0
BASE_ROBOTS = 30
BURST_ROBOTS = 170  # a wave of incoming orders activates idle robots


class RobotFleet:
    """Aggregates fallback activations across all robots."""

    def __init__(self) -> None:
        self.fallback_activations = 0

    def fallback_for(self, robot_id: int):
        def navigate_locally(command) -> None:
            # Lidar navigation: the robot keeps moving without the
            # coordinator's globally optimal route.
            self.fallback_activations += 1

        return navigate_locally


def run_shift(system: str) -> dict:
    fleet = RobotFleet()
    schedule = BurstSchedule(
        base=BASE_ROBOTS, burst=BURST_ROBOTS, period=4.0, burst_duration=1.5
    )
    cluster = build_cluster(
        system,
        schedule.max_clients(),
        seed=7,
        schedule=schedule,
        stop_time=SHIFT_SECONDS,
        window_start=0.5,
        window_end=SHIFT_SECONDS,
        fallback_factory=fleet.fallback_for,
    )
    FaultSchedule().crash_leader(CRASH_AT).install(cluster)
    cluster.run_until(SHIFT_SECONDS)
    routed = sum(robot.successes for robot in cluster.clients)
    rejected = sum(robot.rejections for robot in cluster.clients)
    stalled = sum(robot.timeouts for robot in cluster.clients)
    latency = cluster.metrics.latency_summary()
    reject_latency = cluster.metrics.reject_latency_summary()
    return {
        "routed": routed,
        "fallbacks": fleet.fallback_activations,
        "rejected": rejected,
        "stalled": stalled,
        "latency_ms": latency.mean * 1e3,
        "p99_ms": latency.p99 * 1e3,
        "reject_latency_ms": reject_latency.mean * 1e3,
    }


def main() -> None:
    print(f"Warehouse shift: {BASE_ROBOTS} robots, order bursts of "
          f"+{BURST_ROBOTS}, leader crash at t={CRASH_AT:.0f}s\n")
    for system in ("idem", "idem-nopr"):
        stats = run_shift(system)
        decisions = stats["routed"] + stats["rejected"] + stats["stalled"]
        print(f"[{system}]")
        print(f"  navigation decisions        {decisions}")
        print(f"  optimally routed            {stats['routed']} "
              f"({100 * stats['routed'] / decisions:.1f}%)")
        print(f"  sensor fallback (rejected)  {stats['rejected']} "
              f"(notified after {stats['reject_latency_ms']:.2f} ms on average)")
        print(f"  stalled (no answer at all)  {stats['stalled']}")
        print(f"  route latency               {stats['latency_ms']:.2f} ms "
              f"(p99 {stats['p99_ms']:.2f} ms)")
        print()
    print("With IDEM, a robot that cannot be served learns it within about a")
    print("millisecond and switches to Lidar navigation; without proactive")
    print("rejection the burst drives route latency up for the whole fleet —")
    print("stale routes are wrong routes.")


if __name__ == "__main__":
    main()

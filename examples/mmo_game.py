#!/usr/bin/env python3
"""MMO game night: login waves, movement prediction, and a server crash.

The Section 2.3 gaming scenario: the replicated service knows the true
positions of all players; clients can bridge service gaps by *predicting*
movement locally, at the cost of accuracy (rubber-banding) and extra
client CPU.  Player counts fluctuate violently — login waves at the
start of an event multiply the load — and with many thousands of
players, someone's hardware is always failing.

This example simulates a game night: a base population, two login
waves, and a leader-replica crash right in the middle of the second
wave (the worst possible moment).  It compares IDEM against Paxos with
leader-based rejection (Paxos_LBR), the strawman from Section 3.3 —
showing that LBR players get *no* feedback at all while the crashed
leader's role is being reassigned, whereas IDEM keeps telling players
to predict locally, with millisecond notice, throughout the outage.

Run:  python examples/mmo_game.py
"""

from repro import FaultSchedule, build_cluster
from repro.workload.schedule import StepSchedule

GAME_SECONDS = 12.0
CRASH_AT = 7.0
SCHEDULE = StepSchedule(
    (
        (0.0, 40),  # quiet lobby
        (3.0, 160),  # first login wave: event starts
        (6.0, 320),  # second wave: prime time, then the leader dies
    )
)


class PredictionEngine:
    """Counts movement predictions (the client-side fallback)."""

    def __init__(self) -> None:
        self.predictions = 0

    def fallback_for(self, player_id: int):
        def predict_movement(command) -> None:
            self.predictions += 1

        return predict_movement


def play(system: str) -> dict:
    engine = PredictionEngine()
    cluster = build_cluster(
        system,
        SCHEDULE.max_clients(),
        seed=42,
        schedule=SCHEDULE,
        stop_time=GAME_SECONDS,
        window_start=0.5,
        window_end=GAME_SECONDS,
        fallback_factory=engine.fallback_for,
        bucket_width=0.5,
    )
    FaultSchedule().crash_leader(CRASH_AT).install(cluster)
    cluster.run_until(GAME_SECONDS)
    metrics = cluster.metrics
    # The outage as players feel it: the longest stretch without any
    # feedback (neither fresh state nor a "predict locally" notice).
    feedback_gap = metrics.reject_gaps.longest_gap_overlapping(
        CRASH_AT, until=GAME_SECONDS
    )
    return {
        "updates": sum(player.successes for player in cluster.clients),
        "predictions": engine.predictions,
        "timeouts": metrics.timeouts,
        "update_ms": metrics.latency_summary().mean * 1e3,
        "notice_ms": metrics.reject_latency_summary().mean * 1e3,
        "crash_feedback_gap_s": feedback_gap,
    }


def main() -> None:
    print("Game night: login waves 40 -> 160 -> 320 players, leader crash "
          f"at t={CRASH_AT:.0f}s\n")
    for system in ("idem", "paxos-lbr"):
        stats = play(system)
        print(f"[{system}]")
        print(f"  world-state updates served   {stats['updates']}")
        print(f"  movement predictions         {stats['predictions']} "
              f"(notified after {stats['notice_ms']:.2f} ms on average)")
        print(f"  stalls (no feedback at all)  {stats['timeouts']}")
        print(f"  update latency               {stats['update_ms']:.2f} ms")
        print(f"  feedback outage at the crash {stats['crash_feedback_gap_s']:.2f} s")
        print()
    print("Both systems shed load by rejecting, but only IDEM keeps doing so")
    print("while the leader is down: the Paxos_LBR feedback outage spans the")
    print("whole view change plus client failover (Figures 3 and 10d).")


if __name__ == "__main__":
    main()

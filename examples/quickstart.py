#!/usr/bin/env python3
"""Quickstart: run IDEM and see proactive rejection cap tail latency.

Builds a 3-replica IDEM cluster serving a YCSB-style key-value store,
drives it with closed-loop clients at three load levels, and contrasts
the result with the same protocol with rejection disabled (IDEM_noPR).
Below saturation the two behave identically; past it, IDEM's latency
plateaus while IDEM_noPR's grows with every extra client.

Run:  python examples/quickstart.py
"""

from repro import RunSpec, run_experiment


def main() -> None:
    print("IDEM quickstart — 3 replicas, update-heavy KV workload")
    print(f"{'system':10s} {'clients':>7s} {'throughput':>11s} {'latency':>9s} "
          f"{'p99':>8s} {'rejects/s':>9s}")
    for system in ("idem", "idem-nopr"):
        for clients in (25, 50, 100, 200):
            result = run_experiment(
                RunSpec(system=system, clients=clients, duration=1.0, warmup=0.3)
            )
            print(
                f"{system:10s} {clients:7d} "
                f"{result.throughput_kops:8.1f}k/s "
                f"{result.latency_ms:7.2f}ms "
                f"{result.latency.p99 * 1e3:6.2f}ms "
                f"{result.reject_throughput:9.0f}"
            )
        print()
    print("Note the plateau: past ~50 clients IDEM rejects the excess and its")
    print("latency stays flat, while idem-nopr roughly doubles latency per")
    print("doubling of clients — the two-tier behaviour of Figure 2/6.")


if __name__ == "__main__":
    main()

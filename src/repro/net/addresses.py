"""Node addressing.

Addresses carry a *kind* ("replica" or "client") and an index.  The kind
matters for traffic accounting: Table 1 of the paper separates traffic
"both of clients and between replicas".
"""

from __future__ import annotations

from typing import NamedTuple

REPLICA = "replica"
CLIENT = "client"


class Address(NamedTuple):
    """A network endpoint identifier: ``(kind, index)``."""

    kind: str
    index: int

    def __str__(self) -> str:
        return f"{self.kind}-{self.index}"


def replica_address(index: int) -> Address:
    """The address of replica number ``index``."""
    return Address(REPLICA, index)


def client_address(index: int) -> Address:
    """The address of client number ``index``."""
    return Address(CLIENT, index)

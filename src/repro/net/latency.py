"""One-way network latency models.

The default cluster profile uses a log-normal distribution, which is the
standard shape for datacenter RTTs: a sharp mode with a long but light
tail.  Latency models are pure samplers — they hold no state beyond
their parameters and draw from the RNG stream they are given.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Samples one-way message latencies in seconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one latency sample."""

    @abstractmethod
    def mean(self) -> float:
        """The distribution's mean, used for sanity checks and docs."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` seconds (useful in tests)."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value}")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` seconds."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class LogNormalLatency(LatencyModel):
    """Log-normal latency with a given median and dispersion.

    ``median`` is the distribution's 50th percentile in seconds;
    ``sigma`` controls the heaviness of the tail (0.2–0.5 is typical of
    an uncongested datacenter network).  An optional ``floor`` models
    the minimum wire/switching delay.
    """

    def __init__(self, median: float, sigma: float = 0.3, floor: float = 0.0):
        if median <= 0:
            raise ValueError(f"median latency must be positive, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        return self.floor + rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        return self.floor + math.exp(self._mu + self.sigma**2 / 2.0)

"""Byte-accurate traffic accounting.

Reproduces the methodology of the paper's Table 1: every message placed
on the wire is attributed to a flow class (client→replica,
replica→client, replica→replica) and to its message type, so experiments
can report both totals and breakdowns.
"""

from __future__ import annotations

from repro.net.addresses import Address, CLIENT, REPLICA


class TrafficMeter:
    """Accumulates wire bytes by flow class and message type."""

    def __init__(self) -> None:
        self.total_bytes = 0
        self.total_messages = 0
        self._by_flow: dict[tuple[str, str], int] = {}
        self._by_type: dict[str, int] = {}

    def record(self, src: Address, dst: Address, type_name: str, size: int) -> None:
        """Account for one message of ``size`` bytes from ``src`` to ``dst``."""
        self.total_bytes += size
        self.total_messages += 1
        flow = (src.kind, dst.kind)
        self._by_flow[flow] = self._by_flow.get(flow, 0) + size
        self._by_type[type_name] = self._by_type.get(type_name, 0) + size

    def flow_bytes(self, src_kind: str, dst_kind: str) -> int:
        """Bytes sent on the given flow class so far."""
        return self._by_flow.get((src_kind, dst_kind), 0)

    @property
    def client_bytes(self) -> int:
        """Bytes on client↔replica flows (both directions)."""
        return self.flow_bytes(CLIENT, REPLICA) + self.flow_bytes(REPLICA, CLIENT)

    @property
    def replica_bytes(self) -> int:
        """Bytes on replica↔replica flows."""
        return self.flow_bytes(REPLICA, REPLICA)

    def by_type(self) -> dict[str, int]:
        """Bytes per message type, for overhead breakdowns."""
        return dict(self._by_type)

    def snapshot(self) -> dict[str, int]:
        """A small dictionary summary used by experiment reports."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "client_bytes": self.client_bytes,
            "replica_bytes": self.replica_bytes,
        }

"""The network fabric connecting simulated nodes.

Implements the system model of Section 2.1: fair-loss point-to-point
links.  Messages may be dropped (loss probability, partitions) but the
fabric never duplicates or corrupts them; retransmission is the job of
the protocol layer.  Crashed nodes silently drop everything.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.net.addresses import Address, CLIENT
from repro.net.latency import LatencyModel, LogNormalLatency
from repro.net.message import Message
from repro.net.trace import message_rids
from repro.net.traffic import TrafficMeter
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry


class NetworkNode(ABC):
    """Anything that can be attached to the network and receive messages."""

    address: Address

    @abstractmethod
    def deliver(self, src: Address, message: Message) -> None:
        """Called by the network when a message arrives at this node."""


class Network:
    """A full mesh of fair-loss point-to-point links.

    One instance connects all replicas and clients of an experiment.
    Latency is drawn per message from ``latency_model``; loss is an
    independent coin flip per message.  Partitions are directed pairs of
    addresses between which delivery is suppressed; crashing a node
    suppresses all its traffic in both directions.
    """

    def __init__(
        self,
        loop: EventLoop,
        rng: RngRegistry,
        latency_model: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        egress_bandwidth: Optional[float] = None,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {loss_probability}")
        if egress_bandwidth is not None and egress_bandwidth <= 0:
            raise ValueError(
                f"egress bandwidth must be positive, got {egress_bandwidth}"
            )
        self._loop = loop
        self._latency_rng = rng.stream("net.latency")
        self._loss_rng = rng.stream("net.loss")
        self.latency_model = latency_model or LogNormalLatency(median=100e-6, sigma=0.25)
        self.loss_probability = loss_probability
        # Optional per-node egress link capacity in bytes/second.  Each
        # sender serialises its outgoing messages onto its link; a
        # saturated link delays everything behind it — the leader-link
        # bottleneck that motivates id-based agreement (paper Section
        # 4.2, citing S-Paxos).  ``None`` disables serialisation delay.
        self.egress_bandwidth = egress_bandwidth
        self._egress_free_at: dict[Address, float] = {}
        self.traffic = TrafficMeter()
        # Optional observer recording every sent message (see
        # repro.net.trace.MessageTracer).
        self.tracer = None
        # Optional catch-all for client-kind addresses that have no
        # attached node: an aggregate population node (repro.population)
        # fabricates per-virtual-client source addresses, and replies to
        # them all land on the one router.  ``None`` (the default)
        # preserves the classic drop-if-unattached behaviour exactly.
        self.client_router: Optional[NetworkNode] = None
        self._nodes: dict[Address, NetworkNode] = {}
        self._crashed: set[Address] = set()
        self._partitions: set[tuple[Address, Address]] = set()
        # Gray failures: per-address multiplier applied to the sampled
        # latency of every message the address sends or receives (a slow
        # NIC/link rather than a dead one).
        self._latency_scale: dict[Address, float] = {}
        self.dropped_messages = 0

    def attach(self, node: NetworkNode) -> None:
        """Register a node under its address; the address must be unused."""
        if node.address in self._nodes:
            raise ValueError(f"address already attached: {node.address}")
        self._nodes[node.address] = node

    def detach(self, address: Address) -> None:
        """Remove a node from the network, purging all per-address state.

        The address may be reused later (a recovered replica re-attaches
        under the same address), so everything keyed by it — crash
        marking, egress-link backlog, partitions and latency degradation
        — must go with the node, or the newcomer would inherit a dead
        node's fate.
        """
        self._nodes.pop(address, None)
        self._crashed.discard(address)
        self._egress_free_at.pop(address, None)
        self._latency_scale.pop(address, None)
        # Deterministic sweep order (DET005): partition pairs contain
        # str-keyed Addresses, so raw set order varies with the hash seed.
        stale = [
            pair
            for pair in sorted(self._partitions, key=lambda pair: (pair[0], pair[1]))
            if address in pair
        ]
        for pair in stale:
            self._partitions.discard(pair)

    def node(self, address: Address) -> NetworkNode:
        """Look up the node attached at ``address``."""
        return self._nodes[address]

    def crash(self, address: Address) -> None:
        """Mark a node crashed: it no longer sends or receives anything."""
        self._crashed.add(address)

    def recover(self, address: Address) -> None:
        """Undo a crash (used for recovery experiments)."""
        self._crashed.discard(address)

    def is_crashed(self, address: Address) -> bool:
        """Whether the node at ``address`` is currently crashed."""
        return address in self._crashed

    def set_latency_scale(self, address: Address, factor: float) -> None:
        """Multiply the latency of all traffic to/from ``address`` by ``factor``.

        Models a gray failure: the node is alive but its link is
        degraded.  A factor of 1.0 clears the degradation.
        """
        if factor <= 0:
            raise ValueError(f"latency scale must be positive, got {factor}")
        if factor == 1.0:
            self._latency_scale.pop(address, None)
        else:
            self._latency_scale[address] = factor

    def clear_latency_scale(self, address: Address) -> None:
        """Remove any latency degradation on ``address``.  Idempotent."""
        self._latency_scale.pop(address, None)

    def latency_scale(self, address: Address) -> float:
        """The current latency multiplier on ``address`` (1.0 = healthy)."""
        return self._latency_scale.get(address, 1.0)

    def partition(self, a: Address, b: Address) -> None:
        """Block delivery between ``a`` and ``b`` in both directions."""
        self._partitions.add((a, b))
        self._partitions.add((b, a))

    def heal(self, a: Address, b: Address) -> None:
        """Remove a partition between ``a`` and ``b``."""
        self._partitions.discard((a, b))
        self._partitions.discard((b, a))

    def send(self, src: Address, dst: Address, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst`` over the fabric.

        Traffic is metered at send time whenever the sender is alive
        (bytes hit the wire even if the message is later lost).  The
        message is sized exactly once per send — ``size_bytes()`` walks
        the payload, so the meter, the tracer and the serialisation
        delay all share one measurement.
        """
        if src in self._crashed:
            return
        size = message.size_bytes()
        type_name = message.type_name()
        self.traffic.record(src, dst, type_name, size)
        if self.tracer is not None:
            self.tracer.record(
                self._loop.now, src, dst, type_name, size, message_rids(message)
            )
        self._transmit(src, dst, message, size)

    def _transmit(self, src: Address, dst: Address, message: Message, size: int) -> None:
        """Drop checks, latency sampling and delivery scheduling for one link.

        Shared tail of :meth:`send` and :meth:`multicast`; per-link
        randomness is drawn in the same order as a serial ``send`` loop
        (loss coin flip, then latency sample) so the two paths are
        byte-identical under a fixed seed.
        """
        if dst in self._crashed:
            self.dropped_messages += 1
            return
        if dst not in self._nodes and (
            self.client_router is None or dst.kind != CLIENT
        ):
            self.dropped_messages += 1
            return
        if (src, dst) in self._partitions:
            self.dropped_messages += 1
            return
        loss = self.loss_probability
        if loss > 0.0 and self._loss_rng.random() < loss:
            self.dropped_messages += 1
            return
        delay = self.latency_model.sample(self._latency_rng)
        scale = self._latency_scale
        if scale:
            delay *= scale.get(src, 1.0) * scale.get(dst, 1.0)
        if self.egress_bandwidth is not None:
            delay += self._serialization_delay(src, size)
        self._loop.call_after(delay, self._deliver, src, dst, message)

    def _serialization_delay(self, src: Address, size: int) -> float:
        """Queue ``size`` bytes onto the sender's egress link.

        Returns the time until the last byte leaves the link, measured
        from now; the link is busy until then for subsequent sends.
        """
        now = self._loop.now
        start = max(now, self._egress_free_at.get(src, 0.0))
        free_at = start + size / self.egress_bandwidth
        self._egress_free_at[src] = free_at
        return free_at - now

    def egress_backlog(self, src: Address) -> float:
        """Seconds of queued serialisation delay on ``src``'s link."""
        return max(0.0, self._egress_free_at.get(src, 0.0) - self._loop.now)

    def multicast(self, src: Address, dsts: list[Address], message: Message) -> None:
        """Send the same message to every destination (independent links).

        Equivalent to a serial ``send`` loop — same metering, same
        per-destination randomness order — but the message is sized and
        type-named once for the whole fan-out instead of per
        destination, and the hot callables are bound outside the loop.
        """
        if src in self._crashed:
            return
        size = message.size_bytes()
        type_name = message.type_name()
        record_traffic = self.traffic.record
        tracer = self.tracer
        rids = message_rids(message) if tracer is not None else None
        now = self._loop.now
        transmit = self._transmit
        for dst in dsts:
            record_traffic(src, dst, type_name, size)
            if tracer is not None:
                tracer.record(now, src, dst, type_name, size, rids)
            transmit(src, dst, message, size)

    def _deliver(self, src: Address, dst: Address, message: Message) -> None:
        # Re-check state at delivery time: the destination may have
        # crashed, or a partition may have formed, while in flight.
        if dst in self._crashed or src in self._crashed:
            self.dropped_messages += 1
            return
        if (src, dst) in self._partitions:
            self.dropped_messages += 1
            return
        node = self._nodes.get(dst)
        if node is None:
            if self.client_router is not None and dst.kind == CLIENT:
                node = self.client_router
            else:
                self.dropped_messages += 1
                return
        node.deliver(src, message)

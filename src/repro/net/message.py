"""Base class for protocol messages.

Concrete message types live with the protocols that use them
(:mod:`repro.protocols.messages`); the network only requires that every
message can report its wire size so traffic can be metered.
"""

from __future__ import annotations

# A fixed per-message framing/header overhead (type tag, ids, checksums).
# Chosen to resemble a compact binary wire format over TCP.
HEADER_BYTES = 20


class Message:
    """Base class for all simulated wire messages."""

    __slots__ = ()

    def size_bytes(self) -> int:
        """Wire size of the message in bytes, including framing."""
        return HEADER_BYTES + self.payload_bytes()

    def payload_bytes(self) -> int:
        """Size of the message body; overridden by concrete types."""
        return 0

    def type_name(self) -> str:
        """Short name used in traffic breakdowns and debug output."""
        return type(self).__name__

"""Network-level message tracing for debugging and analysis.

Attach a :class:`MessageTracer` to a network to record every message
placed on the wire: ``(time, src, dst, type, size)``.  Filters keep the
trace focused (by message type, endpoint, or time window) and a record
cap bounds memory.  The tracer is an observer — it never affects the
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, NamedTuple, Optional

from repro.net.addresses import Address


class TraceRecord(NamedTuple):
    """One traced wire message."""

    time: float
    src: Address
    dst: Address
    type_name: str
    size: int
    # Request ids the message carries (empty for protocol-internal
    # messages like COMMIT); lets analyses follow one request's wires.
    rids: tuple = ()


def message_rids(message) -> tuple:
    """The request ids a wire message carries, duck-typed.

    Covers single-rid messages (REQUEST, REPLY, REJECT, FETCH), batch
    messages exposing ``rids`` (REQUIRE, PROPOSE, DECIDED) and wrapped
    requests (FORWARD).
    """
    rid = getattr(message, "rid", None)
    if rid is not None:
        return (rid,)
    rids = getattr(message, "rids", None)
    if rids:
        return tuple(rids)
    request = getattr(message, "request", None)
    if request is not None:
        rid = getattr(request, "rid", None)
        if rid is not None:
            return (rid,)
    return ()


@dataclass
class TraceFilter:
    """What a tracer records; empty fields mean "everything"."""

    types: Optional[frozenset[str]] = None
    endpoints: Optional[frozenset[Address]] = None
    start: float = 0.0
    end: float = float("inf")

    def matches(self, record: TraceRecord) -> bool:
        """Whether ``record`` passes this filter."""
        if not self.start <= record.time <= self.end:
            return False
        if self.types is not None and record.type_name not in self.types:
            return False
        if self.endpoints is not None and (
            record.src not in self.endpoints and record.dst not in self.endpoints
        ):
            return False
        return True


class MessageTracer:
    """Records wire messages matching a filter, up to ``max_records``.

    Once the cap is hit, further records are counted but not stored
    (``truncated`` reports how many were lost).
    """

    def __init__(
        self,
        trace_filter: Optional[TraceFilter] = None,
        max_records: int = 100_000,
    ):
        if max_records < 1:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.filter = trace_filter or TraceFilter()
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self.truncated = 0

    def record(
        self,
        time: float,
        src: Address,
        dst: Address,
        type_name: str,
        size: int,
        rids: tuple = (),
    ) -> None:
        """Called by the network for every sent message."""
        entry = TraceRecord(time, src, dst, type_name, size, rids)
        if not self.filter.matches(entry):
            return
        if len(self.records) >= self.max_records:
            self.truncated += 1
            return
        self.records.append(entry)

    def __len__(self) -> int:
        return len(self.records)

    # -- analysis helpers --------------------------------------------------

    def by_type(self) -> dict[str, int]:
        """Message counts per type."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.type_name] = counts.get(record.type_name, 0) + 1
        return counts

    def between(self, a: Address, b: Address) -> list[TraceRecord]:
        """Records exchanged between two endpoints (either direction)."""
        return [
            record
            for record in self.records
            if {record.src, record.dst} == {a, b}
        ]

    def conversation(self, rid_filter: Iterable = ()) -> str:
        """A human-readable rendering of the trace (message sequence).

        ``rid_filter`` restricts the rendering to messages carrying one
        of the given request ids; entries may be rid tuples or their
        string renderings.  Empty means "every message".
        """
        wanted = {item if isinstance(item, str) else str(item) for item in rid_filter}
        lines = []
        for record in self.records:
            if wanted and not any(str(rid) in wanted for rid in record.rids):
                continue
            lines.append(
                f"{record.time * 1e3:10.3f} ms  {str(record.src):>11s} -> "
                f"{str(record.dst):<11s} {record.type_name:<14s} {record.size:>6d} B"
            )
        if self.truncated:
            lines.append(f"... {self.truncated} further messages truncated")
        return "\n".join(lines)

"""Simulated network substrate.

Models the paper's data-center environment (Section 2.1): fair-loss
point-to-point connections between nodes, with configurable latency
distributions, message loss, partitions and node crashes, plus
byte-accurate traffic accounting used to reproduce Table 1.
"""

from repro.net.addresses import Address, client_address, replica_address
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.message import Message
from repro.net.network import Network, NetworkNode
from repro.net.trace import MessageTracer, TraceFilter, TraceRecord
from repro.net.traffic import TrafficMeter

__all__ = [
    "Address",
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "MessageTracer",
    "Network",
    "NetworkNode",
    "TraceFilter",
    "TraceRecord",
    "TrafficMeter",
    "UniformLatency",
    "client_address",
    "replica_address",
]

"""Figure R: retry storms and metastable failure across a load spike.

This figure is not in the paper; it extends the reproduction with the
resilience layer (``repro.resilience``) to test the paper's central
claim from the clients' side.  Proactive rejection is advertised as the
cure for *metastable failures* (Bronson et al., HotOS'21): overloads
that are triggered by a transient spike but sustained by the system's
own recovery traffic after the trigger has passed.

The scenario is an open-loop piecewise-constant arrival ramp (the
trigger): load ramps from well below the knee, over it for one phase,
and back down, then holds below the knee for three more phases.  The
sustaining effect is the naive client: it re-issues any request that
*times out* (``retry_on="timeout"``), exactly the ubiquitous real-world
client wrapper the metastability literature blames.

* **Paxos** has no admission control, so overload manifests as silence:
  queues grow, requests time out, the naive clients double the load,
  and the system stays wedged at zero goodput long after arrivals are
  back below the knee — the load/capacity hysteresis loop.
* **IDEM** converts overload into *explicit, early* rejection.  Replies
  (accept or reject) come back far inside the client's timeout, so the
  naive timeout-retry logic never fires at all: with a calibrated
  threshold the naive arm is byte-identical to the no-retry arm
  (amplification 1.00) and the system recovers as soon as the spike
  ends.
* A **retry budget** (token bucket) is the client-side mitigation: it
  caps amplification and lets even Paxos escape the loop after roughly
  one phase.

A chaos arm crashes a follower mid-spike under IDEM with naive clients
and checks the safety invariants: rejection plus retries plus a crash
must never break linearizability of the replicated log.

The ``naive-any`` arm retries *every* failed outcome, rejections
included — the client behaviour that defeats proactive rejection's
backoff guidance and historically exposed the IDEM active-slot leak
(dedup-dead request ids pinning a replica at its threshold; fixed by
``IdemReplica._release_dedup_dead``, see ``docs/RESILIENCE.md``).
The arm must recover once the spike passes, and it runs with
replica-state probes on (``RunSpec.probes``) so the drift detectors
(``active_set_leak`` among them) audit every run of the figure — its
finding count is a gated headline and must stay zero.

The CPU cost model is scaled up ~30x (``STORM_COST_SCALE``) so the knee
sits at a few hundred requests/second and a 400-client open-loop pool
is comfortably above saturation; this keeps the figure's runtime in CI
territory while preserving the knee/overload geometry of the paper's
testbed calibration.

Scenario-fixed like Figure 10: ``runs`` and ``duration`` are accepted
for interface uniformity but ignored.  (Longer spike phases than the
calibrated ``PHASE`` erode IDEM's margin too — see
``docs/RESILIENCE.md`` for that sensitivity and for the protocol-level
slot-leak analysis behind the reject-retry variant of this storm.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.faults import FaultSchedule
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec
from repro.experiments import common
from repro.experiments.charts import timeline_sparkline
from repro.workload.open_loop import ArrivalSpec

#: CPU cost scale-up versus the calibrated testbed profile.
STORM_COST_SCALE = 30.0

#: Seconds per arrival-rate phase.
PHASE = 1.2

#: Offered load (requests/second) per phase.  Phase 2 is the trigger
#: spike (above the ~800/s Paxos knee under ``STORM_COST_SCALE``); the
#: three trailing phases measure hysteresis: load is back at the
#: pre-spike level, so a healthy system must be back at pre-spike
#: goodput.
RATES = (450.0, 700.0, 1100.0, 700.0, 450.0, 450.0, 450.0)

#: Index of the trigger phase in :data:`RATES`.
SPIKE_PHASE = 2

#: Open-loop client pool size (arrivals are shed when all are busy).
POOL = 400

#: Measurement starts after this warmup (inside phase 0).
WARMUP = 0.3

#: A post-spike phase counts as recovered when its goodput is at least
#: this fraction of the pre-spike goodput.
RECOVERY_FRACTION = 0.7

#: Shared scenario overrides: a tight client deadline (the storm's
#: fuel) and retransmits disabled so the *policy layer* is the only
#: source of duplicate traffic.
BASE_OVERRIDES = {"request_timeout": 0.25, "retransmit_interval": 60.0}

#: IDEM's rejection threshold, recalibrated for the scaled cost model
#: (the default 50 is a request count sized for 30x more capacity).
#: At 5 the spike is shed early enough that latency stays far inside
#: the client deadline: zero timeouts, so naive retries never fire.
IDEM_OVERRIDES = {"reject_threshold": 5}

#: The naive client: exponential backoff with full jitter, but applied
#: to *timeouts only* — it honours an explicit rejection's backoff
#: guidance, yet treats silence as "try again".
NAIVE_RETRY = {
    "retry_policy": "exponential",
    "retry_on": "timeout",
    "retry_max_attempts": 6,
    "retry_base_delay": 0.02,
    "retry_max_delay": 0.08,
    "retry_jitter": "full",
}

#: The mitigated client: same naive shape plus a token-bucket retry
#: budget (0.5 tokens/s, burst 2 per client).
BUDGET_RETRY = dict(
    NAIVE_RETRY, retry_budget_rate=0.5, retry_budget_cap=2.0
)

#: The reject-retrying client: treats a rejection like any other
#: failure and re-issues the command (``retry_on="any"``), defeating
#: IDEM's backoff guidance.  Fewer attempts and a wider backoff than
#: NAIVE_RETRY keep the post-spike retry pressure bounded — with
#: NAIVE_RETRY's cadence the reject-retry feedback loop saturates the
#: replicas permanently (the paxos-style metastable wedge, with no
#: admission mechanism left to break it).
ANY_RETRY = dict(
    NAIVE_RETRY,
    retry_on="any",
    retry_max_attempts=3,
    retry_base_delay=0.05,
    retry_max_delay=0.2,
)

#: Mid-spike follower crash time for the chaos arm.
CHAOS_CRASH_TIME = (SPIKE_PHASE + 0.5) * PHASE


@dataclass
class StormRun:
    """One system/policy arm of the retry-storm scenario."""

    system: str
    policy: str
    seed: int
    duration: float
    phase_goodput: list[float]  # replies/s per arrival phase
    throughput_series: list[tuple[float, float]]
    pre_goodput: float  # replies/s before the spike (post-warmup)
    recovered: bool  # back to >= RECOVERY_FRACTION * pre at the end
    wedged_phases: int  # post-spike phases below the recovery bar
    amplification: float  # wire sends per distinct command
    retries: int
    give_ups: int
    timeouts: int
    rejections: int
    shed_arrivals: int
    crashed: bool = False
    safety_violations: list[str] = field(default_factory=list)
    # Drift-detector finding count for probed arms; None when the arm
    # ran without probes.
    drift_findings: int | None = None


def storm_profile() -> ClusterProfile:
    """The scaled-cost cluster profile of the storm scenario."""
    base = ClusterProfile()
    return replace(
        base,
        execution_cost=base.execution_cost * STORM_COST_SCALE,
        cost_client_request=base.cost_client_request * STORM_COST_SCALE,
        cost_message=base.cost_message * STORM_COST_SCALE,
        cost_per_id=base.cost_per_id * STORM_COST_SCALE,
        cost_send=base.cost_send * STORM_COST_SCALE,
        cost_per_byte=base.cost_per_byte * STORM_COST_SCALE,
        cost_execution_overhead=base.cost_execution_overhead * STORM_COST_SCALE,
    )


def arrival_spec() -> ArrivalSpec:
    """The piecewise-constant Poisson arrival ramp (the trigger)."""
    return ArrivalSpec(
        steps=tuple((index * PHASE, rate) for index, rate in enumerate(RATES))
    )


def scenario_duration() -> float:
    return PHASE * len(RATES)


def storm_spec(
    system: str,
    policy: str,
    overrides: dict,
    seed: int = 0,
    faults: FaultSchedule | None = None,
    safety: bool = False,
    probes: bool = False,
) -> RunSpec:
    """The spec of one storm arm."""
    return RunSpec(
        system=system,
        clients=POOL,
        duration=scenario_duration(),
        warmup=WARMUP,
        seed=seed,
        profile=storm_profile(),
        arrivals=arrival_spec(),
        overrides=dict(overrides),
        faults=faults,
        safety=safety,
        keep_metrics=True,
        probes=probes,
    )


def measure_storm(
    system: str,
    policy: str,
    overrides: dict,
    seed: int = 0,
    faults: FaultSchedule | None = None,
    safety: bool = False,
    probes: bool = False,
) -> StormRun:
    """Run one arm and reduce it to per-phase goodput and counters."""
    spec = storm_spec(system, policy, overrides, seed, faults, safety, probes)
    result = common.execute_run(spec)
    metrics = result.metrics
    phase_goodput = [
        metrics.reply_counter.rate_between(index * PHASE, (index + 1) * PHASE)
        for index in range(len(RATES))
    ]
    # Pre-spike goodput excludes the warmup ramp; the recovery bar is a
    # fraction of it, so the headline indicators are robust 0/1 values.
    pre_goodput = metrics.reply_counter.rate_between(WARMUP, PHASE)
    bar = RECOVERY_FRACTION * pre_goodput
    post = phase_goodput[SPIKE_PHASE + 1 :]
    recovered = len(post) >= 2 and (post[-1] + post[-2]) / 2.0 >= bar
    stats = result.client_stats
    return StormRun(
        system=system,
        policy=policy,
        seed=seed,
        duration=spec.duration,
        phase_goodput=phase_goodput,
        throughput_series=metrics.reply_counter.series(),
        pre_goodput=pre_goodput,
        recovered=recovered,
        wedged_phases=sum(1 for rate in post if rate < bar),
        amplification=stats["load_amplification"],
        retries=int(stats["retries"]),
        give_ups=int(stats["give_ups"]),
        timeouts=result.timeouts,
        rejections=int(stats["rejections"]),
        shed_arrivals=int(stats.get("shed_arrivals", 0)),
        crashed=faults is not None,
        safety_violations=result.safety_violations or [],
        drift_findings=(
            len(result.findings) if result.findings is not None else None
        ),
    )


@dataclass
class FigRData:
    """All arms of the retry-storm figure."""

    runs: list[StormRun]

    def find(self, system: str, policy: str) -> StormRun:
        for run_ in self.runs:
            if run_.system == system and run_.policy == policy:
                return run_
        raise KeyError((system, policy))


def _cases(quick: bool):
    """Scenario-fixed arms: (system, policy, overrides, faults, safety,
    probes).

    The scenario is identical in quick and full mode: the storm is a
    single calibrated operating point (spike height, client deadline and
    rejection threshold are co-tuned; see the module docstring), not a
    sweep that can be thinned.
    """
    del quick
    idem = dict(BASE_OVERRIDES, **IDEM_OVERRIDES)
    chaos = FaultSchedule().crash_follower(CHAOS_CRASH_TIME)
    return [
        ("paxos", "none", BASE_OVERRIDES, None, False, False),
        ("paxos", "naive", dict(BASE_OVERRIDES, **NAIVE_RETRY), None, False, False),
        ("paxos", "budget", dict(BASE_OVERRIDES, **BUDGET_RETRY), None, False, False),
        ("idem", "none", idem, None, False, False),
        ("idem", "naive", dict(idem, **NAIVE_RETRY), None, False, False),
        # The reject-retrying client that exposed the active-slot leak:
        # probed, so the drift detectors audit every run of this arm.
        ("idem", "naive-any", dict(idem, **ANY_RETRY), None, False, True),
        ("idem", "naive+crash", dict(idem, **NAIVE_RETRY), chaos, True, False),
    ]


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> list[RunSpec]:
    """The independent simulation specs behind :func:`run` (campaign planner).

    ``runs`` and ``duration`` are accepted for interface uniformity but
    ignored: the storm arms are scenario-fixed single runs.
    """
    return [
        storm_spec(system, policy, overrides, seed0, faults, safety, probes)
        for system, policy, overrides, faults, safety, probes in _cases(quick)
    ]


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> FigRData:
    """Measure all storm arms.

    ``runs`` and ``duration`` are accepted for interface uniformity but
    ignored (scenario-fixed storm arms).
    """
    return FigRData(
        [
            measure_storm(system, policy, overrides, seed0, faults, safety, probes)
            for system, policy, overrides, faults, safety, probes in _cases(quick)
        ]
    )


def render(data: FigRData) -> str:
    headers = [
        "system",
        "policy",
        "pre",
        "spike",
        "post phases",
        "amp",
        "retries",
        "give-ups",
        "timeouts",
        "recovered",
    ]
    rows = []
    for run_ in data.runs:
        post = run_.phase_goodput[SPIKE_PHASE + 1 :]
        rows.append(
            [
                run_.system,
                run_.policy,
                f"{run_.pre_goodput:.0f}",
                f"{run_.phase_goodput[SPIKE_PHASE]:.0f}",
                " ".join(f"{rate:4.0f}" for rate in post),
                f"{run_.amplification:.2f}",
                str(run_.retries),
                str(run_.give_ups),
                str(run_.timeouts),
                "yes" if run_.recovered else "NO",
            ]
        )
    table = common.render_table(
        "Figure R: retry storm across a load spike "
        f"(open-loop, {RATES[SPIKE_PHASE]:.0f}/s trigger for one "
        f"{PHASE:.1f} s phase)",
        headers,
        rows,
    )
    # Align the sparkline bins with the metrics buckets (0.25 s) so
    # resampling never produces artificial empty bins.
    duration = scenario_duration()
    buckets = max(1, int(duration / 0.25))
    sparks = [
        "",
        "Goodput timelines (arrival phases: "
        + " ".join(f"{rate:.0f}" for rate in RATES)
        + " /s):",
    ]
    arrival_spark = timeline_sparkline(
        [(index * PHASE, rate) for index, rate in enumerate(RATES)],
        0.0,
        duration,
        buckets=len(RATES),
    )
    sparks.append(f"  {'offered load':20s} {arrival_spark}")
    for run_ in data.runs:
        spark = timeline_sparkline(
            run_.throughput_series, 0.0, duration, buckets=buckets
        )
        label = f"{run_.system}/{run_.policy}"
        sparks.append(f"  {label:20s} {spark}")
    hysteresis = []
    for run_ in data.runs:
        if run_.wedged_phases and not run_.recovered:
            hysteresis.append(
                f"  {run_.system}/{run_.policy}: wedged for "
                f"{run_.wedged_phases} post-spike phase(s) — metastable "
                "(load is back below the knee, goodput is not)"
            )
        elif run_.wedged_phases:
            hysteresis.append(
                f"  {run_.system}/{run_.policy}: degraded for "
                f"{run_.wedged_phases} post-spike phase(s), then recovered"
            )
        else:
            hysteresis.append(
                f"  {run_.system}/{run_.policy}: no hysteresis "
                "(every post-spike phase at pre-spike goodput)"
            )
    chaos_runs = [run_ for run_ in data.runs if run_.crashed]
    violations = [v for run_ in chaos_runs for v in run_.safety_violations]
    if violations:
        safety = "\nsafety invariants VIOLATED:\n  " + "\n  ".join(violations)
    else:
        safety = (
            f"\nsafety invariants across {len(chaos_runs)} chaos arm(s): "
            "OK (0 violations)"
        )
    return (
        table
        + "\n"
        + "\n".join(sparks)
        + "\n\nHysteresis verdicts:\n"
        + "\n".join(hysteresis)
        + safety
    )

"""Figure 8: variation of the reject threshold in IDEM.

The reject threshold RT trades throughput against latency: RT=50 sits
just below what the cluster can handle (lower plateau latency), RT=75
slightly above the overload edge (more throughput, slightly higher
plateau), and an artificially low RT=20 caps throughput around 2/3 of
the maximum but pins latency near the floor.  Below the threshold, all
configurations perform identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import common

FULL_THRESHOLDS = [20, 50, 75]
FULL_CLIENTS = [10, 25, 50, 75, 100, 150, 200, 300]
QUICK_THRESHOLDS = [20, 75]
QUICK_CLIENTS = [25, 150]


@dataclass
class Fig8Data:
    """One load/latency curve per reject threshold."""

    curves: dict[int, list[common.Point]]

    def max_throughput(self, threshold: int) -> float:
        return max(point.throughput for point in self.curves[threshold])

    def plateau_latency(self, threshold: int) -> float:
        """Mean latency (ms) at the heaviest load (the plateau level)."""
        return self.curves[threshold][-1].latency_ms


def _settings(quick: bool, runs: int | None) -> tuple[list[int], list[int], int | None]:
    thresholds = QUICK_THRESHOLDS if quick else FULL_THRESHOLDS
    clients = QUICK_CLIENTS if quick else FULL_CLIENTS
    return thresholds, clients, runs or (1 if quick else None)


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
):
    """The independent simulation specs behind :func:`run` (campaign planner)."""
    thresholds, clients, runs = _settings(quick, runs)
    return [
        spec
        for threshold in thresholds
        for spec in common.sweep_specs(
            "idem",
            clients,
            runs=runs,
            seed0=seed0,
            duration=duration,
            overrides={"reject_threshold": threshold},
        )
    ]


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> Fig8Data:
    thresholds, clients, runs = _settings(quick, runs)
    curves = {
        threshold: common.sweep(
            "idem",
            clients,
            runs=runs,
            seed0=seed0,
            duration=duration,
            overrides={"reject_threshold": threshold},
        )
        for threshold in thresholds
    }
    return Fig8Data(curves)


def render(data: Fig8Data) -> str:
    headers = ["RT"] + common.POINT_HEADERS
    rows = []
    for threshold, points in data.curves.items():
        for row in common.point_rows(points):
            rows.append([str(threshold)] + row)
    table = common.render_table(
        "Figure 8: variation of the reject threshold in IDEM",
        headers,
        rows,
    )
    summary = ["", "Per-threshold summary:"]
    for threshold in data.curves:
        summary.append(
            f"  RT={threshold:3d}: max tput "
            f"{data.max_throughput(threshold) / 1e3:5.1f}k, plateau latency "
            f"{data.plateau_latency(threshold):5.2f} ms"
        )
    return table + "\n" + "\n".join(summary)

"""Figure M: a million-user population under sustained near-knee load.

This figure is not in the paper; it extends the reproduction with the
aggregate client-population backend (``repro.population``) to test the
paper's thesis at the population scale the introduction invokes (game
servers and web backends with *millions* of semi-autonomous clients) —
far beyond what per-object closed-loop clients can simulate.

Each arm folds N virtual clients into one
:class:`~repro.population.aggregate.AggregateClientNode`: the think
pool is a counter, arrivals are an analytically fed-back Poisson
process at ``lambda_eff(t) = thinkers(t) / Z``, and per-request state
stays O(active requests).  The think time is scaled with N
(``Z = N / OFFERED``) so every arm offers the same ~50 k req/s — right
at the IDEM knee — and only the population size varies across three
decades: 10 k, 100 k, and 1 M virtual clients.

The story the sweep tells:

* **IDEM** answers excess load with proactive rejection.  Rejected
  virtual clients get their fallback response within milliseconds
  (``reject_reentry="think"``: a rejected user is served by the
  fallback and returns to the think pool, so rejection genuinely
  *sheds* load).  Goodput and the success tail stay **flat in N** —
  p99 is ~1.6 ms whether 10 k or 1 M users are attached.
* **Paxos** has no admission control.  At small N the closed loop
  still self-limits (Z is short, so queueing latency visibly throttles
  re-arrival), but as N grows the loop opens up — each client re-thinks
  for ``Z = N/50k`` seconds regardless of service latency — and the
  excess queues: p99 *grows with the population size* (≈13 ms at 10 k,
  ≈45 ms at 100 k, ≈55+ ms at 1 M in the quick slice) while goodput
  stays near capacity.

That contrast — tail latency invariant to population size with
proactive rejection, growing with it without — is the figure's
headline, gated per arm (goodput, p99, reject rate and
events-per-request) against ``benchmarks/baselines/BENCH_figM.json``.

Events-per-request is the backend's cost claim: simulation cost scales
with the *arrival rate*, not with N (the 1 M arm costs the same ~15
events per request as the 10 k arm), which is what makes a
million-client arm fit in CI smoke time.  ``docs/WORKLOADS.md``
documents the population model, the ``lambda_eff`` derivation, and the
approximations behind it.

The window [``WARMUP``, duration) is aligned to the 0.25 s metric
buckets so the goodput headline is an exact rate (no partial-bucket
quantisation).  Operating-point caveat: pushing the offered load well
past the knee drives the replicated admission layer into a metastable
partial-acceptance regime (replicas' acceptance decisions diverge and
commits detour through the ~100 ms forward sweep) — interesting, but a
different experiment; the calibrated 50 k operating point keeps IDEM in
the healthy shedding regime across seeds and population sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.runner import RunSpec
from repro.experiments import common
from repro.population.spec import PopulationSpec

#: Offered load (req/s) shared by every arm: ``Z = N / OFFERED``.
OFFERED = 50_000.0

#: The population-size sweep — three decades up to one million users.
N_SWEEP = (10_000, 100_000, 1_000_000)

#: Systems under comparison (with and without proactive rejection).
SYSTEMS = ("idem", "paxos")

#: Measurement starts here; with the 0.25 s metric buckets the window
#: [WARMUP, duration) is bucket-aligned for the standard durations.
WARMUP = 0.25

#: Full-mode / quick-mode run length (seconds); both bucket-aligned.
DURATION = 1.25
QUICK_DURATION = 0.75

#: Seeded runs averaged per arm (full mode; quick uses one).
FULL_RUNS = 3


def population_spec(n_clients: int) -> PopulationSpec:
    """The population of one arm: think time scaled so the offered load
    is ``OFFERED`` regardless of N; rejected users are served by their
    fallback and return to the think pool ("think" re-entry)."""
    return PopulationSpec(
        think_time=n_clients / OFFERED,
        reject_reentry="think",
    )


def million_spec(
    system: str, n_clients: int, seed: int = 0, duration: float = DURATION
) -> RunSpec:
    """The spec of one (system, N, seed) arm."""
    return RunSpec(
        system=system,
        clients=n_clients,
        duration=duration,
        warmup=WARMUP,
        seed=seed,
        population=population_spec(n_clients),
    )


@dataclass
class MillionRun:
    """One (system, N) arm, averaged over its seeded runs."""

    system: str
    clients: int
    runs: int
    goodput: float  # successful replies/s over the window
    goodput_std: float
    mean_ms: float  # mean success latency
    p99_ms: float  # p99 success latency
    reject_rate: float  # abandoned-by-rejection ops/s
    reject_p99_ms: float  # p99 fallback (rejection) latency
    timeouts: int
    events_per_request: float  # simulator events per distinct command
    arrivals: int  # aggregate arrivals generated (all seeds)

    @property
    def reject_share(self) -> float:
        total = self.goodput + self.reject_rate
        return self.reject_rate / total if total else 0.0


@dataclass
class FigMData:
    """All arms of the million-user figure."""

    runs: list[MillionRun]
    offered: float = OFFERED

    def find(self, system: str, clients: int) -> MillionRun:
        for run_ in self.runs:
            if run_.system == system and run_.clients == clients:
                return run_
        raise KeyError((system, clients))


def _resolve(quick: bool, runs: int | None, duration: float | None):
    if runs is None:
        runs = 1 if quick else FULL_RUNS
    if duration is None:
        duration = QUICK_DURATION if quick else DURATION
    return runs, duration


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> list[RunSpec]:
    """The independent simulation specs behind :func:`run` (campaign planner)."""
    runs, duration = _resolve(quick, runs, duration)
    return [
        million_spec(system, n_clients, seed0 + run_index, duration)
        for system in SYSTEMS
        for n_clients in N_SWEEP
        for run_index in range(runs)
    ]


def measure_arm(
    system: str,
    n_clients: int,
    runs: int,
    seed0: int = 0,
    duration: float = DURATION,
) -> MillionRun:
    """Run one (system, N) arm over ``runs`` seeds and average it."""
    results = [
        common.execute_run(million_spec(system, n_clients, seed0 + index, duration))
        for index in range(runs)
    ]
    goodputs = [result.throughput for result in results]
    events = sum(result.sim_stats["dispatched_events"] for result in results)
    commands = sum(int(result.client_stats["commands"]) for result in results)
    return MillionRun(
        system=system,
        clients=n_clients,
        runs=runs,
        goodput=_mean(goodputs),
        goodput_std=_spread(goodputs),
        mean_ms=_mean([result.latency.mean * 1e3 for result in results]),
        p99_ms=_mean([result.latency.p99 * 1e3 for result in results]),
        reject_rate=_mean([result.reject_throughput for result in results]),
        reject_p99_ms=_mean(
            [result.reject_latency.p99 * 1e3 for result in results]
        ),
        timeouts=sum(result.timeouts for result in results),
        events_per_request=events / commands if commands else 0.0,
        arrivals=sum(
            int(result.client_stats.get("arrivals", 0)) for result in results
        ),
    )


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> FigMData:
    """Measure every (system, N) arm of the sweep."""
    runs, duration = _resolve(quick, runs, duration)
    return FigMData(
        [
            measure_arm(system, n_clients, runs, seed0, duration)
            for system in SYSTEMS
            for n_clients in N_SWEEP
        ]
    )


def render(data: FigMData) -> str:
    headers = [
        "system",
        "clients",
        "goodput",
        "p99 ms",
        "rej/s",
        "rej %",
        "rej p99 ms",
        "ev/req",
    ]
    rows = []
    for run_ in data.runs:
        rows.append(
            [
                run_.system,
                f"{run_.clients:,}",
                f"{run_.goodput / 1e3:.1f}k",
                f"{run_.p99_ms:.2f}",
                f"{run_.reject_rate:.0f}",
                f"{100 * run_.reject_share:.1f}%",
                f"{run_.reject_p99_ms:.1f}",
                f"{run_.events_per_request:.1f}",
            ]
        )
    table = common.render_table(
        "Figure M: population-size sweep at a fixed "
        f"{data.offered / 1e3:.0f}k req/s offered load "
        "(aggregate client backend, think time Z = N / offered)",
        headers,
        rows,
    )
    verdict_lines = ["", "Tail-vs-population verdicts:"]
    for system in SYSTEMS:
        arms = [run_ for run_ in data.runs if run_.system == system]
        if len(arms) < 2:
            continue
        smallest, largest = arms[0], arms[-1]
        growth = (
            largest.p99_ms / smallest.p99_ms if smallest.p99_ms > 0 else 0.0
        )
        if growth < 2.0:
            verdict_lines.append(
                f"  {system}: p99 flat in N "
                f"({smallest.p99_ms:.1f} ms @ {smallest.clients:,} -> "
                f"{largest.p99_ms:.1f} ms @ {largest.clients:,}; x{growth:.1f})"
            )
        else:
            verdict_lines.append(
                f"  {system}: p99 grows with N "
                f"({smallest.p99_ms:.1f} ms @ {smallest.clients:,} -> "
                f"{largest.p99_ms:.1f} ms @ {largest.clients:,}; x{growth:.1f})"
            )
    return table + "\n" + "\n".join(verdict_lines)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _spread(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5

"""Figure 7: reject behaviour in IDEM under increasing load.

Sweeps the client-load factor (1x = 50 clients, the saturation point)
and reports reject throughput and reject latency.  The paper's claims
(Section 7.3): reject latency stays stable (same range as replies) up to
8x overload, and rejects remain a small share of total operations (<3%
in moderate overload, ≈10% at 8x) because rejected clients back off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import common

FULL_FACTORS = [1, 2, 3, 4, 6, 8]
QUICK_FACTORS = [2, 8]


@dataclass
class Fig7Data:
    """Reject throughput/latency per client-load factor."""

    points: list[common.Point]

    def point_at(self, factor: float) -> common.Point:
        """The measured point for a given load factor."""
        for point in self.points:
            if abs(point.load_factor - factor) < 1e-9:
                return point
        raise KeyError(f"no point at load factor {factor}")


def _settings(quick: bool, runs: int | None) -> tuple[list[int], int | None]:
    factors = QUICK_FACTORS if quick else FULL_FACTORS
    return [50 * factor for factor in factors], runs or (1 if quick else None)


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
):
    """The independent simulation specs behind :func:`run` (campaign planner)."""
    clients, runs = _settings(quick, runs)
    return common.sweep_specs("idem", clients, runs=runs, seed0=seed0, duration=duration)


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> Fig7Data:
    clients, runs = _settings(quick, runs)
    points = common.sweep("idem", clients, runs=runs, seed0=seed0, duration=duration)
    return Fig7Data(points)


def render(data: Fig7Data) -> str:
    return common.render_table(
        "Figure 7: reject behaviour in IDEM under increasing load",
        common.REJECT_HEADERS,
        common.point_rows(data.points, with_rejects=True),
    )

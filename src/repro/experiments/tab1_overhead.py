"""Table 1: network-traffic overhead of IDEM's rejection mechanism.

The paper issues a fixed number of 1,000,000 requests to IDEM and
IDEM_noPR under medium load (0.5x), high load (1x) and overload (4x) and
compares total network traffic; the two systems are indistinguishable
(within the 2-3% run-to-run variation).  A request only counts when it
completes successfully — rejected operations must be retried and their
traffic still counts, which is exactly what makes this a real overhead
test for the rejection mechanism.

We scale the request count down (default 200,000, override with
``REPRO_TAB1_REQUESTS``); traffic per request is count-invariant, and we
also report the projection to the paper's 1M requests for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.builder import build_cluster
from repro.experiments import common, settings

LOADS = [("medium (0.5x)", 25), ("high (1x)", 50), ("overload (4x)", 200)]
SYSTEMS = ["idem-nopr", "idem"]
TIME_CAP = 120.0  # simulated seconds; generous safety bound


@dataclass
class Tab1Cell:
    """One (system, load) measurement."""

    system: str
    load_label: str
    clients: int
    requests_completed: int
    total_bytes: int
    client_bytes: int
    replica_bytes: int
    rejects: int
    sim_seconds: float

    @property
    def bytes_per_request(self) -> float:
        """Average wire bytes per successfully completed request."""
        return self.total_bytes / max(1, self.requests_completed)

    @property
    def projected_gb_per_million(self) -> float:
        """Traffic projected to the paper's 1,000,000-request experiment."""
        return self.bytes_per_request * 1_000_000 / 1e9


@dataclass
class Tab1Data:
    """The full table."""

    cells: list[Tab1Cell]
    target_requests: int

    def cell(self, system: str, load_label: str) -> Tab1Cell:
        for cell in self.cells:
            if cell.system == system and cell.load_label == load_label:
                return cell
        raise KeyError((system, load_label))


def default_requests(quick: bool) -> int:
    if quick:
        return 20_000
    return settings.tab1_requests()


def measure_cell(
    system: str, load_label: str, clients: int, target: int, seed: int
) -> Tab1Cell:
    """Run ``system`` until ``target`` requests completed; meter traffic."""
    cluster = build_cluster(system, clients, seed=seed)
    step = 0.25
    horizon = 0.0
    while cluster.metrics.reply_counter.total() < target and horizon < TIME_CAP:
        horizon += step
        cluster.run_until(horizon)
    traffic = cluster.network.traffic
    return Tab1Cell(
        system=system,
        load_label=load_label,
        clients=clients,
        requests_completed=cluster.metrics.reply_counter.total(),
        total_bytes=traffic.total_bytes,
        client_bytes=traffic.client_bytes,
        replica_bytes=traffic.replica_bytes,
        rejects=cluster.metrics.reject_counter.total(),
        sim_seconds=horizon,
    )


def plan_cells(quick: bool = False, seed0: int = 0) -> list[dict]:
    """The independent cell jobs behind :func:`run` (campaign planner)."""
    target = default_requests(quick)
    return [
        dict(
            system=system,
            load_label=load_label,
            clients=clients,
            target=target,
            seed=seed0,
        )
        for system in SYSTEMS
        for load_label, clients in LOADS
    ]


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> Tab1Data:
    """Measure all cells.

    ``runs`` and ``duration`` are accepted for interface uniformity but
    ignored: cells run until a fixed request count completes.
    """
    jobs = plan_cells(quick, seed0)
    cells = [common.execute_tab1_cell(**job) for job in jobs]
    return Tab1Data(cells, jobs[0]["target"])


def render(data: Tab1Data) -> str:
    headers = ["system", "load", "completed", "total GB", "GB per 1M reqs", "rejects"]
    rows = []
    for cell in data.cells:
        rows.append(
            [
                cell.system,
                cell.load_label,
                str(cell.requests_completed),
                f"{cell.total_bytes / 1e9:.3f}",
                f"{cell.projected_gb_per_million:.2f}",
                str(cell.rejects),
            ]
        )
    table = common.render_table(
        f"Table 1: rejection-mechanism traffic overhead "
        f"({data.target_requests} completed requests per cell)",
        headers,
        rows,
    )
    notes = ["", "Paper reference (1M requests): IDEM_noPR 3.26/3.15/3.19 GB, "
             "IDEM 3.24/3.08/3.19 GB — no visible difference."]
    return table + "\n".join(notes)

"""Figure 2: behaviour of existing replication protocols under load.

The paper's motivating measurement: Paxos delivers low, stable latency
up to its saturation point (the *good tier*), after which latency
escalates with offered load (the *bad tier*).  We sweep closed-loop
clients and report average latency (with its standard deviation) against
achieved throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import common


# Client counts spanning well below saturation (~50 clients) to 4x beyond.
FULL_CLIENTS = [5, 10, 15, 25, 35, 50, 75, 100, 150, 200]
QUICK_CLIENTS = [10, 35, 50, 100, 200]


@dataclass
class Fig2Data:
    """The measured Paxos load/latency curve."""

    points: list[common.Point]

    def saturation_point(self) -> common.Point:
        """The knee of the curve: the *lightest* load that already
        achieves (within 5%) the maximum throughput.

        Past the knee closed-loop clients only add queueing delay, so
        the throughput curve is flat and ``argmax`` would pick an
        arbitrary deep-overload point.
        """
        peak = max(point.throughput for point in self.points)
        for point in self.points:
            if point.throughput >= 0.95 * peak:
                return point
        return self.points[-1]


def _settings(quick: bool, runs: int | None) -> tuple[list[int], int | None]:
    clients = QUICK_CLIENTS if quick else FULL_CLIENTS
    return clients, runs or (1 if quick else None)


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
):
    """The independent simulation specs behind :func:`run` (campaign planner)."""
    clients, runs = _settings(quick, runs)
    return common.sweep_specs("paxos", clients, runs=runs, seed0=seed0, duration=duration)


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> Fig2Data:
    """Measure the Paxos curve of Figure 2."""
    clients, runs = _settings(quick, runs)
    points = common.sweep("paxos", clients, runs=runs, seed0=seed0, duration=duration)
    return Fig2Data(points)


def render(data: Fig2Data) -> str:
    """Paper-style series: latency (avg ± std) over throughput."""
    return common.render_table(
        "Figure 2: Paxos under increasing load (good tier -> bad tier)",
        common.POINT_HEADERS,
        common.point_rows(data.points),
    )

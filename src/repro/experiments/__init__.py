"""The paper's evaluation: one module per figure/table.

Every module exposes ``run(quick=False, runs=None, seed0=0,
duration=None) -> data``, ``render(data) -> str`` and a campaign-planner
hook (``plan_runs``/``plan_cells``); the registry maps experiment ids
(``fig2``, ``tab1``, ...) to them.  The benchmarks in ``benchmarks/``
are thin wrappers that execute these modules and assert the paper's
qualitative claims; ``repro.campaign`` plans, parallelises, caches and
gates whole campaigns of them.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment_by_id

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment_by_id"]

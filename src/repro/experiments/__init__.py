"""The paper's evaluation: one module per figure/table.

Every module exposes ``run(quick=False, runs=None, seed0=0) -> data`` and
``render(data) -> str``; the registry maps experiment ids (``fig2``,
``tab1``, ...) to them.  The benchmarks in ``benchmarks/`` are thin
wrappers that execute these modules and assert the paper's qualitative
claims.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment_by_id

__all__ = ["EXPERIMENTS", "run_experiment_by_id"]

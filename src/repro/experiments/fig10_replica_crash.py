"""Figure 10: impact of replica failures on IDEM (and Paxos_LBR).

Panels a-c (paper Section 7.7): throughput and latency timelines across
a leader or follower crash, for IDEM and IDEM_noAQM, at normal load
(50 clients, just before rejection bites) and overload (100 clients).
The paper's findings to reproduce:

* A leader crash halts IDEM for the view change (≈1.5 s, mostly the
  view-change timeout), after which it recovers with a modest
  throughput/latency penalty in the f+1-replica regime.
* IDEM_noAQM becomes unstable with only f+1 replicas under overload —
  the unanimity nudge of active queue management is what keeps the
  reduced group productive.
* A follower crash interrupts nothing.

Panel d: reject latency across crashes, IDEM vs Paxos_LBR.  IDEM keeps
rejecting continuously through a leader crash; Paxos_LBR cannot reject
at all until the view change completes and clients fail over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.faults import FaultSchedule
from repro.cluster.runner import RunSpec
from repro.experiments import common
from repro.experiments.charts import timeline_sparkline


@dataclass
class TimelineRun:
    """One crash-timeline measurement."""

    system: str
    clients: int
    target: str
    crash_time: float
    duration: float
    throughput_series: list[tuple[float, float]]
    latency_series: list[tuple[float, float]]  # (time, mean ms)
    reject_rate_series: list[tuple[float, float]]
    reject_latency_series: list[tuple[float, float]]
    service_gap: float  # longest reply outage overlapping the crash
    reject_downtime: float  # longest rejection outage overlapping the crash
    pre_throughput: float
    post_throughput: float
    pre_latency_ms: float
    post_latency_ms: float
    timeouts: int
    # Safety-invariant violations observed across the crash (must be empty).
    safety_violations: list[str] = field(default_factory=list)


def timeline_spec(
    system: str,
    clients: int,
    target: str,
    duration: float,
    crash_time: float,
    seed: int = 0,
    bucket_width: float = 0.25,
) -> RunSpec:
    """The spec of one crash-timeline scenario."""
    faults = FaultSchedule()
    if target == "leader":
        faults.crash_leader(crash_time)
    else:
        faults.crash_follower(crash_time)
    return RunSpec(
        system=system,
        clients=clients,
        duration=duration,
        warmup=0.5,
        seed=seed,
        faults=faults,
        keep_metrics=True,
        bucket_width=bucket_width,
        safety=True,
    )


def measure_timeline(
    system: str,
    clients: int,
    target: str,
    duration: float,
    crash_time: float,
    seed: int = 0,
    bucket_width: float = 0.25,
) -> TimelineRun:
    """Run one crash scenario and extract its timelines."""
    spec = timeline_spec(
        system, clients, target, duration, crash_time, seed, bucket_width
    )
    result = common.execute_run(spec)
    metrics = result.metrics
    throughput_series = metrics.reply_counter.series()
    latency_series = [
        (time, value * 1e3) for time, value in metrics.latency_timeline()
    ]
    service_gap = _longest_outage(throughput_series, crash_time, duration, bucket_width)
    reject_downtime = metrics.reject_gaps.longest_gap_overlapping(
        crash_time, until=duration
    )
    settle = crash_time + 2.5  # skip the view-change transient
    return TimelineRun(
        system=system,
        clients=clients,
        target=target,
        crash_time=crash_time,
        duration=duration,
        throughput_series=throughput_series,
        latency_series=latency_series,
        reject_rate_series=metrics.reject_counter.series(),
        reject_latency_series=[
            (time, value * 1e3) for time, value in metrics.reject_latency_timeline()
        ],
        service_gap=service_gap,
        reject_downtime=reject_downtime,
        pre_throughput=metrics.reply_counter.rate_between(1.0, crash_time),
        post_throughput=metrics.reply_counter.rate_between(settle, duration),
        pre_latency_ms=_mean_in(latency_series, 1.0, crash_time),
        post_latency_ms=_mean_in(latency_series, settle, duration),
        timeouts=result.timeouts,
        safety_violations=result.safety_violations or [],
    )


def _longest_outage(
    series: list[tuple[float, float]],
    crash_time: float,
    duration: float,
    bucket_width: float,
) -> float:
    """Longest run of zero-throughput buckets starting at/after the crash."""
    longest = 0.0
    current_start = None
    for time, rate in series:
        if time + bucket_width < crash_time:
            continue
        if rate == 0.0:
            if current_start is None:
                current_start = time
            longest = max(longest, time + bucket_width - current_start)
        else:
            current_start = None
    return longest


def _mean_in(series: list[tuple[float, float]], start: float, end: float) -> float:
    values = [value for time, value in series if start <= time < end]
    return sum(values) / len(values) if values else 0.0


@dataclass
class Fig10Data:
    """All panels of Figure 10."""

    panels_abc: list[TimelineRun]  # idem / idem-noaqm crash timelines
    panel_d: list[TimelineRun]  # idem vs paxos-lbr reject continuity

    def find(
        self, system: str, clients: int, target: str, panel_d: bool = False
    ) -> TimelineRun:
        source = self.panel_d if panel_d else self.panels_abc
        for run_ in source:
            if (
                run_.system == system
                and run_.clients == clients
                and run_.target == target
            ):
                return run_
        raise KeyError((system, clients, target))


def _cases(quick: bool):
    """Scenario-fixed settings: (duration, crash_time, abc_cases, d_cases)."""
    duration = 6.5 if quick else 9.0
    crash_time = 2.5 if quick else 3.5
    if quick:
        abc_cases = [
            ("idem", 100, "leader"),
            ("idem-noaqm", 100, "leader"),
        ]
        d_cases = [
            ("idem", 150, "leader"),
            ("paxos-lbr", 150, "leader"),
        ]
    else:
        abc_cases = [
            (system, clients, target)
            for system in ("idem", "idem-noaqm")
            for clients in (50, 100)
            for target in ("leader", "follower")
        ]
        d_cases = [
            (system, 150, target)
            for system in ("idem", "paxos-lbr")
            for target in ("leader", "follower")
        ]
    return duration, crash_time, abc_cases, d_cases


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> list[RunSpec]:
    """The independent simulation specs behind :func:`run` (campaign planner).

    ``runs`` and ``duration`` are accepted for interface uniformity but
    ignored: the crash timelines are scenario-fixed single runs.
    """
    scenario_duration, crash_time, abc_cases, d_cases = _cases(quick)
    return [
        timeline_spec(system, clients, target, scenario_duration, crash_time, seed0)
        for system, clients, target in abc_cases + d_cases
    ]


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> Fig10Data:
    """Measure all crash timelines.

    ``runs`` and ``duration`` are accepted for interface uniformity but
    ignored (scenario-fixed timeline runs).
    """
    duration, crash_time, abc_cases, d_cases = _cases(quick)
    panels_abc = [
        measure_timeline(system, clients, target, duration, crash_time, seed=seed0)
        for system, clients, target in abc_cases
    ]
    panel_d = [
        measure_timeline(system, clients, target, duration, crash_time, seed=seed0)
        for system, clients, target in d_cases
    ]
    return Fig10Data(panels_abc, panel_d)


def render(data: Fig10Data) -> str:
    headers = [
        "system",
        "clients",
        "crash",
        "pre tput",
        "post tput",
        "pre lat",
        "post lat",
        "svc gap s",
        "rej gap s",
    ]
    rows = []
    for run_ in data.panels_abc:
        rows.append(
            [
                run_.system,
                str(run_.clients),
                run_.target,
                f"{run_.pre_throughput / 1e3:.1f}k",
                f"{run_.post_throughput / 1e3:.1f}k",
                f"{run_.pre_latency_ms:.2f}",
                f"{run_.post_latency_ms:.2f}",
                f"{run_.service_gap:.2f}",
                f"{run_.reject_downtime:.2f}",
            ]
        )
    table_abc = common.render_table(
        "Figure 10a-c: replica crash timelines (summary)", headers, rows
    )
    rows_d = []
    for run_ in data.panel_d:
        rows_d.append(
            [
                run_.system,
                str(run_.clients),
                run_.target,
                f"{run_.pre_throughput / 1e3:.1f}k",
                f"{run_.post_throughput / 1e3:.1f}k",
                f"{run_.pre_latency_ms:.2f}",
                f"{run_.post_latency_ms:.2f}",
                f"{run_.service_gap:.2f}",
                f"{run_.reject_downtime:.2f}",
            ]
        )
    table_d = common.render_table(
        "Figure 10d: reject continuity across crashes (IDEM vs Paxos_LBR)",
        headers,
        rows_d,
    )
    sparks = ["", "Throughput timelines (crash marked by the dip):"]
    for run_ in data.panels_abc + data.panel_d:
        # Align the sparkline bins with the metrics buckets (0.25 s) so
        # resampling never produces artificial empty bins.
        spark = timeline_sparkline(
            run_.throughput_series, 0.0, run_.duration,
            buckets=max(1, int(run_.duration / 0.25)),
        )
        sparks.append(
            f"  {run_.system:11s} {run_.clients:4d}c {run_.target:8s} {spark}"
        )
    all_runs = data.panels_abc + data.panel_d
    violations = [v for run_ in all_runs for v in run_.safety_violations]
    if violations:
        safety = "\nsafety invariants VIOLATED:\n  " + "\n  ".join(violations)
    else:
        safety = (
            f"\nsafety invariants across all {len(all_runs)} crash runs: "
            "OK (0 violations)"
        )
    return table_abc + "\n\n" + table_d + "\n" + "\n".join(sparks) + safety

"""Figure 3: impact of a leader crash on rejections in Paxos_LBR.

The motivating counter-example for leader-based rejection (Section 3.3):
when rejection is the leader's job, a leader crash silences rejection
notifications until the view change completes *and* clients have failed
over to the new leader.  We run Paxos_LBR under overload, crash the
leader mid-run, and measure the rejection-throughput timeline and the
longest period without any rejection reaching a client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.faults import FaultSchedule
from repro.cluster.runner import RunSpec
from repro.experiments import common


@dataclass
class Fig3Data:
    """Reject timeline of Paxos_LBR across a leader crash."""

    crash_time: float
    duration: float
    reject_rate_series: list[tuple[float, float]]  # (time, rejects/s)
    reject_downtime: float
    pre_crash_reject_rate: float
    post_crash_reject_rate: float
    # Safety-invariant violations observed across the crash (must be empty).
    safety_violations: list[str] = field(default_factory=list)


def _spec(quick: bool, seed0: int) -> tuple[RunSpec, float]:
    """The single crash-timeline spec of this experiment (plus crash time)."""
    duration = 6.0 if quick else 9.0
    crash_time = 2.5 if quick else 3.5
    clients = 150  # well past the leader's rejection threshold
    spec = RunSpec(
        system="paxos-lbr",
        clients=clients,
        duration=duration,
        warmup=0.5,
        seed=seed0,
        faults=FaultSchedule().crash_leader(crash_time),
        keep_metrics=True,
        bucket_width=0.25,
        safety=True,
    )
    return spec, crash_time


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> list[RunSpec]:
    """The independent simulation specs behind :func:`run` (campaign planner).

    ``runs`` and ``duration`` are accepted for interface uniformity but
    ignored: the crash timeline is a single scenario-fixed run.
    """
    spec, _ = _spec(quick, seed0)
    return [spec]


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> Fig3Data:
    """Run the Paxos_LBR leader-crash experiment.

    ``runs`` and ``duration`` are accepted for interface uniformity but
    ignored (single scenario-fixed timeline run).
    """
    spec, crash_time = _spec(quick, seed0)
    duration = spec.duration
    result = common.execute_run(spec)
    metrics = result.metrics
    series = metrics.reject_counter.series()
    downtime = max(
        (
            gap
            for gap in _gaps_after(metrics.reject_gaps, crash_time)
        ),
        default=0.0,
    )
    return Fig3Data(
        crash_time=crash_time,
        duration=duration,
        reject_rate_series=series,
        reject_downtime=downtime,
        pre_crash_reject_rate=metrics.reject_counter.rate_between(1.0, crash_time),
        post_crash_reject_rate=metrics.reject_counter.rate_between(
            duration - 1.0, duration
        ),
        safety_violations=result.safety_violations or [],
    )


def _gaps_after(interval_recorder, crash_time: float) -> list[float]:
    """All inter-rejection gaps (the crash-induced one dominates)."""
    return list(interval_recorder.gaps)


def render(data: Fig3Data) -> str:
    rows = [
        [f"{time:.2f}", f"{rate:.0f}"]
        for time, rate in data.reject_rate_series
        if rate > 0 or data.crash_time - 1 <= time <= data.crash_time + 5
    ]
    table = common.render_table(
        "Figure 3: rejections/s over time, Paxos_LBR, leader crash "
        f"at t={data.crash_time:.1f}s",
        ["time s", "rejects/s"],
        rows,
    )
    if data.safety_violations:
        safety = "safety invariants VIOLATED:\n  " + "\n  ".join(
            data.safety_violations
        )
    else:
        safety = "safety invariants across the crash: OK (0 violations)"
    return table + (
        f"\n\nreject downtime after the crash: {data.reject_downtime:.2f} s"
        f"\nreject rate before crash: {data.pre_crash_reject_rate:.0f}/s, "
        f"after recovery: {data.post_crash_reject_rate:.0f}/s"
        f"\n{safety}"
    )

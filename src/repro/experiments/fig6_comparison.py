"""Figure 6: performance comparison under increasing request load.

IDEM vs IDEM_noPR vs Paxos vs BFT-SMaRt.  The paper's headline result:
the traditional protocols' latency escalates past saturation, while
IDEM's collaborative overload prevention caps latency in a plateau, and
IDEM_noPR shows that the rejection mechanism itself costs nothing below
the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import common

SYSTEMS = ["idem", "idem-nopr", "paxos", "bftsmart"]
FULL_CLIENTS = [5, 10, 25, 50, 75, 100, 150, 200]
QUICK_CLIENTS = [10, 50, 200]


@dataclass
class Fig6Data:
    """One load/latency curve per system."""

    curves: dict[str, list[common.Point]]

    def max_throughput(self, system: str) -> float:
        """Highest successful throughput the system reached."""
        return max(point.throughput for point in self.curves[system])

    def latency_at_max_load(self, system: str) -> float:
        """Mean latency (ms) at the heaviest client count."""
        return self.curves[system][-1].latency_ms

    def latency_at_saturation(self, system: str) -> float:
        """Mean latency (ms) at the knee: the lightest load achieving
        (within 5%) the system's maximum throughput."""
        points = self.curves[system]
        peak = max(point.throughput for point in points)
        for point in points:
            if point.throughput >= 0.95 * peak:
                return point.latency_ms
        return points[-1].latency_ms


def _settings(quick: bool, runs: int | None) -> tuple[list[int], int | None]:
    clients = QUICK_CLIENTS if quick else FULL_CLIENTS
    return clients, runs or (1 if quick else None)


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
):
    """The independent simulation specs behind :func:`run` (campaign planner)."""
    clients, runs = _settings(quick, runs)
    return [
        spec
        for system in SYSTEMS
        for spec in common.sweep_specs(
            system, clients, runs=runs, seed0=seed0, duration=duration
        )
    ]


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> Fig6Data:
    """Measure all four systems' curves."""
    clients, runs = _settings(quick, runs)
    curves = {
        system: common.sweep(system, clients, runs=runs, seed0=seed0, duration=duration)
        for system in SYSTEMS
    }
    return Fig6Data(curves)


def render(data: Fig6Data) -> str:
    rows = []
    for system in SYSTEMS:
        rows.extend(common.point_rows(data.curves[system]))
    table = common.render_table(
        "Figure 6: performance comparison under increasing load",
        common.POINT_HEADERS,
        rows,
    )
    summary = [
        "",
        "Shape checks (paper Section 7.2):",
    ]
    for system in SYSTEMS:
        summary.append(
            f"  {system:10s} max tput {data.max_throughput(system) / 1e3:6.1f}k, "
            f"latency {data.latency_at_saturation(system):5.2f} ms at saturation -> "
            f"{data.latency_at_max_load(system):5.2f} ms at max load"
        )
    return table + "\n" + "\n".join(summary)

"""Figure 9: IDEM under disruptive conditions.

(a) *Misconfiguration*: a reject threshold of 100 — well above what the
cluster can handle — lets the system enter overload before rejection
bites; latency climbs beyond the healthy plateau but the mechanism still
arrests the explosion that plain protocols exhibit.

(b) *Extreme load*: up to 14x the baseline client load.  Throughput
degrades gracefully (the paper measures ≈55% of peak at 14x) while
latency stays low, because most clients are rejected quickly and back
off.

Known deviation (see EXPERIMENTS.md): in this reproduction the 9a
arrest is weaker than the paper's — with RT above the CPU-sustainable
level, queueing concentrates in the leader's processor where followers'
acceptance tests cannot see it, so latency keeps growing with load
(without collapse).  The adaptive-threshold extension
(``idem-adaptive``) closes exactly this gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import common

MISCONFIG_FACTORS = [1, 2, 4, 6, 8]
EXTREME_FACTORS = [2, 4, 6, 8, 10, 12, 14]
QUICK_MISCONFIG = [1, 6]
QUICK_EXTREME = [2, 14]


@dataclass
class Fig9Data:
    """Both panels of Figure 9."""

    misconfigured: list[common.Point]  # RT = 100
    extreme: list[common.Point]  # RT = 50, up to 14x

    def extreme_peak_throughput(self) -> float:
        return max(point.throughput for point in self.extreme)

    def extreme_final(self) -> common.Point:
        return self.extreme[-1]


def _settings(quick: bool, runs: int | None) -> tuple[list[int], list[int], int | None]:
    misconfig_factors = QUICK_MISCONFIG if quick else MISCONFIG_FACTORS
    extreme_factors = QUICK_EXTREME if quick else EXTREME_FACTORS
    return (
        [50 * factor for factor in misconfig_factors],
        [50 * factor for factor in extreme_factors],
        runs or (1 if quick else None),
    )


def plan_runs(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
):
    """The independent simulation specs behind :func:`run` (campaign planner)."""
    misconfig_clients, extreme_clients, runs = _settings(quick, runs)
    return common.sweep_specs(
        "idem",
        misconfig_clients,
        runs=runs,
        seed0=seed0,
        duration=duration,
        overrides={"reject_threshold": 100},
    ) + common.sweep_specs(
        "idem", extreme_clients, runs=runs, seed0=seed0, duration=duration
    )


def run(
    quick: bool = False,
    runs: int | None = None,
    seed0: int = 0,
    duration: float | None = None,
) -> Fig9Data:
    misconfig_clients, extreme_clients, runs = _settings(quick, runs)
    misconfigured = common.sweep(
        "idem",
        misconfig_clients,
        runs=runs,
        seed0=seed0,
        duration=duration,
        overrides={"reject_threshold": 100},
    )
    extreme = common.sweep(
        "idem",
        extreme_clients,
        runs=runs,
        seed0=seed0,
        duration=duration,
    )
    return Fig9Data(misconfigured, extreme)


def render(data: Fig9Data) -> str:
    part_a = common.render_table(
        "Figure 9a: misconfigured reject threshold (RT=100)",
        common.REJECT_HEADERS,
        common.point_rows(data.misconfigured, with_rejects=True),
    )
    part_b = common.render_table(
        "Figure 9b: extreme load (RT=50, up to 14x baseline)",
        common.REJECT_HEADERS,
        common.point_rows(data.extreme, with_rejects=True),
    )
    final = data.extreme_final()
    summary = (
        f"\nextreme load: peak {data.extreme_peak_throughput() / 1e3:.1f}k req/s; "
        f"at {final.load_factor:.0f}x -> {final.throughput_kops:.1f}k req/s "
        f"({100 * final.throughput / data.extreme_peak_throughput():.0f}% of peak) "
        f"at {final.latency_ms:.2f} ms"
    )
    return part_a + "\n\n" + part_b + summary

"""Saving experiment results as JSON.

Experiment modules return plain dataclasses; this module converts them
to JSON-serialisable structures so results can be archived, diffed and
plotted by external tooling (`repro-experiments --json DIR`).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses/tuples/dicts to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if hasattr(obj, "_asdict"):  # NamedTuple (check before plain tuples)
        return to_jsonable(obj._asdict())
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def save_json(data: Any, path: str | Path) -> Path:
    """Write ``data`` (any experiment result) to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_jsonable(data), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path

"""The single environment access point for experiment settings.

Everything the experiment suite reads from the process environment goes
through here, so detlint's DET004 can keep ``os.environ`` out of
library code: explicit function arguments always win, environment
variables act as default-only fallbacks, and there is exactly one
module to audit when a run behaves differently across shells.

* ``REPRO_RUNS`` — seeded runs per data point (default 2).
* ``REPRO_DURATION`` — measured run length in simulated seconds.
* ``REPRO_TAB1_REQUESTS`` — request count for Table 1's traffic cells.
* ``REPRO_SIM_CORE`` — event-core backend (``tuple``/``array``); the
  CLI seeds the process default from it (``--sim-core`` wins).
"""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """Integer environment setting with a default."""
    return int(os.environ.get(name, str(default)))


def env_float(name: str, default: float) -> float:
    """Float environment setting with a default."""
    return float(os.environ.get(name, str(default)))


def default_runs() -> int:
    """Seeded runs per data point (paper: 3; default here: 2)."""
    return env_int("REPRO_RUNS", 2)


def default_duration() -> float:
    """Simulated seconds per steady-state run."""
    return env_float("REPRO_DURATION", 1.0)


def tab1_requests() -> int:
    """Requests per Table 1 traffic cell (paper: 1,000,000)."""
    return env_int("REPRO_TAB1_REQUESTS", 200_000)


def default_sim_core() -> str:
    """Event-core backend name (``repro.sim.cores``; default ``tuple``).

    Only a default: ``--sim-core`` (applied by the CLI via
    ``set_default_core``) and an explicit ``RunSpec.core`` both beat it.
    The name is validated where it is applied, not here.
    """
    return os.environ.get("REPRO_SIM_CORE", "tuple")

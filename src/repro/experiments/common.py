"""Shared machinery for the experiment suite.

Runs are averaged over multiple seeds like the paper averages over three
runs (Section 7.1).  Durations and run counts scale down in *quick* mode
(used by the test suite); explicit ``runs``/``duration`` arguments win,
and environment variables act as default-only fallbacks (``REPRO_RUNS``,
``REPRO_DURATION`` — read via :mod:`repro.experiments.settings`, the
single sanctioned environment access point).

Every simulation an experiment needs goes through :func:`execute_run`
(and :func:`execute_tab1_cell` for Table 1's traffic cells).  By default
these execute inline; the campaign engine (``repro.campaign``) installs
an executor via :func:`use_executor` to serve results from its parallel,
content-addressed job store instead.  Experiments therefore stay plain
serial code — the aggregation order, and hence the rendered output, is
identical whether results are computed inline or fanned out.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Protocol

from repro.cluster.faults import FaultSchedule
from repro.cluster.metrics import ExperimentResult
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec, run_experiment

# Environment access lives in repro.experiments.settings (the single
# module detlint's DET004 allows to read os.environ); these re-exports
# keep the long-standing import path working.
from repro.experiments.settings import default_duration, default_runs

__all__ = ["default_duration", "default_runs"]  # re-exported settings


class ExperimentExecutor(Protocol):
    """Where experiment jobs actually run (inline by default).

    ``repro.campaign`` provides implementations that serve results from
    a process pool and a content-addressed cache.
    """

    def run_spec(self, spec: RunSpec) -> ExperimentResult:
        """Produce the result of one seeded simulation run."""
        ...

    def run_cell(self, kwargs: dict[str, Any]) -> Any:
        """Produce one Table 1 traffic cell (``tab1_overhead.measure_cell``)."""
        ...


_executor: Optional[ExperimentExecutor] = None


@contextmanager
def use_executor(executor: ExperimentExecutor) -> Iterator[ExperimentExecutor]:
    """Route :func:`execute_run`/:func:`execute_tab1_cell` through ``executor``."""
    global _executor
    previous = _executor
    _executor = executor
    try:
        yield executor
    finally:
        _executor = previous


def execute_run(spec: RunSpec) -> ExperimentResult:
    """Execute one run, through the installed executor if there is one."""
    if _executor is not None:
        return _executor.run_spec(spec)
    return run_experiment(spec)


def execute_tab1_cell(**kwargs: Any) -> Any:
    """Execute one Table 1 cell, through the installed executor if any."""
    if _executor is not None:
        return _executor.run_cell(dict(kwargs))
    from repro.experiments.tab1_overhead import measure_cell

    return measure_cell(**kwargs)


@dataclass
class Point:
    """One averaged data point of a sweep (one marker in a paper figure)."""

    system: str
    clients: int
    load_factor: float
    throughput: float
    throughput_std: float
    latency_ms: float
    latency_std_ms: float
    reject_throughput: float
    reject_latency_ms: float
    reject_latency_std_ms: float
    timeouts: int
    runs: int
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_kops(self) -> float:
        """Successful throughput in thousands of requests per second."""
        return self.throughput / 1e3

    @property
    def reject_share(self) -> float:
        """Fraction of operations that ended in rejection."""
        total = self.throughput + self.reject_throughput
        return self.reject_throughput / total if total else 0.0


def point_specs(
    system: str,
    clients: int,
    runs: Optional[int] = None,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    seed0: int = 0,
    overrides: Optional[dict[str, Any]] = None,
    profile: Optional[ClusterProfile] = None,
    faults: Optional[FaultSchedule] = None,
) -> list[RunSpec]:
    """The ``runs`` seeded specs behind one averaged data point.

    This is the single place where sweep defaults (run count, duration,
    warm-up, profile) are resolved, so the campaign planner and the
    inline execution path always agree on the exact specs of a point.
    """
    runs = runs or default_runs()
    duration = duration or default_duration()
    warmup = warmup if warmup is not None else min(0.3, duration / 3)
    profile = profile or ClusterProfile()
    return [
        RunSpec(
            system=system,
            clients=clients,
            duration=duration,
            warmup=warmup,
            seed=seed0 + run_index,
            overrides=dict(overrides or {}),
            profile=profile,
            faults=faults,
        )
        for run_index in range(runs)
    ]


def sweep_specs(
    system: str,
    client_counts: list[int],
    **kwargs: Any,
) -> list[RunSpec]:
    """All specs of a sweep, in execution order (campaign planning)."""
    return [
        spec
        for clients in client_counts
        for spec in point_specs(system, clients, **kwargs)
    ]


def averaged_point(
    system: str,
    clients: int,
    runs: Optional[int] = None,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    seed0: int = 0,
    overrides: Optional[dict[str, Any]] = None,
    profile: Optional[ClusterProfile] = None,
    faults: Optional[FaultSchedule] = None,
) -> Point:
    """Run ``runs`` seeded simulations and average the paper's metrics."""
    specs = point_specs(
        system,
        clients,
        runs=runs,
        duration=duration,
        warmup=warmup,
        seed0=seed0,
        overrides=overrides,
        profile=profile,
        faults=faults,
    )
    profile = specs[0].profile or ClusterProfile()
    runs = len(specs)
    results = [execute_run(spec) for spec in specs]
    throughputs = [result.throughput for result in results]
    latencies = [result.latency.mean * 1e3 for result in results]
    latency_stds = [result.latency.std * 1e3 for result in results]
    reject_tputs = [result.reject_throughput for result in results]
    reject_lats = [result.reject_latency.mean * 1e3 for result in results]
    reject_stds = [result.reject_latency.std * 1e3 for result in results]
    return Point(
        system=system,
        clients=clients,
        load_factor=clients / profile.baseline_clients,
        throughput=_mean(throughputs),
        throughput_std=_spread(throughputs),
        latency_ms=_mean(latencies),
        latency_std_ms=_mean(latency_stds),
        reject_throughput=_mean(reject_tputs),
        reject_latency_ms=_mean(reject_lats),
        reject_latency_std_ms=_mean(reject_stds),
        timeouts=sum(result.timeouts for result in results),
        runs=runs,
    )


def sweep(
    system: str,
    client_counts: list[int],
    **kwargs: Any,
) -> list[Point]:
    """One averaged point per client count."""
    return [averaged_point(system, clients, **kwargs) for clients in client_counts]


def jain_fairness(shares: list[float]) -> float:
    """Jain's fairness index of per-client shares: 1.0 = perfectly fair,
    ``1/len`` = one client gets everything.  Used to check the paper's
    claim that AQM's rotating prioritisation keeps client outcomes even
    (Section 5.1)."""
    if not shares:
        return 1.0
    total = sum(shares)
    squares = sum(share * share for share in shares)
    if squares == 0:
        return 1.0
    return (total * total) / (len(shares) * squares)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _spread(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Format an aligned plain-text table, paper style."""
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def point_rows(points: list[Point], with_rejects: bool = False) -> list[list[str]]:
    """Standard table rows for a list of points."""
    rows = []
    for point in points:
        row = [
            point.system,
            str(point.clients),
            f"{point.load_factor:.1f}x",
            f"{point.throughput_kops:.1f}k",
            f"{point.latency_ms:.2f}",
            f"{point.latency_std_ms:.2f}",
        ]
        if with_rejects:
            row.extend(
                [
                    f"{point.reject_throughput:.0f}",
                    f"{100 * point.reject_share:.1f}%",
                    f"{point.reject_latency_ms:.2f}",
                ]
            )
        rows.append(row)
    return rows


POINT_HEADERS = ["system", "clients", "load", "tput", "lat ms", "lat std"]
REJECT_HEADERS = POINT_HEADERS + ["rej/s", "rej %", "rej lat ms"]

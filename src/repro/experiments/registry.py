"""Registry mapping experiment ids to their modules."""

from __future__ import annotations

from types import ModuleType

from repro.experiments import (
    fig2_existing_protocols,
    fig3_lbr_crash,
    fig6_comparison,
    fig7_reject_behavior,
    fig8_threshold,
    fig9_disruptive,
    fig10_replica_crash,
    tab1_overhead,
)

EXPERIMENTS: dict[str, ModuleType] = {
    "fig2": fig2_existing_protocols,
    "fig3": fig3_lbr_crash,
    "fig6": fig6_comparison,
    "fig7": fig7_reject_behavior,
    "tab1": tab1_overhead,
    "fig8": fig8_threshold,
    "fig9": fig9_disruptive,
    "fig10": fig10_replica_crash,
}


def run_experiment_by_id(
    experiment_id: str, quick: bool = False, seed0: int = 0
) -> str:
    """Run one experiment and return its rendered report."""
    module = EXPERIMENTS.get(experiment_id)
    if module is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    data = module.run(quick=quick, seed0=seed0)
    return module.render(data)

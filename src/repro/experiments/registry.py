"""Registry mapping experiment ids to their modules.

Every experiment module exposes the same interface:

* ``run(quick=False, runs=None, seed0=0, duration=None)`` — measure and
  return the experiment's data object.
* ``render(data)`` — the paper-style plain-text report for that data.
* ``plan_runs(...)`` (or ``plan_cells(...)`` for Table 1) — the
  independent job specs behind ``run``, used by the campaign planner
  (``repro.campaign``) to fan work out without executing anything.

``runs`` and ``duration`` are explicit arguments (no process-global
state): the ``REPRO_RUNS``/``REPRO_DURATION`` environment variables act
only as default fallbacks inside ``experiments.common`` when the
arguments are left as ``None``.
"""

from __future__ import annotations

from types import ModuleType
from typing import Optional

from repro.experiments import (
    fig2_existing_protocols,
    fig3_lbr_crash,
    fig6_comparison,
    fig7_reject_behavior,
    fig8_threshold,
    fig9_disruptive,
    fig10_replica_crash,
    figM_million_users,
    figR_retry_storm,
    tab1_overhead,
)

EXPERIMENTS: dict[str, ModuleType] = {
    "fig2": fig2_existing_protocols,
    "fig3": fig3_lbr_crash,
    "fig6": fig6_comparison,
    "fig7": fig7_reject_behavior,
    "tab1": tab1_overhead,
    "fig8": fig8_threshold,
    "fig9": fig9_disruptive,
    "fig10": fig10_replica_crash,
    "figR": figR_retry_storm,
    "figM": figM_million_users,
}


def get_experiment(experiment_id: str) -> ModuleType:
    """The module behind ``experiment_id``; raise a clear error if unknown."""
    module = EXPERIMENTS.get(experiment_id)
    if module is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return module


def run_experiment_by_id(
    experiment_id: str,
    quick: bool = False,
    seed0: int = 0,
    runs: Optional[int] = None,
    duration: Optional[float] = None,
) -> str:
    """Run one experiment and return its rendered report.

    ``runs`` and ``duration`` override the per-experiment defaults and
    reach ``experiments.common`` explicitly (not via environment
    variables), so concurrent callers cannot race on global state.
    """
    module = get_experiment(experiment_id)
    data = module.run(quick=quick, runs=runs, seed0=seed0, duration=duration)
    return module.render(data)

"""Tiny plain-text plotting helpers for experiment reports.

The experiment renderers emit paper-style tables; for timeline-shaped
artefacts (the crash figures) a sparkline or a small scatter makes the
shape visible directly in the terminal and in the saved reports.
"""

from __future__ import annotations

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], maximum: float | None = None) -> str:
    """Render values as a one-line unicode sparkline.

    Values are scaled to ``maximum`` (default: the series maximum); an
    empty series renders as an empty string.
    """
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        level = int(min(1.0, max(0.0, value / top)) * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def timeline_sparkline(
    series: list[tuple[float, float]],
    start: float,
    end: float,
    buckets: int = 60,
) -> str:
    """Resample a ``(time, value)`` series onto a fixed-width sparkline."""
    if not series or end <= start:
        return ""
    width = (end - start) / buckets
    sums = [0.0] * buckets
    counts = [0] * buckets
    for time, value in series:
        if not start <= time < end:
            continue
        index = min(buckets - 1, int((time - start) / width))
        sums[index] += value
        counts[index] += 1
    values = [sums[i] / counts[i] if counts[i] else 0.0 for i in range(buckets)]
    return sparkline(values)


def scatter(
    points: list[tuple[float, float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A minimal text scatter plot of ``(x, y)`` points."""
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = "o"
    lines = [f"{y_label} ({y_min:.3g} .. {y_max:.3g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_min:.3g} .. {x_max:.3g})")
    return "\n".join(lines)

"""IDEM: targeting tail latency in replicated systems with proactive rejection.

A from-scratch Python reproduction of Lawniczak and Distler,
MIDDLEWARE '24 — the IDEM replication protocol with collaborative
proactive rejection, its baselines (Paxos, Paxos_LBR, BFT-SMaRt-like),
and the full evaluation, all running on a deterministic discrete-event
simulator.

Quickstart::

    from repro import RunSpec, run_experiment

    result = run_experiment(RunSpec(system="idem", clients=100))
    print(result.describe())

See ``examples/`` for richer scenarios and ``repro.experiments`` for the
paper's figures and tables.
"""

from repro.cluster.builder import SYSTEMS, Cluster, build_cluster
from repro.cluster.faults import CrashFault, FaultSchedule
from repro.cluster.metrics import ExperimentResult, MetricsCollector
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec, run_experiment
from repro.core.client import IdemClient
from repro.core.config import IdemConfig
from repro.core.replica import IdemReplica

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterProfile",
    "CrashFault",
    "ExperimentResult",
    "FaultSchedule",
    "IdemClient",
    "IdemConfig",
    "IdemReplica",
    "MetricsCollector",
    "RunSpec",
    "SYSTEMS",
    "__version__",
    "build_cluster",
    "run_experiment",
]

"""Array-backed event core: the opt-in ``EventLoop`` replacement.

:class:`ArrayEventLoop` schedules and dispatches **exactly** the same
callbacks in **exactly** the same order as the tuple-heap
:class:`~repro.sim.loop.EventLoop` — the equivalence suite renders
fig2/fig6/figR byte-identically with either core — but it never
allocates a per-event ``Event`` object:

* **Fire-and-forget fast path.**  ``call_after`` is the hot scheduling
  entry point (every network delivery and service completion lands
  there) and *nothing in the tree keeps its return value*, so the
  callback rides directly in the heap entry as a ``(time, seq,
  callback, args)`` 4-tuple.  No event object, no cancellation
  bookkeeping — scheduling is one tuple and one sift.
* **Slot lanes for cancellable events.**  ``call_at`` must return a
  cancellable handle (the lazy-deadline timers depend on it), so each
  of those events additionally owns a *slot* drawn from a free-list
  pool.  The slot indexes preallocated parallel lanes — fire time and
  issue sequence as plain lists (pointer stores; typed ``array``
  lanes measurably lose here because every read boxes a fresh int —
  see docs/SIMULATOR.md), plus a ``bytearray`` of tombstone flags —
  and the heap entry becomes a
  ``(time, seq, callback, args, slot)`` 5-tuple.  The returned handle
  is a pooled per-slot :class:`ArrayEvent`, revalidated by one integer
  store on every reuse; cancelling sets one tombstone byte.  Steady-
  state ``call_at`` scheduling therefore allocates no per-event
  objects either — the lanes, the free list and the handle pool are
  all reused, growing only when more events are simultaneously
  pending than ever before.

Mixed-arity heap entries are safe: the sequence number is globally
unique, so tuple comparison always terminates at element 1 and never
compares a callback against another callback.

Differences from the tuple core's *handle* semantics (dispatch order
and all counters are identical):

* ``call_after`` returns ``None`` — cancel-by-handle is a ``call_at``
  feature.  (On the tuple core nothing uses those handles either; here
  the contract is explicit.)
* A pooled handle is only meaningful while its event is pending.  Once
  the event fires or is drained, the handle goes *stale* — it reports
  ``cancelled == True`` ("can no longer be cancelled") and ``time ==
  nan`` where a fired tuple-core ``Event`` keeps reading ``False`` —
  and once its slot is reissued by a later ``call_at``, the *same
  object* is revalidated for the new event, so a retained old
  reference aliases that new event.  The only in-tree handle consumer
  (``repro.sim.timers``) drops or replaces its reference inside
  ``_fire`` before any reuse can occur, so neither divergence is
  observable in-tree; both are pinned by the unit tests as the
  documented behaviour.  Holding a handle past its event's lifetime
  and acting on it later is outside the contract.

See ``docs/SIMULATOR.md`` (Array-backed core) for the layout and
guidance on when to enable it (``RunSpec.core`` / ``--sim-core`` /
``REPRO_SIM_CORE``).
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable

from repro.sim import loop as loop_module
from repro.sim.errors import SchedulingError, StoppedError

#: Initial number of preallocated cancellable-event slots; lanes double
#: when the free list runs dry, so this only sets the smallest footprint.
INITIAL_SLOTS = 256

#: Lane value marking a slot as unissued (no live handle validates
#: against it; real sequence numbers start at 0).
_FREE_SEQ = -1


class ArrayEvent:
    """A pooled, reusable handle to one cancellable scheduled callback.

    One instance exists per lane slot for the lifetime of the loop; it
    is (re)issued by ``call_at`` by stamping the event's sequence
    number into it.  While its event is pending the handle behaves
    like a tuple-core ``Event``; once the event fires or is drained it
    goes stale (``cancelled == True`` / ``time == nan`` / ``cancel()``
    is a no-op), and a later ``call_at`` that reuses the slot
    revalidates this same object for the new event.  Use it during its
    event's lifetime only — see the module docstring.
    """

    __slots__ = ("_loop", "_slot", "_seq")

    def __init__(self, loop: "ArrayEventLoop", slot: int):
        self._loop = loop
        self._slot = slot
        self._seq = _FREE_SEQ

    @property
    def seq(self) -> int:
        """Sequence number this handle was issued with."""
        return self._seq

    @property
    def time(self) -> float:
        """Scheduled fire time, or ``nan`` once the handle is stale."""
        loop = self._loop
        slot = self._slot
        if loop._seqs[slot] != self._seq:
            return math.nan
        return loop._times[slot]

    @property
    def cancelled(self) -> bool:
        """Whether the event will not fire anymore.

        ``True`` both for an explicitly cancelled pending event and for
        a stale handle (already fired, drained or slot recycled) — in
        every case, cancelling through this handle can no longer have
        an effect.
        """
        loop = self._loop
        slot = self._slot
        if loop._seqs[slot] != self._seq:
            return True
        return bool(loop._dead[slot])

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op when stale."""
        loop = self._loop
        slot = self._slot
        if loop._seqs[slot] == self._seq and not loop._dead[slot]:
            loop._dead[slot] = 1
            loop._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._loop._seqs[self._slot] != self._seq:
            return f"ArrayEvent(slot={self._slot}, stale)"
        state = "cancelled" if self._loop._dead[self._slot] else "pending"
        return (
            f"ArrayEvent(t={self._loop._times[self._slot]:.6f}, "
            f"seq={self._seq}, slot={self._slot}, {state})"
        )


class ArrayEventLoop:
    """Drop-in :class:`~repro.sim.loop.EventLoop` with array-lane storage.

    The public surface (``now``/counters/``call_at``/``call_after``/
    ``run_until``/``run``/``stop``/``resume``/``drain_cancelled``) and
    every observable counter match the tuple core exactly; see the
    module docstring for the two documented handle-semantics
    differences.
    """

    def __init__(self, start_time: float = 0.0, auto_drain: bool | None = None):
        self._now = start_time
        # Mixed 4-/5-tuple entries; seq (element 1) is globally unique,
        # so comparisons never reach element 2.
        self._heap: list[tuple] = []
        self._seq = 0
        self._stopped = False
        self._dispatched = 0
        self._cancelled_pending = 0
        self._drained = 0
        self._peak_heap = 0
        #: Same knob (and module default) as the tuple core; purely a
        #: space/speed dial — dispatch order is unaffected either way.
        self.auto_drain = (
            loop_module.AUTO_DRAIN_DEFAULT if auto_drain is None else auto_drain
        )
        # Parallel lanes for cancellable (call_at) events, indexed by
        # slot.  Times/seqs are plain lists: lane traffic is pointer
        # stores of objects already in hand, where typed arrays would
        # box a fresh int on every read.  The tombstone flags stay a
        # bytearray (reads yield cached small ints; 1 byte per slot).
        self._times = [0.0] * INITIAL_SLOTS
        self._seqs = [_FREE_SEQ] * INITIAL_SLOTS
        self._dead = bytearray(INITIAL_SLOTS)
        self._free = list(range(INITIAL_SLOTS - 1, -1, -1))
        self._handles = [ArrayEvent(self, slot) for slot in range(INITIAL_SLOTS)]

    # -- identical read-only surface ---------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    @property
    def cancelled_pending(self) -> int:
        """Cancelled tombstones currently sitting in the heap."""
        return self._cancelled_pending

    @property
    def drained_tombstones(self) -> int:
        """Total tombstones removed by (auto or explicit) drains."""
        return self._drained

    @property
    def peak_heap(self) -> int:
        """Largest heap size observed so far (capacity planning metric)."""
        return self._peak_heap

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` was called (and not yet :meth:`resume`\\ d)."""
        return self._stopped

    @property
    def allocated_slots(self) -> int:
        """Current lane capacity (free + in-use cancellable slots)."""
        return len(self._seqs)

    # -- scheduling ---------------------------------------------------

    def call_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> ArrayEvent:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        Returns the slot's pooled :class:`ArrayEvent` handle, revalidated
        for this event — cancellable until it fires.
        """
        if self._stopped:
            raise StoppedError("cannot schedule events on a stopped loop")
        if when < self._now:
            raise SchedulingError(
                f"cannot schedule event in the past: {when:.6f} < now {self._now:.6f}"
            )
        free = self._free
        if not free:
            self._grow()
        slot = free.pop()
        seq = self._seq
        self._seq = seq + 1
        self._times[slot] = when
        self._seqs[slot] = seq
        heap = self._heap
        heappush(heap, (when, seq, callback, args, slot))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        handle = self._handles[slot]
        handle._seq = seq
        return handle

    def call_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay`` seconds.

        The fire-and-forget fast path: the callback rides in the heap
        entry itself and **no handle is returned** — use
        :meth:`call_at` for an event that must be cancellable.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        if self._stopped:
            raise StoppedError("cannot schedule events on a stopped loop")
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heappush(heap, (self._now + delay, seq, callback, args))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def _grow(self) -> None:
        """Double the lane capacity (free list was empty)."""
        old = len(self._seqs)
        new = old * 2
        self._times.extend([0.0] * old)
        self._seqs.extend([_FREE_SEQ] * old)
        self._dead.extend(bytes(old))
        self._free.extend(range(new - 1, old - 1, -1))
        self._handles.extend(ArrayEvent(self, slot) for slot in range(old, new))

    # -- running ------------------------------------------------------

    def stop(self) -> None:
        """Stop the loop; :meth:`run_until` returns at the next dispatch point."""
        self._stopped = True

    def resume(self) -> None:
        """Re-arm a stopped loop.  The clock stays where dispatch halted."""
        self._stopped = False

    def run_until(self, horizon: float) -> None:
        """Dispatch events in order until the clock would pass ``horizon``.

        Same contract as the tuple core: the clock reads exactly
        ``horizon`` on return unless a :meth:`stop` halted dispatch at
        an event boundary, and a stopped loop raises
        :class:`StoppedError` instead of running.
        """
        if self._stopped:
            raise StoppedError(
                "cannot run a stopped loop; call resume() to continue dispatch"
            )
        heap = self._heap
        pop = heappop
        seqs = self._seqs
        dead = self._dead
        free_slot = self._free.append
        while heap and not self._stopped:
            entry = heap[0]
            when = entry[0]
            if when > horizon:
                break
            pop(heap)
            if len(entry) == 5:
                # Cancellable event: retire its slot (stamping the seq
                # lane stales the pooled handle) *before* the callback,
                # so a rescheduling callback (Timer._fire) can reuse it.
                slot = entry[4]
                seqs[slot] = _FREE_SEQ
                free_slot(slot)
                if dead[slot]:
                    dead[slot] = 0
                    self._cancelled_pending -= 1
                    continue
            self._now = when
            self._dispatched += 1
            entry[2](*entry[3])
        if not self._stopped and self._now < horizon:
            self._now = horizon

    def run(self) -> None:
        """Dispatch events until the heap is exhausted or the loop stops."""
        if self._stopped:
            raise StoppedError(
                "cannot run a stopped loop; call resume() to continue dispatch"
            )
        heap = self._heap
        pop = heappop
        seqs = self._seqs
        dead = self._dead
        free_slot = self._free.append
        while heap and not self._stopped:
            entry = pop(heap)
            if len(entry) == 5:
                slot = entry[4]
                seqs[slot] = _FREE_SEQ
                free_slot(slot)
                if dead[slot]:
                    dead[slot] = 0
                    self._cancelled_pending -= 1
                    continue
            self._now = entry[0]
            self._dispatched += 1
            entry[2](*entry[3])

    # -- tombstones ---------------------------------------------------

    def _note_cancelled(self) -> None:
        """One more tombstone; compact the heap when they dominate it.

        Reads the thresholds off :mod:`repro.sim.loop` dynamically so
        the equivalence tests' monkeypatching covers both cores — the
        drain *sequence* must be identical for identical cancel
        traffic.
        """
        count = self._cancelled_pending + 1
        self._cancelled_pending = count
        if (
            self.auto_drain
            and count >= loop_module.DRAIN_MIN_TOMBSTONES
            and count * 2 >= len(self._heap)
        ):
            self.drain_cancelled()

    def drain_cancelled(self) -> int:
        """Remove cancelled events from the heap; returns how many dropped.

        In-place compaction like the tuple core (safe under a running
        ``run_until``); the freed slots return to the pool.
        """
        heap = self._heap
        seqs = self._seqs
        dead = self._dead
        free_slot = self._free.append
        before = len(heap)
        kept = []
        keep = kept.append
        for entry in heap:
            if len(entry) == 5 and dead[entry[4]]:
                slot = entry[4]
                seqs[slot] = _FREE_SEQ
                dead[slot] = 0
                free_slot(slot)
            else:
                keep(entry)
        heap[:] = kept
        heapify(heap)
        dropped = before - len(heap)
        self._cancelled_pending = 0
        self._drained += dropped
        return dropped

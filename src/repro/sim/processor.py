"""Serial CPU service stations.

A :class:`Processor` models one replica's CPU as a FIFO queue of jobs,
each with a simulated service time.  When more work arrives than the
station can serve, jobs queue up and their completion is delayed — this
queueing is the *only* source of overload behaviour in the simulator,
which is exactly the phenomenon the paper's evaluation measures
(Figures 2, 6 and 9: latency explodes once the offered load exceeds the
saturation point).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Optional

from repro.sim.loop import EventLoop


class Processor:
    """A serial FIFO service station bound to an event loop.

    Jobs submitted via :meth:`submit` are served one at a time; each job
    occupies the processor for its service ``cost`` (simulated seconds)
    and its callback runs at completion time.  The station keeps
    utilisation and queueing statistics for experiment reporting.

    ``jitter_sigma`` adds log-normal noise to every job's service time,
    modelling OS scheduling and processing-time variation — the source
    of the cross-replica divergence the paper's acceptance tests have to
    cope with (Section 5.1).  ``jitter_rng`` must be provided when the
    sigma is non-zero so runs stay reproducible.
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str = "cpu",
        speed: float = 1.0,
        jitter_sigma: float = 0.0,
        jitter_rng: Optional[random.Random] = None,
    ):
        if speed <= 0:
            raise ValueError(f"processor speed must be positive, got {speed}")
        if jitter_sigma < 0:
            raise ValueError(f"jitter sigma must be non-negative, got {jitter_sigma}")
        if jitter_sigma > 0 and jitter_rng is None:
            raise ValueError("jitter requires an explicit RNG for reproducibility")
        self._loop = loop
        self.name = name
        self.speed = speed
        self.jitter_sigma = jitter_sigma
        self._jitter_rng = jitter_rng
        self._queue: deque[tuple[float, Callable[..., Any], tuple]] = deque()
        self._busy_until: float = 0.0
        self._running = False
        self._halted = False
        # Statistics.
        self.jobs_completed = 0
        self.busy_time = 0.0
        self.max_queue_length = 0

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """Whether a job is currently in service."""
        return self._running

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the station spent serving jobs."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def halt(self) -> None:
        """Stop serving jobs permanently (models a crashed replica).

        Queued jobs are dropped and future submissions are ignored.
        """
        self._halted = True
        self._queue.clear()

    def set_speed(self, speed: float) -> None:
        """Change the station's service speed (gray-failure injection).

        Only jobs submitted from now on are affected: already-queued
        jobs had their service time fixed at submission, matching a CPU
        whose frequency changes between, not within, scheduled slices.
        """
        if speed <= 0:
            raise ValueError(f"processor speed must be positive, got {speed}")
        self.speed = speed

    def submit(self, cost: float, callback: Callable[..., Any], *args: Any) -> None:
        """Enqueue a job with service time ``cost / speed``.

        The callback runs when the job *completes* service; queueing
        delay is implicit in when that happens.
        """
        if self._halted:
            return
        if cost < 0:
            raise ValueError(f"negative job cost: {cost}")
        if self.jitter_sigma > 0.0 and cost > 0.0:
            cost *= self._jitter_rng.lognormvariate(0.0, self.jitter_sigma)
        self._queue.append((cost / self.speed, callback, args))
        if len(self._queue) > self.max_queue_length:
            self.max_queue_length = len(self._queue)
        if not self._running:
            self._start_next()

    def _start_next(self) -> None:
        if self._halted or not self._queue:
            self._running = False
            return
        cost, callback, args = self._queue.popleft()
        self._running = True
        self.busy_time += cost
        self._loop.call_after(cost, self._complete, callback, args)

    def _complete(self, callback: Callable[..., Any], args: tuple) -> None:
        if self._halted:
            self._running = False
            return
        self.jobs_completed += 1
        # Run the job body before starting the next one so that any work
        # it submits lands behind jobs that were already queued.
        callback(*args)
        self._start_next()

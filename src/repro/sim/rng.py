"""Named, independently seeded random-number streams.

Every stochastic component of the simulator (network latency, workload
key choice, acceptance-test coin flips, client backoff, ...) draws from
its own named stream so that changing how often one component consumes
randomness never perturbs another.  This is what makes experiments with
and without a feature (e.g. IDEM vs IDEM_noPR) comparable under the same
root seed.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """A factory of deterministic :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed is derived from the
    root seed and the name via SHA-256, so stream identities are stable
    across processes and Python versions.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.root_seed}:spawn:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams


def request_hash_unit(cid: int, onr: int, salt: int = 0) -> float:
    """Map a request id to a pseudo-random point in [0, 1).

    This is the "pseudo-random function with the same seed for each
    request" from the paper's acceptance test (Section 5.1): because the
    value depends only on the request id (and a shared salt), replicas
    evaluating it independently obtain the same number, nudging them
    toward unanimous accept/reject decisions.
    """
    digest = hashlib.blake2b(
        f"{salt}:{cid}:{onr}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64

"""Measurement primitives used by the experiment harness.

These classes record what the paper's evaluation plots: latency samples
with mean/std/percentile summaries (:class:`LatencyRecorder`), bucketed
time series of throughput and latency for crash timelines
(:class:`TimeSeries`, :class:`CounterSeries`), and windowed interval
statistics (:class:`IntervalRecorder`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a sample: count, mean, standard deviation, percentiles."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    # The 99.9th percentile: the paper targets tail latency, and at
    # experiment sample sizes p99 alone under-resolves the tail.
    p999: float = 0.0

    @staticmethod
    def empty() -> "SummaryStats":
        """The summary of an empty sample (all statistics are zero)."""
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    @staticmethod
    def of(samples: list[float]) -> "SummaryStats":
        """Compute the summary of ``samples`` (which is not modified)."""
        if not samples:
            return SummaryStats.empty()
        ordered = sorted(samples)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((x - mean) ** 2 for x in ordered) / n
        return SummaryStats(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p90=_percentile(ordered, 0.90),
            p99=_percentile(ordered, 0.99),
            p999=_percentile(ordered, 0.999),
        )


def _bucket_index(time: float, width: float) -> int:
    """Bucket index of ``time``, robust to float division noise."""
    return int(time / width + 1e-9)


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    lo = ordered[low]
    # lo + f*(hi-lo) rather than lo*(1-f) + hi*f: the latter underflows
    # to 0.0 for denormal samples (0.5 * 5e-324 rounds to zero), which
    # can report a percentile below the sample minimum.  This form
    # returns lo exactly when lo == hi.
    return lo + fraction * (ordered[high] - lo)


class LatencyRecorder:
    """Collects latency samples, optionally restricted to a measurement window.

    Samples recorded before ``window_start`` or after ``window_end`` are
    discarded, which is how experiments exclude warm-up and cool-down.
    """

    def __init__(self, window_start: float = 0.0, window_end: float = math.inf):
        self.window_start = window_start
        self.window_end = window_end
        self.samples: list[float] = []

    def record(self, time: float, latency: float) -> None:
        """Record one latency sample taken at simulated time ``time``."""
        if self.window_start <= time <= self.window_end:
            self.samples.append(latency)

    def summary(self) -> SummaryStats:
        """Summarise the collected samples."""
        return SummaryStats.of(self.samples)

    def __len__(self) -> int:
        return len(self.samples)


class CounterSeries:
    """Counts events into fixed-width time buckets (e.g. completions per 100 ms)."""

    def __init__(self, bucket_width: float = 0.1):
        if bucket_width <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket_width}")
        self.bucket_width = bucket_width
        self._buckets: dict[int, int] = {}

    def record(self, time: float, count: int = 1) -> None:
        """Add ``count`` events at simulated time ``time``."""
        index = int(time / self.bucket_width)
        self._buckets[index] = self._buckets.get(index, 0) + count

    def total(self) -> int:
        """Total number of events recorded."""
        return sum(self._buckets.values())

    def count_in_bucket(self, index: int) -> int:
        """Number of events recorded in bucket ``index``."""
        return self._buckets.get(index, 0)

    def series(self) -> list[tuple[float, float]]:
        """Return ``(bucket_start_time, events_per_second)`` pairs in time order."""
        if not self._buckets:
            return []
        first = min(self._buckets)
        last = max(self._buckets)
        return [
            (index * self.bucket_width, self._buckets.get(index, 0) / self.bucket_width)
            for index in range(first, last + 1)
        ]

    def rate_between(self, start: float, end: float) -> float:
        """Average events per second over ``[start, end)``."""
        if end <= start:
            return 0.0
        first = _bucket_index(start, self.bucket_width)
        last = _bucket_index(end, self.bucket_width)
        total = sum(
            self._buckets.get(index, 0) for index in range(first, last)
        )
        return total / (end - start) if last > first else 0.0


class TimeSeries:
    """Averages scalar samples into fixed-width time buckets.

    Used for crash-timeline plots: latency per 100 ms bucket, etc.
    """

    def __init__(self, bucket_width: float = 0.1):
        if bucket_width <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket_width}")
        self.bucket_width = bucket_width
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def record(self, time: float, value: float) -> None:
        """Record one sample at simulated time ``time``."""
        index = int(time / self.bucket_width)
        self._sums[index] = self._sums.get(index, 0.0) + value
        self._counts[index] = self._counts.get(index, 0) + 1

    def series(self) -> list[tuple[float, float]]:
        """Return ``(bucket_start_time, mean_value)`` pairs; empty buckets are skipped."""
        return [
            (index * self.bucket_width, self._sums[index] / self._counts[index])
            for index in sorted(self._sums)
        ]

    def mean_between(self, start: float, end: float) -> float:
        """Mean of samples whose bucket start lies in ``[start, end)``."""
        first = _bucket_index(start, self.bucket_width)
        last = _bucket_index(end, self.bucket_width)
        total = 0.0
        count = 0
        for index in range(first, last):
            if index in self._sums:
                total += self._sums[index]
                count += self._counts[index]
        return total / count if count else 0.0


@dataclass
class IntervalRecorder:
    """Tracks gaps between consecutive occurrences of an event.

    Used to measure e.g. the longest period without any rejection being
    delivered (the "reject downtime" of Figure 3 / Figure 10d).
    """

    last_time: float | None = None
    gaps: list[float] = field(default_factory=list)
    gap_ends: list[float] = field(default_factory=list)

    def record(self, time: float) -> None:
        """Record an occurrence at simulated time ``time``."""
        if self.last_time is not None:
            self.gaps.append(time - self.last_time)
            self.gap_ends.append(time)
        self.last_time = time

    def longest_gap(self, until: float | None = None) -> float:
        """The longest observed gap; optionally extends to a final time ``until``."""
        longest = max(self.gaps, default=0.0)
        if until is not None and self.last_time is not None:
            longest = max(longest, until - self.last_time)
        return longest

    def longest_gap_overlapping(self, start: float, until: float | None = None) -> float:
        """The longest gap that overlaps ``[start, ...]`` (e.g. after a crash)."""
        longest = 0.0
        for gap, end in zip(self.gaps, self.gap_ends):
            if end >= start:
                longest = max(longest, gap)
        if until is not None and self.last_time is not None and until >= start:
            longest = max(longest, until - self.last_time)
        return longest

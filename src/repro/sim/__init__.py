"""Discrete-event simulation kernel.

This package provides the deterministic substrate on which every
replicated system in this repository runs: a single-threaded event loop
with a simulated clock (:class:`EventLoop`), cancellable timers
(:class:`Timer`, :class:`RestartableTimer`), named pseudo-random number
streams for reproducibility (:class:`RngRegistry`), serial CPU service
stations that create realistic queueing behaviour under load
(:class:`Processor`), and measurement helpers (:mod:`repro.sim.monitor`).

All simulated time is expressed in seconds as floats.
"""

from repro.sim.arraycore import ArrayEvent, ArrayEventLoop
from repro.sim.cores import (
    CORE_ARRAY,
    CORE_TUPLE,
    CORES,
    get_default_core,
    make_loop,
    set_default_core,
    use_core,
)
from repro.sim.errors import SimulationError, StoppedError
from repro.sim.loop import EventLoop, Event
from repro.sim.monitor import (
    CounterSeries,
    IntervalRecorder,
    LatencyRecorder,
    SummaryStats,
    TimeSeries,
)
from repro.sim.processor import Processor
from repro.sim.rng import RngRegistry
from repro.sim.timers import RestartableTimer, Timer

__all__ = [
    "ArrayEvent",
    "ArrayEventLoop",
    "CORES",
    "CORE_ARRAY",
    "CORE_TUPLE",
    "CounterSeries",
    "Event",
    "EventLoop",
    "get_default_core",
    "make_loop",
    "set_default_core",
    "use_core",
    "IntervalRecorder",
    "LatencyRecorder",
    "Processor",
    "RestartableTimer",
    "RngRegistry",
    "SimulationError",
    "StoppedError",
    "SummaryStats",
    "TimeSeries",
    "Timer",
]

"""Event-core selection: the ``tuple``/``array`` backend registry.

Both cores dispatch callbacks in exactly the same order (the
equivalence suite holds that line byte-for-byte), so which one a run
uses is a pure performance knob — like ``auto_drain`` — and is
deliberately **excluded** from campaign job payloads and cache keys:
results computed by either core are interchangeable.

Resolution order for a run:

1. an explicit ``core=`` argument (``RunSpec.core`` →
   ``build_cluster``), then
2. the process-wide default set here (:func:`set_default_core`), which
   the CLI seeds from ``--sim-core`` / the ``REPRO_SIM_CORE``
   environment variable (read in ``repro.experiments.settings``, the
   sanctioned env access point) and the campaign pool forwards to its
   spawn workers.

Tests flip the default with the :func:`use_core` context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.sim.arraycore import ArrayEventLoop
from repro.sim.loop import EventLoop

#: The default core: per-event ``Event`` objects on a tuple-keyed heap.
CORE_TUPLE = "tuple"
#: The opt-in array-backed core (:mod:`repro.sim.arraycore`).
CORE_ARRAY = "array"

#: Core name -> loop class, in documentation order.
CORES = {
    CORE_TUPLE: EventLoop,
    CORE_ARRAY: ArrayEventLoop,
}

_default_core = CORE_TUPLE


def _validate(core: str) -> str:
    if core not in CORES:
        raise ValueError(
            f"unknown event core {core!r}; choose from {', '.join(CORES)}"
        )
    return core


def get_default_core() -> str:
    """The core used when a loop is built without an explicit choice."""
    return _default_core


def set_default_core(core: str) -> str:
    """Set the process-wide default core; returns the previous one."""
    global _default_core
    previous = _default_core
    _default_core = _validate(core)
    return previous


@contextmanager
def use_core(core: str) -> Iterator[None]:
    """Temporarily switch the default core (equivalence tests)."""
    previous = set_default_core(core)
    try:
        yield
    finally:
        set_default_core(previous)


def make_loop(
    core: Optional[str] = None,
    start_time: float = 0.0,
    auto_drain: bool | None = None,
):
    """Build an event loop of the requested (or default) core."""
    name = _default_core if core is None else _validate(core)
    return CORES[name](start_time=start_time, auto_drain=auto_drain)

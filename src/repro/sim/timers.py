"""Timer helpers built on top of the event loop.

Protocol code mostly needs two shapes of timer:

* :class:`Timer` — a one-shot timer that can be armed, cancelled and
  re-armed (each arm replaces the previous one).
* :class:`RestartableTimer` — the view-change / progress timer pattern:
  a fixed delay that is repeatedly restarted while progress is observed
  and fires only when left alone for a full period.

Both use a **lazy-deadline** scheme.  A naive re-arm cancels the pending
heap entry and pushes a fresh one, which on a progress timer means one
tombstone plus one ``heappush`` per *observation* — millions per
saturated run.  Instead the timer keeps the authoritative expiry in a
``deadline`` field and leaves the already-scheduled heap entry alone
whenever it fires no later than the new deadline.  When that entry
fires early, ``_fire`` notices the deadline has moved and reschedules
itself for the remainder; the callback still runs exactly at the
deadline, but re-arming is now a float assignment instead of heap
churn.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.loop import Event, EventLoop


class Timer:
    """A one-shot, re-armable timer.

    ``start(delay)`` schedules the callback; starting an already-running
    timer replaces the previous expiry, so at most one expiry is
    outstanding at any time.  At most one heap entry exists per timer
    (the lazy-deadline scheme above), so a timer re-armed a million
    times still occupies a single slot in the loop's heap.
    """

    def __init__(self, loop: EventLoop, callback: Callable[..., Any], *args: Any):
        self._loop = loop
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None
        self._deadline: Optional[float] = None

    @property
    def running(self) -> bool:
        """Whether an expiry is currently scheduled."""
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        """Absolute simulated time of the pending expiry, or ``None``."""
        return self._deadline

    def start(self, delay: float) -> None:
        """Arm the timer to fire after ``delay`` seconds, replacing any pending expiry."""
        deadline = self._loop.now + delay
        self._deadline = deadline
        event = self._event
        if event is not None and not event.cancelled and event.time <= deadline:
            # Lazy re-arm: the pending entry fires at or before the new
            # deadline; _fire will reschedule for the remainder then.
            return
        if event is not None:
            event.cancel()
        self._event = self._loop.call_at(deadline, self._fire)

    def cancel(self) -> None:
        """Disarm the timer.  Idempotent.

        The heap entry (if any) is left in place as a stale no-op — a
        later :meth:`start` can reuse it, and letting it fire idle is
        cheaper than tombstoning it on every cancel.
        """
        self._deadline = None

    def _fire(self) -> None:
        deadline = self._deadline
        if deadline is None:
            # Cancelled after this entry was scheduled; nothing to do.
            self._event = None
            return
        loop = self._loop
        if deadline > loop.now:
            # The deadline moved while this entry was in flight;
            # reschedule for the remainder.
            self._event = loop.call_at(deadline, self._fire)
            return
        self._event = None
        self._deadline = None
        self._callback(*self._args)


class RestartableTimer:
    """A progress timer with a fixed period.

    The pattern from the paper's view-change mechanism: the timer is
    (re)started whenever there is outstanding work, restarted whenever
    progress is observed, and stopped when the node goes idle.  The
    callback fires only if a full period elapses without a restart.

    Thanks to the lazy-deadline :class:`Timer` underneath, a restart is
    a constant-time field update — the storm of restarts a saturated
    replica produces no longer floods the event heap with tombstones.
    """

    def __init__(self, loop: EventLoop, period: float, callback: Callable[..., Any], *args: Any):
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self.period = period
        self._timer = Timer(loop, callback, *args)

    @property
    def running(self) -> bool:
        """Whether the timer is armed."""
        return self._timer.running

    @property
    def deadline(self) -> Optional[float]:
        """Absolute simulated time of the pending expiry, or ``None``."""
        return self._timer.deadline

    def start(self) -> None:
        """Arm (or re-arm) the timer for one full period from now."""
        self._timer.start(self.period)

    def restart(self) -> None:
        """Alias of :meth:`start`, used when progress is observed."""
        self._timer.start(self.period)

    def stop(self) -> None:
        """Disarm the timer."""
        self._timer.cancel()

"""Timer helpers built on top of the event loop.

Protocol code mostly needs two shapes of timer:

* :class:`Timer` — a one-shot timer that can be armed, cancelled and
  re-armed (each arm replaces the previous one).
* :class:`RestartableTimer` — the view-change / progress timer pattern:
  a fixed delay that is repeatedly restarted while progress is observed
  and fires only when left alone for a full period.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.loop import Event, EventLoop


class Timer:
    """A one-shot, re-armable timer.

    ``start(delay)`` schedules the callback; starting an already-running
    timer cancels the pending expiry first, so at most one expiry is
    outstanding at any time.
    """

    def __init__(self, loop: EventLoop, callback: Callable[..., Any], *args: Any):
        self._loop = loop
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        """Whether an expiry is currently scheduled."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm the timer to fire after ``delay`` seconds, replacing any pending expiry."""
        self.cancel()
        self._event = self._loop.call_after(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback(*self._args)


class RestartableTimer:
    """A progress timer with a fixed period.

    The pattern from the paper's view-change mechanism: the timer is
    (re)started whenever there is outstanding work, restarted whenever
    progress is observed, and stopped when the node goes idle.  The
    callback fires only if a full period elapses without a restart.
    """

    def __init__(self, loop: EventLoop, period: float, callback: Callable[..., Any], *args: Any):
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self.period = period
        self._timer = Timer(loop, callback, *args)

    @property
    def running(self) -> bool:
        """Whether the timer is armed."""
        return self._timer.running

    def start(self) -> None:
        """Arm (or re-arm) the timer for one full period from now."""
        self._timer.start(self.period)

    def restart(self) -> None:
        """Alias of :meth:`start`, used when progress is observed."""
        self._timer.start(self.period)

    def stop(self) -> None:
        """Disarm the timer."""
        self._timer.cancel()

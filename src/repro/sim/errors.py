"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulation kernel."""


class StoppedError(SimulationError):
    """Raised when an operation is attempted on a stopped event loop."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or with a bad delay."""

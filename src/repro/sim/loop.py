"""The deterministic event loop at the heart of the simulator.

The loop maintains a priority queue of :class:`Event` objects keyed by
``(time, sequence_number)``.  The sequence number breaks ties between
events scheduled for the same instant, which makes every simulation run
bit-for-bit reproducible for a given seed: two events scheduled for the
same simulated time always fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.errors import SchedulingError, StoppedError


class Event:
    """A scheduled callback.

    Events are returned by :meth:`EventLoop.call_at` and
    :meth:`EventLoop.call_after` and can be cancelled before they fire.
    Cancelled events stay in the heap but are skipped on dispatch, which
    is much cheaper than removing them eagerly.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """A single-threaded discrete-event scheduler with a simulated clock.

    Typical use::

        loop = EventLoop()
        loop.call_after(1.0, print, "one second of simulated time")
        loop.run_until(10.0)

    The clock only advances when events are dispatched; a run with no
    events takes no wall-clock time regardless of the simulated horizon.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: list[Event] = []
        self._seq = 0
        self._stopped = False
        self._dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if self._stopped:
            raise StoppedError("cannot schedule events on a stopped loop")
        if when < self._now:
            raise SchedulingError(
                f"cannot schedule event in the past: {when:.6f} < now {self._now:.6f}"
            )
        event = Event(when, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def stop(self) -> None:
        """Stop the loop; :meth:`run_until` returns at the next dispatch point."""
        self._stopped = True

    def run_until(self, horizon: float) -> None:
        """Dispatch events in order until the clock would pass ``horizon``.

        On return the clock reads exactly ``horizon`` (unless the loop
        was stopped early), so back-to-back calls with increasing
        horizons behave like one long run.
        """
        heap = self._heap
        while heap and not self._stopped:
            event = heap[0]
            if event.time > horizon:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._dispatched += 1
            event.callback(*event.args)
        if not self._stopped and self._now < horizon:
            self._now = horizon

    def run(self) -> None:
        """Dispatch events until the heap is exhausted or the loop stops."""
        heap = self._heap
        while heap and not self._stopped:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._dispatched += 1
            event.callback(*event.args)

    def drain_cancelled(self) -> int:
        """Remove cancelled events from the heap; returns how many were dropped.

        Long-running simulations with heavy timer churn may call this
        occasionally to bound heap growth.
        """
        before = len(self._heap)
        alive = [event for event in self._heap if not event.cancelled]
        heapq.heapify(alive)
        self._heap = alive
        return before - len(alive)

"""The deterministic event loop at the heart of the simulator.

The loop maintains a priority queue of :class:`Event` objects keyed by
``(time, sequence_number)``.  The sequence number breaks ties between
events scheduled for the same instant, which makes every simulation run
bit-for-bit reproducible for a given seed: two events scheduled for the
same simulated time always fire in the order they were scheduled.

Heap entries are plain ``(time, seq, event)`` tuples rather than the
events themselves, so every sift inside ``heappush``/``heappop``
compares tuples in C instead of calling ``Event.__lt__`` — on saturated
runs those comparisons dominate the dispatch loop (see
``docs/SIMULATOR.md``, Performance).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable

from repro.sim.errors import SchedulingError, StoppedError

#: Default for :attr:`EventLoop.auto_drain`; module-level so tests can
#: flip it for loops built deep inside an experiment (the equivalence
#: suite runs fig2 with auto-drain off and demands identical output).
AUTO_DRAIN_DEFAULT = True

#: Auto-drain only considers acting above this many tombstones — below
#: it, the cancelled entries cost less than the heapify would.
DRAIN_MIN_TOMBSTONES = 512


class Event:
    """A scheduled callback.

    Events are returned by :meth:`EventLoop.call_at` and
    :meth:`EventLoop.call_after` and can be cancelled before they fire.
    Cancelled events stay in the heap but are skipped on dispatch, which
    is much cheaper than removing them eagerly; the loop tracks the
    tombstone count and compacts the heap when they pile up.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        loop: "EventLoop | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._loop is not None:
                self._loop._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """A single-threaded discrete-event scheduler with a simulated clock.

    Typical use::

        loop = EventLoop()
        loop.call_after(1.0, print, "one second of simulated time")
        loop.run_until(10.0)

    The clock only advances when events are dispatched; a run with no
    events takes no wall-clock time regardless of the simulated horizon.

    **Stop/resume contract.**  :meth:`stop` halts dispatch at the next
    event boundary and leaves the clock wherever the last event fired —
    deliberately short of the requested horizon.  A stopped loop rejects
    both scheduling *and* running (:class:`StoppedError`), so a caller
    cannot accidentally "resume" into a clock that silently lags its
    horizon.  :meth:`resume` re-arms the loop explicitly; the clock then
    continues monotonically from where dispatch halted (no time travel
    in either direction).
    """

    def __init__(self, start_time: float = 0.0, auto_drain: bool | None = None):
        self._now = start_time
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._stopped = False
        self._dispatched = 0
        # Tombstone bookkeeping: cancelled events still sitting in the
        # heap, and how many drains have removed so far.
        self._cancelled_pending = 0
        self._drained = 0
        self._peak_heap = 0
        #: Compact the heap automatically when cancelled tombstones
        #: exceed half of it (and :data:`DRAIN_MIN_TOMBSTONES`).  Purely
        #: a space/speed knob — dispatch order is unaffected either way.
        self.auto_drain = AUTO_DRAIN_DEFAULT if auto_drain is None else auto_drain

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    @property
    def cancelled_pending(self) -> int:
        """Cancelled tombstones currently sitting in the heap."""
        return self._cancelled_pending

    @property
    def drained_tombstones(self) -> int:
        """Total tombstones removed by (auto or explicit) drains."""
        return self._drained

    @property
    def peak_heap(self) -> int:
        """Largest heap size observed so far (capacity planning metric)."""
        return self._peak_heap

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` was called (and not yet :meth:`resume`\\ d)."""
        return self._stopped

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if self._stopped:
            raise StoppedError("cannot schedule events on a stopped loop")
        if when < self._now:
            raise SchedulingError(
                f"cannot schedule event in the past: {when:.6f} < now {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, args, self)
        heap = self._heap
        heappush(heap, (when, seq, event))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return event

    def call_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds of simulated time.

        This is the hottest scheduling entry point (every network send
        and service completion lands here), so the :meth:`call_at` body
        is inlined rather than delegated — a non-negative delay can
        never land in the past, which removes that check too.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        if self._stopped:
            raise StoppedError("cannot schedule events on a stopped loop")
        when = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, args, self)
        heap = self._heap
        heappush(heap, (when, seq, event))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return event

    def stop(self) -> None:
        """Stop the loop; :meth:`run_until` returns at the next dispatch point."""
        self._stopped = True

    def resume(self) -> None:
        """Re-arm a stopped loop.  The clock stays where dispatch halted."""
        self._stopped = False

    def run_until(self, horizon: float) -> None:
        """Dispatch events in order until the clock would pass ``horizon``.

        On return the clock reads exactly ``horizon``, so back-to-back
        calls with increasing horizons behave like one long run.  The
        exception is a :meth:`stop` during the run: dispatch halts at
        the next event boundary and the clock stays at the last
        dispatched event — strictly before ``horizon``.  Running (or
        scheduling on) the loop again without an explicit
        :meth:`resume` raises :class:`StoppedError`.
        """
        if self._stopped:
            raise StoppedError(
                "cannot run a stopped loop; call resume() to continue dispatch"
            )
        heap = self._heap
        pop = heappop
        while heap and not self._stopped:
            entry = heap[0]
            when = entry[0]
            if when > horizon:
                break
            pop(heap)
            event = entry[2]
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = when
            self._dispatched += 1
            event.callback(*event.args)
        if not self._stopped and self._now < horizon:
            self._now = horizon

    def run(self) -> None:
        """Dispatch events until the heap is exhausted or the loop stops.

        Like :meth:`run_until`, raises :class:`StoppedError` when called
        on an already-stopped loop.
        """
        if self._stopped:
            raise StoppedError(
                "cannot run a stopped loop; call resume() to continue dispatch"
            )
        heap = self._heap
        pop = heappop
        while heap and not self._stopped:
            entry = pop(heap)
            event = entry[2]
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = entry[0]
            self._dispatched += 1
            event.callback(*event.args)

    def _note_cancelled(self) -> None:
        """One more tombstone; compact the heap when they dominate it."""
        count = self._cancelled_pending + 1
        self._cancelled_pending = count
        if (
            self.auto_drain
            and count >= DRAIN_MIN_TOMBSTONES
            and count * 2 >= len(self._heap)
        ):
            self.drain_cancelled()

    def drain_cancelled(self) -> int:
        """Remove cancelled events from the heap; returns how many were dropped.

        Compacts **in place** (the list object is reused), so a
        ``run_until`` currently iterating the heap — auto-drain can
        trigger from a callback's ``cancel()`` — keeps operating on the
        live heap.  Dispatch order is unchanged: the heap invariant is
        re-established over exactly the surviving entries.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapify(heap)
        dropped = before - len(heap)
        self._cancelled_pending = 0
        self._drained += dropped
        return dropped

"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    repro-experiments fig6                  # one experiment, full settings
    repro-experiments all --quick           # everything, scaled-down
    repro-experiments campaign --jobs 4     # parallel, cached campaign
    repro-experiments campaign --check      # gate against BENCH_* baselines
    repro-experiments lint --check          # detlint determinism/purity gate
    repro-experiments population --validate # aggregate-vs-object equivalence
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.registry import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # detlint has its own option surface (rule filters, baseline
        # handling); hand the remaining arguments straight to it.
        from repro.analysis import main as lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the IDEM paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help=(
            "experiment id (fig2, fig3, fig6, fig7, tab1, fig8, fig9, fig10, "
            "figR, figM), "
            "'all', 'campaign' for a parallel cached campaign, 'chaos' for a "
            "randomized fault-injection run, 'trace' for a traced run with "
            "request-lifecycle analysis, 'obs' for a probed run with "
            "replica-state series and drift detection, 'perf' for the "
            "simulator microbenchmark scenarios, 'population' for the "
            "aggregate-client backend validation harness, or 'lint' for the "
            "detlint determinism/purity static-analysis pass"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down settings (faster, coarser)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="seeded runs per data point (default: REPRO_RUNS or 2)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="measured seconds per steady-state run (default: REPRO_DURATION or 1.0)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each experiment's raw data as JSON into DIR",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--sim-core",
        choices=("tuple", "array"),
        default=None,
        help=(
            "event-core backend for every simulation this invocation runs "
            "(default: REPRO_SIM_CORE or 'tuple'); both cores produce "
            "byte-identical results — this is a speed knob"
        ),
    )
    parser.add_argument(
        "--protocol",
        default="idem",
        help="system to run against (chaos and trace only)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=20,
        help="closed-loop clients driving the run (chaos and trace only)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default="traces",
        help="directory for trace exports (trace only; default: traces/)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many slowest requests to break down (trace only)",
    )
    campaign = parser.add_argument_group("campaign options")
    campaign.add_argument(
        "--experiments",
        default="all",
        help="comma-separated experiment ids for the campaign (default: all)",
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="parallel worker processes (0 = one per CPU; campaign only)",
    )
    campaign.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help=(
            "slice each shardable sim run into K independent client cohorts "
            "executed in parallel and merged deterministically (campaign "
            "only; default: 1 = unsharded)"
        ),
    )
    campaign.add_argument(
        "--cache-dir",
        default="benchmarks/results/cache",
        help="content-addressed result cache directory (campaign only)",
    )
    campaign.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely (campaign only)",
    )
    campaign.add_argument(
        "--verify",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="re-run this fraction of cache hits and diff them (campaign only)",
    )
    campaign.add_argument(
        "--check",
        action="store_true",
        help="gate headline metrics against BENCH_* baselines; exit 1 on regression",
    )
    campaign.add_argument(
        "--update-baselines",
        action="store_true",
        help="refresh the BENCH_* baseline files from this campaign's results",
    )
    campaign.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="directory holding the BENCH_*.json baselines (campaign only)",
    )
    campaign.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a machine-readable campaign report (JSON) to PATH",
    )
    campaign.add_argument(
        "--slowest",
        type=int,
        default=0,
        metavar="K",
        help="list the K most expensive jobs from the per-job profiles "
        "(campaign only; stderr)",
    )
    campaign.add_argument(
        "--gc",
        action="store_true",
        help="garbage-collect the result cache (prune entries no recent "
        "campaign referenced) and exit without running anything",
    )
    campaign.add_argument(
        "--gc-keep",
        type=int,
        default=5,
        metavar="N",
        help="with --gc: keep every entry the last N campaign runs "
        "referenced (default: 5)",
    )
    campaign.add_argument(
        "--gc-max-age-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="with --gc: additionally remove entries older than DAYS, "
        "referenced or not",
    )
    obs = parser.add_argument_group("obs options")
    obs.add_argument(
        "--mode",
        choices=("report", "series", "detect"),
        default="report",
        help=(
            "obs only: 'report' prints a per-node series summary plus the "
            "drift findings, 'series' exports the probe series (JSONL + "
            "Perfetto counters) into --out, 'detect' runs the drift "
            "detectors and exits 1 on any finding"
        ),
    )
    obs.add_argument(
        "--scenario",
        choices=("steady", "storm"),
        default="steady",
        help=(
            "obs only: 'steady' probes a closed-loop run of "
            "--protocol/--clients/--duration, 'storm' probes the figR "
            "reject-retry storm arm (idem/naive-any; scenario-fixed)"
        ),
    )
    population = parser.add_argument_group("population options")
    population.add_argument(
        "--validate",
        action="store_true",
        help=(
            "population only: run the aggregate-vs-object-clients "
            "equivalence sweep and exit 1 if any row is outside tolerance"
        ),
    )
    perf = parser.add_argument_group("perf options")
    perf.add_argument(
        "--scenarios",
        default="all",
        help="comma-separated perf scenario names (perf only; default: all)",
    )
    perf.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="runs per scenario, fastest kept (perf only; default: 3)",
    )
    perf.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scenario size multiplier (perf only; default: 1.0)",
    )
    args = parser.parse_args(argv)

    # Apply the event-core choice process-wide before anything builds a
    # loop: explicit --sim-core wins, REPRO_SIM_CORE (read through the
    # sanctioned settings accessor) is the fallback default.  The
    # campaign pool re-applies this in its spawn workers.
    from repro.experiments.settings import default_sim_core
    from repro.sim.cores import set_default_core

    try:
        set_default_core(
            args.sim_core if args.sim_core is not None else default_sim_core()
        )
    except ValueError as error:  # bad REPRO_SIM_CORE value
        print(f"repro-experiments: {error}", file=sys.stderr)
        return 2

    if args.experiment == "chaos":
        return run_chaos_command(args)
    if args.experiment == "trace":
        return run_trace_command(args)
    if args.experiment == "obs":
        return run_obs_command(args)
    if args.experiment == "campaign":
        return run_campaign_command(args)
    if args.experiment == "perf":
        return run_perf_command(args)
    if args.experiment == "population":
        return run_population_command(args)

    if args.list:
        for experiment_id, module in EXPERIMENTS.items():
            headline = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{experiment_id:6s} {headline}")
        return 0

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if any(experiment_id not in EXPERIMENTS for experiment_id in ids):
        bad = [i for i in ids if i not in EXPERIMENTS]
        print(f"unknown experiment(s): {bad}; use --list", file=sys.stderr)
        return 2

    for experiment_id in ids:
        started = time.time()
        module = EXPERIMENTS[experiment_id]
        # runs/duration are threaded explicitly (no env-var mutation):
        # the REPRO_RUNS/REPRO_DURATION environment variables are only
        # read as defaults when these stay None.
        data = module.run(
            quick=args.quick,
            runs=args.runs,
            seed0=args.seed,
            duration=args.duration,
        )
        elapsed = time.time() - started
        print(module.render(data))
        if args.json:
            from repro.experiments.io import save_json

            path = save_json(data, f"{args.json}/{experiment_id}.json")
            print(f"[raw data saved to {path}]")
        print(f"\n[{experiment_id} finished in {elapsed:.1f}s wall time]\n")
    return 0


def run_campaign_command(args) -> int:
    """Plan, execute (in parallel, against the cache) and gate a campaign.

    stdout carries only the rendered experiment reports — fully
    deterministic, so two runs with the same settings diff clean.
    Progress, cache statistics and the baseline verdict go to stderr;
    ``--report`` additionally writes a machine-readable JSON artifact.
    """
    from repro.campaign import (
        CacheVerificationError,
        CampaignOptions,
        render_shards,
        render_slowest,
        render_summary,
        run_campaign,
        write_report,
    )

    def echo(message: str) -> None:
        print(message, file=sys.stderr)

    if args.gc:
        from repro.campaign import ResultCache
        from repro.campaign.gc import collect_garbage

        if args.no_cache:
            print("campaign: --gc is meaningless with --no-cache", file=sys.stderr)
            return 2
        try:
            report = collect_garbage(
                ResultCache(args.cache_dir),
                keep_runs=args.gc_keep,
                max_age_days=args.gc_max_age_days,
            )
        except ValueError as error:  # bad --gc-keep
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        print(report.render())
        return 0

    try:
        options = CampaignOptions(
            experiments=[part for part in args.experiments.split(",") if part],
            quick=args.quick,
            runs=args.runs,
            duration=args.duration,
            seed0=args.seed,
            jobs=args.jobs,
            shards=args.shards,
            cache_dir=None if args.no_cache else args.cache_dir,
            verify_fraction=args.verify,
            check=args.check,
            update_baselines=args.update_baselines,
            baseline_dir=args.baseline_dir,
            echo=echo,
        )
        result = run_campaign(options)
    except KeyError as error:
        print(f"campaign: {error.args[0]}", file=sys.stderr)
        return 2
    except CacheVerificationError as error:
        print(f"campaign: {error}", file=sys.stderr)
        return 1

    for outcome in result.outcomes:
        print(outcome.text)
        print()
    print(render_summary(result), file=sys.stderr)
    if args.shards > 1:
        shard_lines = render_shards(result)
        if shard_lines:
            print(shard_lines, file=sys.stderr)
    if args.slowest > 0:
        print(render_slowest(result, args.slowest), file=sys.stderr)
    if result.baseline_report is not None:
        print(result.baseline_report.render(), file=sys.stderr)
    if args.json:
        from repro.experiments.io import save_json

        for outcome in result.outcomes:
            path = save_json(outcome.data, f"{args.json}/{outcome.experiment_id}.json")
            print(f"campaign: raw data saved to {path}", file=sys.stderr)
    if args.report:
        path = write_report(args.report, result)
        print(f"campaign: report written to {path}", file=sys.stderr)
    return result.exit_code


def run_perf_command(args) -> int:
    """Run the simulator microbenchmark scenarios (repro.perf).

    Prints an events/sec table to stdout (wall-clock content — not
    byte-stable).  ``--check`` gates against the committed
    ``BENCH_simulator.json``: dispatched-event counts exactly, rates
    within the baseline's tolerance band; exit 1 on failure.
    ``--update-baselines`` refreshes that file from this run, and
    ``--report`` writes the raw measurements as JSON.
    """
    import json

    from repro.perf import (
        check_perf_baseline,
        render_results,
        results_jsonable,
        run_scenarios,
        write_perf_baseline,
    )

    try:
        names = (
            None
            if args.scenarios in ("all", "")
            else [part for part in args.scenarios.split(",") if part]
        )
        results = run_scenarios(names, repeat=args.repeat, scale=args.scale)
    except KeyError as error:
        print(f"perf: {error.args[0]}", file=sys.stderr)
        return 2
    print(render_results(results))
    if args.report:
        document = results_jsonable(results, repeat=args.repeat, scale=args.scale)
        os.makedirs(os.path.dirname(args.report) or ".", exist_ok=True)
        with open(args.report, "w") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"perf: report written to {args.report}", file=sys.stderr)
    if args.update_baselines:
        path = write_perf_baseline(args.baseline_dir, results, scale=args.scale)
        print(f"perf: baseline written to {path}", file=sys.stderr)
        return 0
    if args.check:
        report = check_perf_baseline(args.baseline_dir, results, scale=args.scale)
        print(report.render(), file=sys.stderr)
        return report.exit_code
    return 0


def run_population_command(args) -> int:
    """Validate the aggregate population backend against object clients.

    Runs the exact-closed-loop equivalence sweep from
    ``repro.population.validate`` (both backends, same seed, N in the
    validation sweep) and prints the comparison table.  Exits 1 when
    any row falls outside the tolerance bands — the CI
    ``population-validate`` job's gate.  Without ``--validate`` this
    prints usage guidance and exits 2.
    """
    from repro.population.validate import validate_population

    if not args.validate:
        print(
            "population: nothing to do; pass --validate to run the "
            "aggregate-vs-object-clients equivalence sweep",
            file=sys.stderr,
        )
        return 2
    report = validate_population(seed=args.seed if args.seed else 1)
    print(report.render())
    return 0 if report.ok else 1


def run_chaos_command(args) -> int:
    """Run a seeded chaos campaign; exit 1 on any invariant violation.

    The report printed to stdout is fully deterministic for a given
    option set (no wall-clock content), so two runs with the same seed
    can be compared byte-for-byte — see the CI determinism job.
    """
    from repro.cluster.chaos import ChaosOptions, run_chaos

    try:
        options = ChaosOptions(
            system=args.protocol,
            clients=args.clients,
            duration=args.duration if args.duration is not None else 30.0,
            seed=args.seed,
        )
        report = run_chaos(options)
    except ValueError as error:  # unknown system, bad duration, ...
        print(f"chaos: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.ok else 1


def run_trace_command(args) -> int:
    """Run one traced scenario and emit/summarise its traces.

    Writes a JSONL event log and a Chrome trace-event JSON (loadable in
    Perfetto / ``chrome://tracing``) into ``--out``, then prints the
    top-K slowest requests with per-hop latency breakdowns and the
    reject-reason histogram.  The traced run is byte-identical to an
    untraced run of the same spec (the observer-only invariant).
    """
    from repro.cluster.runner import RunSpec, run_experiment
    from repro.obs import render_report, write_chrome_trace, write_jsonl

    duration = args.duration if args.duration is not None else 1.0
    try:
        spec = RunSpec(
            system=args.protocol,
            clients=args.clients,
            duration=duration,
            warmup=min(0.3, duration * 0.3),
            seed=args.seed,
            observe=True,
        )
        result = run_experiment(spec)
    except ValueError as error:  # unknown system, bad duration, ...
        print(f"trace: {error}", file=sys.stderr)
        return 2
    hub = result.obs
    os.makedirs(args.out, exist_ok=True)
    base = f"{args.protocol}-seed{args.seed}"
    jsonl_path = os.path.join(args.out, f"{base}.jsonl")
    chrome_path = os.path.join(args.out, f"{base}.trace.json")
    with open(jsonl_path, "w") as stream:
        lines = write_jsonl(hub.tracer, stream)
    with open(chrome_path, "w") as stream:
        events = write_chrome_trace(hub.tracer, stream, hub.registry)
    print(result.describe())
    print(f"[{lines} events -> {jsonl_path}]")
    print(f"[{events} Chrome trace events -> {chrome_path}]")
    print()
    print(render_report(hub.tracer, hub.registry, k=args.top))
    return 0


def run_obs_command(args) -> int:
    """Run one probed scenario: replica-state series + drift detection.

    ``--mode report`` prints a per-(node, series) summary table and the
    drift-detector findings; ``--mode series`` exports every retained
    probe sample as JSONL plus a Perfetto counter-track document into
    ``--out``; ``--mode detect`` prints only the findings and exits 1
    when there are any (the CI smoke gate).  All output is
    deterministic for a given option set.
    """
    from repro.cluster.runner import RunSpec, run_experiment
    from repro.obs import write_series_chrome_trace, write_series_jsonl

    try:
        if args.scenario == "storm":
            from repro.experiments.figR_retry_storm import (
                ANY_RETRY,
                BASE_OVERRIDES,
                IDEM_OVERRIDES,
                storm_spec,
            )

            overrides = {**BASE_OVERRIDES, **IDEM_OVERRIDES, **ANY_RETRY}
            spec = storm_spec(
                "idem", "naive-any", overrides, args.seed, probes=True
            )
            base = f"storm-idem-naive-any-seed{args.seed}"
        else:
            duration = args.duration if args.duration is not None else 1.0
            spec = RunSpec(
                system=args.protocol,
                clients=args.clients,
                duration=duration,
                warmup=min(0.3, duration * 0.3),
                seed=args.seed,
                probes=True,
            )
            base = f"{args.protocol}-seed{args.seed}"
        result = run_experiment(spec)
    except ValueError as error:  # unknown system, bad duration, ...
        print(f"obs: {error}", file=sys.stderr)
        return 2

    recorder = result.obs.recorder
    findings = result.findings or []

    def render_findings_lines() -> str:
        if not findings:
            return "drift findings: none"
        lines = [f"drift findings: {len(findings)}"]
        for finding in findings:
            lines.append(
                f"  [{finding['rule']}] {finding['node']} "
                f"{finding['start']:.2f}-{finding['end']:.2f}s — "
                f"{finding['summary']}"
            )
        return "\n".join(lines)

    if args.mode == "series":
        os.makedirs(args.out, exist_ok=True)
        jsonl_path = os.path.join(args.out, f"{base}.series.jsonl")
        perfetto_path = os.path.join(args.out, f"{base}.counters.json")
        with open(jsonl_path, "w") as stream:
            lines = write_series_jsonl(recorder, stream)
        with open(perfetto_path, "w") as stream:
            events = write_series_chrome_trace(recorder, stream)
        print(f"[{lines} samples -> {jsonl_path}]")
        print(f"[{events} counter events -> {perfetto_path}]")
        print(render_findings_lines())
        return 0

    if args.mode == "detect":
        print(render_findings_lines())
        return 1 if findings else 0

    # report: one line per (node, series) with window stats + quantiles.
    print(
        f"{len(recorder)} series, {recorder.samples_recorded} samples, "
        f"{len(recorder.marks)} fault mark(s)"
    )
    header = (
        f"{'node':10s} {'series':24s} {'n':>6s} {'min':>10s} "
        f"{'mean':>10s} {'max':>10s} {'last':>10s} {'p50':>10s} {'p99':>10s}"
    )
    print(header)
    print("-" * len(header))
    for (node, name), series in recorder.items():
        stats = series.window(0.0, spec.duration)
        print(
            f"{node:10s} {name:24s} {stats.count:>6d} {stats.min:>10.2f} "
            f"{stats.mean:>10.2f} {stats.max:>10.2f} {stats.last:>10.2f} "
            f"{series.quantile(0.5):>10.2f} {series.quantile(0.99):>10.2f}"
        )
    print()
    print(render_findings_lines())
    return 0


if __name__ == "__main__":
    sys.exit(main())

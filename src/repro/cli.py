"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    repro-experiments fig6            # one experiment, full settings
    repro-experiments all --quick     # everything, scaled-down
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.registry import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the IDEM paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment id (fig2, fig3, fig6, fig7, tab1, fig8, fig9, fig10) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down settings (faster, coarser)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="seeded runs per data point (default: REPRO_RUNS or 2)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="measured seconds per steady-state run (default: REPRO_DURATION or 1.0)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each experiment's raw data as JSON into DIR",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    args = parser.parse_args(argv)
    if args.runs is not None:
        os.environ["REPRO_RUNS"] = str(args.runs)
    if args.duration is not None:
        os.environ["REPRO_DURATION"] = str(args.duration)

    if args.list:
        for experiment_id, module in EXPERIMENTS.items():
            headline = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{experiment_id:6s} {headline}")
        return 0

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if any(experiment_id not in EXPERIMENTS for experiment_id in ids):
        bad = [i for i in ids if i not in EXPERIMENTS]
        print(f"unknown experiment(s): {bad}; use --list", file=sys.stderr)
        return 2

    for experiment_id in ids:
        started = time.time()
        module = EXPERIMENTS[experiment_id]
        data = module.run(quick=args.quick, seed0=args.seed)
        elapsed = time.time() - started
        print(module.render(data))
        if args.json:
            from repro.experiments.io import save_json

            path = save_json(data, f"{args.json}/{experiment_id}.json")
            print(f"[raw data saved to {path}]")
        print(f"\n[{experiment_id} finished in {elapsed:.1f}s wall time]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    repro-experiments fig6            # one experiment, full settings
    repro-experiments all --quick     # everything, scaled-down
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.registry import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the IDEM paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help=(
            "experiment id (fig2, fig3, fig6, fig7, tab1, fig8, fig9, fig10), "
            "'all', 'chaos' for a randomized fault-injection run, or 'trace' "
            "for a traced run with request-lifecycle analysis"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down settings (faster, coarser)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="seeded runs per data point (default: REPRO_RUNS or 2)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="measured seconds per steady-state run (default: REPRO_DURATION or 1.0)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each experiment's raw data as JSON into DIR",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--protocol",
        default="idem",
        help="system to run against (chaos and trace only)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=20,
        help="closed-loop clients driving the run (chaos and trace only)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default="traces",
        help="directory for trace exports (trace only; default: traces/)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many slowest requests to break down (trace only)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "chaos":
        return run_chaos_command(args)
    if args.experiment == "trace":
        return run_trace_command(args)
    if args.runs is not None:
        os.environ["REPRO_RUNS"] = str(args.runs)
    if args.duration is not None:
        os.environ["REPRO_DURATION"] = str(args.duration)

    if args.list:
        for experiment_id, module in EXPERIMENTS.items():
            headline = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{experiment_id:6s} {headline}")
        return 0

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if any(experiment_id not in EXPERIMENTS for experiment_id in ids):
        bad = [i for i in ids if i not in EXPERIMENTS]
        print(f"unknown experiment(s): {bad}; use --list", file=sys.stderr)
        return 2

    for experiment_id in ids:
        started = time.time()
        module = EXPERIMENTS[experiment_id]
        data = module.run(quick=args.quick, seed0=args.seed)
        elapsed = time.time() - started
        print(module.render(data))
        if args.json:
            from repro.experiments.io import save_json

            path = save_json(data, f"{args.json}/{experiment_id}.json")
            print(f"[raw data saved to {path}]")
        print(f"\n[{experiment_id} finished in {elapsed:.1f}s wall time]\n")
    return 0


def run_chaos_command(args) -> int:
    """Run a seeded chaos campaign; exit 1 on any invariant violation.

    The report printed to stdout is fully deterministic for a given
    option set (no wall-clock content), so two runs with the same seed
    can be compared byte-for-byte — see the CI determinism job.
    """
    from repro.cluster.chaos import ChaosOptions, run_chaos

    try:
        options = ChaosOptions(
            system=args.protocol,
            clients=args.clients,
            duration=args.duration if args.duration is not None else 30.0,
            seed=args.seed,
        )
        report = run_chaos(options)
    except ValueError as error:  # unknown system, bad duration, ...
        print(f"chaos: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.ok else 1


def run_trace_command(args) -> int:
    """Run one traced scenario and emit/summarise its traces.

    Writes a JSONL event log and a Chrome trace-event JSON (loadable in
    Perfetto / ``chrome://tracing``) into ``--out``, then prints the
    top-K slowest requests with per-hop latency breakdowns and the
    reject-reason histogram.  The traced run is byte-identical to an
    untraced run of the same spec (the observer-only invariant).
    """
    from repro.cluster.runner import RunSpec, run_experiment
    from repro.obs import render_report, write_chrome_trace, write_jsonl

    duration = args.duration if args.duration is not None else 1.0
    try:
        spec = RunSpec(
            system=args.protocol,
            clients=args.clients,
            duration=duration,
            warmup=min(0.3, duration * 0.3),
            seed=args.seed,
            observe=True,
        )
        result = run_experiment(spec)
    except ValueError as error:  # unknown system, bad duration, ...
        print(f"trace: {error}", file=sys.stderr)
        return 2
    hub = result.obs
    os.makedirs(args.out, exist_ok=True)
    base = f"{args.protocol}-seed{args.seed}"
    jsonl_path = os.path.join(args.out, f"{base}.jsonl")
    chrome_path = os.path.join(args.out, f"{base}.trace.json")
    with open(jsonl_path, "w") as stream:
        lines = write_jsonl(hub.tracer, stream)
    with open(chrome_path, "w") as stream:
        events = write_chrome_trace(hub.tracer, stream, hub.registry)
    print(result.describe())
    print(f"[{lines} events -> {jsonl_path}]")
    print(f"[{events} Chrome trace events -> {chrome_path}]")
    print()
    print(render_report(hub.tracer, hub.registry, k=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Hedged requests: a second copy to another replica, first reply wins.

Hedging bounds tail latency by racing a duplicate of a still-pending
request against the original ("The Tail at Scale").  The duplicate
keeps the *same* request id, so the protocols' at-most-once delivery
(per-client executed-operation tracking plus reply caching) suppresses
the second execution — the hedge can only ever add wire and admission
work, never double-apply a command.

The policy is pure bookkeeping: the client owns the hedge timer and
asks :meth:`HedgePolicy.delay` how long to arm it.  With a configured
``hedge_percentile`` the delay adapts to the observed reply-latency
distribution once enough samples exist; before that (and with the
percentile disabled) the fixed ``hedge_delay`` applies.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

#: Observed-latency samples needed before the percentile estimate is used.
MIN_SAMPLES = 8

#: How many recent reply latencies the estimator keeps.
SAMPLE_WINDOW = 64


class HedgePolicy:
    """Decides when a pending request deserves a hedged duplicate."""

    def __init__(self, delay: float, percentile: float = 0.0, max_hedges: int = 1):
        if delay <= 0.0:
            raise ValueError(f"hedge delay must be positive, got {delay}")
        if not 0.0 <= percentile < 1.0:
            raise ValueError(
                f"hedge percentile must be in [0, 1), got {percentile}"
            )
        if max_hedges < 1:
            raise ValueError(f"max hedges must be at least 1, got {max_hedges}")
        self.base_delay = delay
        self.percentile = percentile
        self.max_hedges = max_hedges
        self._samples: deque = deque(maxlen=SAMPLE_WINDOW)

    def observe(self, latency: float) -> None:
        """Feed one successful reply latency into the estimator."""
        self._samples.append(latency)

    def delay(self) -> float:
        """Seconds to wait before hedging the current attempt."""
        if self.percentile > 0.0 and len(self._samples) >= MIN_SAMPLES:
            ordered = sorted(self._samples)
            index = min(len(ordered) - 1, int(self.percentile * len(ordered)))
            return ordered[index]
        return self.base_delay


def make_hedge_policy(config) -> Optional[HedgePolicy]:
    """Build the hedge policy ``config`` describes; ``None`` disables
    hedging entirely (``hedge_delay`` left at its 0.0 default), keeping
    the client's per-request cost at a single ``is None`` check."""
    if config.hedge_delay <= 0.0:
        return None
    return HedgePolicy(
        config.hedge_delay, config.hedge_percentile, config.hedge_max
    )

"""``repro.resilience`` — client-side resilience policies.

The paper's thesis is that *proactive* rejection keeps tail latency
bounded where clients' *reactive* disciplines (timeouts, retries,
hedges) make overload worse.  This package supplies those reactive
disciplines as pluggable, deterministic policies:

* :class:`RetryPolicy` and its subclasses decide, after a rejection or
  timeout, whether the client re-issues the same command (new request
  id, bounded attempts, backoff with jitter, token-bucket retry
  budgets, per-request deadlines) or abandons it.
* :class:`HedgePolicy` decides when a still-pending request gets a
  second copy sent to another replica (first reply wins; duplicates are
  suppressed by the protocols' at-most-once delivery).

Policies are pure decision logic: they never touch the event loop or
the network, and every random draw comes from a named
:class:`~repro.sim.rng.RngRegistry` stream, so enabling a policy keeps
runs byte-deterministic and the default ``no-retry`` policy is a
provable no-op.  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.hedge import HedgePolicy, make_hedge_policy
from repro.resilience.policy import (
    ABANDON,
    Decision,
    ExponentialBackoffPolicy,
    FixedDelayPolicy,
    ImmediateRetryPolicy,
    JITTER_MODES,
    NoRetryPolicy,
    RETRY,
    RETRY_OUTCOME_MODES,
    RETRY_POLICY_NAMES,
    RetryPolicy,
    TokenBucket,
    make_retry_policy,
)

__all__ = [
    "ABANDON",
    "Decision",
    "ExponentialBackoffPolicy",
    "FixedDelayPolicy",
    "HedgePolicy",
    "ImmediateRetryPolicy",
    "JITTER_MODES",
    "NoRetryPolicy",
    "RETRY",
    "RETRY_OUTCOME_MODES",
    "RETRY_POLICY_NAMES",
    "RetryPolicy",
    "TokenBucket",
    "make_hedge_policy",
    "make_retry_policy",
]

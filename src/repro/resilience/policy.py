"""Retry policies: what a client does after a rejection or timeout.

A policy is consulted once per *attempt outcome* and answers with a
:class:`Decision`: either ``retry`` (re-issue the same command under a
fresh request id after ``delay`` seconds) or ``abandon`` (record the
outcome, run the fallback, move on after ``delay`` seconds).

Two different random streams feed a policy, and the split is what makes
the default path a provable no-op:

* the client's existing ``client.{cid}.timing`` stream supplies the
  post-rejection abandon backoff (Section 7.1's 50-100 ms), exactly as
  the pre-policy client drew it — same stream, same single draw per
  terminal rejection;
* retry jitter draws come from a *new* ``client.{cid}.resilience``
  stream that only retrying policies ever create, so enabling retries
  cannot perturb any pre-existing stream.

Policies never read the event loop: the client passes the current
simulated time in, which keeps this module inside the determinism-lint
(DET) scope with nothing to suppress.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Decision kinds.
RETRY = "retry"
ABANDON = "abandon"

#: ``ProtocolConfig.retry_policy`` values (see :func:`make_retry_policy`).
RETRY_POLICY_NAMES = ("none", "immediate", "fixed", "exponential")

#: ``ProtocolConfig.retry_jitter`` values for the exponential policy.
JITTER_MODES = ("none", "full", "decorrelated")

#: ``ProtocolConfig.retry_on`` values: which outcomes a retrying policy
#: reacts to.  ``timeout`` models the common naive client that retries
#: silence but respects an explicit rejection (it carries backoff
#: guidance); ``reject`` is the inverse; ``any`` retries both.
RETRY_OUTCOME_MODES = ("any", "timeout", "reject")

#: Abandon reasons a retrying policy can give up with (the plain
#: ``no-retry`` abandonment is not a give-up: there was nothing to stop).
GIVE_UP_REASONS = ("max-attempts", "deadline", "budget")


@dataclass(frozen=True)
class Decision:
    """One policy verdict for one attempt outcome.

    ``delay`` is the backoff before the retry (kind ``retry``) or before
    the client's next fresh operation (kind ``abandon``); ``reason``
    names the policy for retries and the giving-up cause for abandons.
    """

    kind: str
    delay: float = 0.0
    reason: str = ""


class TokenBucket:
    """A lazily refilled token bucket capping the client's retry rate.

    ``rate`` tokens accrue per simulated second up to ``cap``; each
    retry spends one.  The refill is computed from the timestamps the
    client passes in, so the bucket never reads a clock itself.
    """

    def __init__(self, rate: float, cap: float):
        if rate <= 0.0 or cap < 1.0:
            raise ValueError(
                f"token bucket needs rate > 0 and cap >= 1, got {rate}/{cap}"
            )
        self.rate = rate
        self.cap = cap
        self.tokens = cap
        self._last_refill = 0.0

    def try_spend(self, now: float) -> bool:
        """Spend one token if available; refills up to ``now`` first."""
        if now > self._last_refill:
            self.tokens = min(
                self.cap, self.tokens + (now - self._last_refill) * self.rate
            )
            self._last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class RetryPolicy:
    """Base policy: never retry (the pre-policy client behaviour).

    The abandon backoff is computed here for every policy so that all of
    them share the client's historical discipline: a uniform
    ``[reject_backoff_min, reject_backoff_max]`` draw from the timing
    stream after a rejection, the configured think time after a timeout.
    """

    name = "none"

    def __init__(self, config, timing_rng):
        self.config = config
        self._timing_rng = timing_rng

    def on_operation_start(self, now: float) -> None:
        """Hook: a fresh command is about to be issued (attempt 1)."""

    def next_action(
        self, outcome: str, attempt: int, elapsed: float, now: float
    ) -> Decision:
        """Decide what to do after ``outcome`` (``reject``/``timeout``)
        of attempt ``attempt``, ``elapsed`` seconds into the operation."""
        return self._abandon(outcome, "no-retry")

    def _abandon(self, outcome: str, reason: str) -> Decision:
        if outcome == "reject":
            delay = self._timing_rng.uniform(
                self.config.reject_backoff_min, self.config.reject_backoff_max
            )
        else:
            delay = self.config.think_time
        return Decision(ABANDON, delay, reason)


class NoRetryPolicy(RetryPolicy):
    """Explicit alias of the base policy (registry completeness)."""


class BoundedRetryPolicy(RetryPolicy):
    """Shared cap logic for every retrying policy.

    Caps are checked in a fixed order — attempts, deadline, budget — so
    the give-up reason (and hence the observer counter it lands in) is
    deterministic when several caps bind at once.
    """

    def __init__(self, config, timing_rng, retry_rng):
        super().__init__(config, timing_rng)
        self.rng = retry_rng
        self.retry_on = config.retry_on
        self.max_attempts = config.retry_max_attempts
        self.deadline = config.request_deadline
        self.budget = (
            TokenBucket(config.retry_budget_rate, config.retry_budget_cap)
            if config.retry_budget_rate > 0.0
            else None
        )

    def next_action(
        self, outcome: str, attempt: int, elapsed: float, now: float
    ) -> Decision:
        if self.retry_on != "any" and outcome != self.retry_on:
            # An outcome this policy does not cover is a plain
            # abandonment (not a give-up) and spends no budget token.
            return self._abandon(outcome, "no-retry")
        if attempt >= self.max_attempts:
            return self._abandon(outcome, "max-attempts")
        if self.deadline > 0.0 and elapsed >= self.deadline:
            return self._abandon(outcome, "deadline")
        if self.budget is not None and not self.budget.try_spend(now):
            return self._abandon(outcome, "budget")
        return Decision(RETRY, self._retry_delay(attempt), self.name)

    def _retry_delay(self, attempt: int) -> float:
        raise NotImplementedError


class ImmediateRetryPolicy(BoundedRetryPolicy):
    """Retry with no delay at all: the worst-case storm client."""

    name = "immediate"

    def _retry_delay(self, attempt: int) -> float:
        return 0.0


class FixedDelayPolicy(BoundedRetryPolicy):
    """Retry after a constant ``retry_base_delay``."""

    name = "fixed"

    def _retry_delay(self, attempt: int) -> float:
        return self.config.retry_base_delay


class ExponentialBackoffPolicy(BoundedRetryPolicy):
    """Exponential backoff, capped at ``retry_max_delay``, with jitter.

    ``retry_jitter`` selects the flavour:

    * ``none`` — the raw capped exponential ``base * 2^(attempt-1)``;
    * ``full`` — uniform in ``[0, raw]`` (AWS "full jitter");
    * ``decorrelated`` — uniform in ``[base, 3 * previous]``, capped
      (AWS "decorrelated jitter"); the previous delay resets to the
      base at every fresh operation.
    """

    name = "exponential"

    def __init__(self, config, timing_rng, retry_rng):
        super().__init__(config, timing_rng, retry_rng)
        self.jitter = config.retry_jitter
        self._previous = config.retry_base_delay

    def on_operation_start(self, now: float) -> None:
        self._previous = self.config.retry_base_delay

    def _retry_delay(self, attempt: int) -> float:
        base = self.config.retry_base_delay
        cap = self.config.retry_max_delay
        if self.jitter == "decorrelated":
            delay = min(cap, self.rng.uniform(base, 3.0 * self._previous))
            self._previous = delay
            return delay
        raw = min(cap, base * (2.0 ** (attempt - 1)))
        if self.jitter == "full":
            return self.rng.uniform(0.0, raw)
        return raw


_POLICY_CLASSES = {
    "none": NoRetryPolicy,
    "immediate": ImmediateRetryPolicy,
    "fixed": FixedDelayPolicy,
    "exponential": ExponentialBackoffPolicy,
}


def make_retry_policy(config, cid: int, rng, timing_rng) -> RetryPolicy:
    """Build the policy ``config.retry_policy`` names for client ``cid``.

    ``timing_rng`` is the client's existing timing stream (abandon
    backoff); retrying policies additionally get their own
    ``client.{cid}.resilience`` stream from the registry ``rng``, which
    is only created when a retrying policy is actually configured.
    """
    name = config.retry_policy
    if name not in _POLICY_CLASSES:
        raise ValueError(
            f"unknown retry policy {name!r}; choose from {RETRY_POLICY_NAMES}"
        )
    if name == "none":
        return NoRetryPolicy(config, timing_rng)
    retry_rng = rng.stream(f"client.{cid}.resilience")
    return _POLICY_CLASSES[name](config, timing_rng, retry_rng)

"""A Mod-SMaRt-shaped replica standing in for BFT-SMaRt (CFT mode).

The real BFT-SMaRt library, configured crash-fault tolerant, behaves as
follows (Bessani et al., DSN '14): clients multicast their requests to
all replicas, the leader assembles batches of *full requests* and runs a
consensus round on them, and **every** replica sends a reply, the client
keeping the first.  This module reproduces that message pattern — the
triple request dissemination and n-fold replies are what give the
production library its distinct saturation point in Figure 6.

The cost multiplier applied by the cluster builder models the heavier
code path of a general-purpose BFT library running in CFT mode.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.addresses import Address
from repro.protocols.base import BaseReplica, Instance
from repro.protocols.messages import ProposeFull, Request, Rid, WindowEntry


class BftSmartReplica(BaseReplica):
    """One BFT-SMaRt-like replica (crash-fault-tolerant configuration)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # The request pool: every replica holds all client requests it
        # has seen until they are executed.
        self.pool: dict[Rid, Request] = {}
        self._handlers[ProposeFull] = self._on_propose_full

    def probe_state(self) -> dict[str, float]:
        state = super().probe_state()
        state["active_slots"] = float(len(self.pool))
        return state

    # ------------------------------------------------------------------
    # Client requests: everyone pools, the leader proposes
    # ------------------------------------------------------------------

    def _on_request(self, src: Address, message: Request) -> None:
        self.stats["requests_seen"] += 1
        rid = message.rid
        if self._maybe_resend_reply(src, rid):
            return
        if rid in self.pool:
            return
        if self.obs is not None:
            self.obs.on_accept(rid, len(self.pool), None)
        self.pool[rid] = message
        self.stats["accepted"] += 1
        if self.is_leader and self._vc_target is None:
            self._queue_proposal(message)
        if not self._progress_timer.running:
            self._progress_timer.start()

    def _flush_proposals(self) -> None:
        if self.halted or self._vc_target is not None or not self.is_leader:
            return
        config = self.config
        while self._propose_queue and self._window_has_room():
            batch = tuple(self._propose_queue[: config.batch_max])
            del self._propose_queue[: len(batch)]
            sqn = self.next_sqn
            self.next_sqn = sqn + 1
            rids = tuple(request.rid for request in batch)
            instance = self._open_instance(sqn, self.view, rids)
            instance.bodies = {request.rid: request for request in batch}
            if self.obs is not None:
                self.obs.on_propose(self.view, sqn, rids)
            self.multicast_peers(ProposeFull(self.view, sqn, batch))
            self.stats["proposals"] += 1
        if self._propose_queue and not self._batch_timer.running:
            self._batch_timer.start(config.batch_delay)
        if not self._progress_timer.running:
            self._progress_timer.start()

    def _on_propose_full(self, src: Address, message: ProposeFull) -> None:
        rids = tuple(request.rid for request in message.requests)
        instance = self._accept_proposal(message.view, message.sqn, rids)
        if instance is None:
            return
        instance.bodies = {request.rid: request for request in message.requests}
        for request in message.requests:
            self.pool.setdefault(request.rid, request)
        self._try_execute()

    def _resend_proposal(self, dst: Address, instance: Instance) -> None:
        if instance.bodies is None:
            return
        requests = tuple(instance.bodies[rid] for rid in instance.rids)
        self.send(dst, ProposeFull(instance.view, instance.sqn, requests))

    # ------------------------------------------------------------------
    # Execution: every replica replies
    # ------------------------------------------------------------------

    def _on_executed(self, rid: Rid, request: Request, result: Any) -> None:
        self.pool.pop(rid, None)
        # In BFT-SMaRt all replicas answer; the client keeps the first.
        self._reply_to_client(rid, result)

    def _has_outstanding_work(self) -> bool:
        return bool(self._unexecuted) or bool(self.pool)

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------

    def _make_window_entry(self, instance: Instance) -> WindowEntry:
        requests: Optional[tuple[Request, ...]] = None
        if instance.bodies is not None:
            requests = tuple(instance.bodies[rid] for rid in instance.rids)
        return WindowEntry(instance.sqn, instance.view, instance.rids, requests)

    def _after_view_installed(self) -> None:
        if not self.is_leader:
            return
        reproposed = {
            rid
            for instance in self.instances.values()
            if not instance.executed
            for rid in instance.rids
        }
        for rid, request in self.pool.items():
            cid, onr = rid
            if rid in reproposed or self.executed_onr.get(cid, 0) >= onr:
                continue
            self._queue_proposal(request)

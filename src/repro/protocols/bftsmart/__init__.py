"""A BFT-SMaRt-like protocol in its crash-fault-tolerant configuration."""

from repro.protocols.bftsmart.replica import BftSmartReplica

__all__ = ["BftSmartReplica"]

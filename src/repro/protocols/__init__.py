"""Replication protocols.

Shared plumbing (:mod:`repro.protocols.base`, :mod:`repro.protocols.messages`)
plus the baselines the paper compares IDEM against:

* :mod:`repro.protocols.paxos` — Kirsch–Amir-style leader-based Paxos,
  optionally with leader-based rejection (Paxos_LBR, Section 3.3).
* :mod:`repro.protocols.bftsmart` — a BFT-SMaRt-like protocol in its
  crash-fault-tolerant configuration (Mod-SMaRt shape).

IDEM itself lives in :mod:`repro.core`.
"""

from repro.protocols.config import ProtocolConfig
from repro.protocols.messages import Rid

__all__ = ["ProtocolConfig", "Rid"]

"""Wire messages shared by all protocols.

Request ids follow the paper (Section 4.3): a tuple ``(cid, onr)`` of a
static client identifier and a per-client operation number.  Sizes model
a compact binary encoding; batch messages amortise their framing over
all carried entries, which is what makes id-based agreement (IDEM)
cheaper on the wire than full-request agreement (Paxos, BFT-SMaRt).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.app.commands import Command
from repro.net.message import Message

# A request id: (client id, client-local operation number).
Rid = tuple[int, int]

ID_BYTES = 12
SQN_BYTES = 8
VIEW_BYTES = 4


class Request(Message):
    """Client → replicas: execute ``command`` under request id ``rid``."""

    __slots__ = ("rid", "command")

    def __init__(self, rid: Rid, command: Command):
        self.rid = rid
        self.command = command

    def payload_bytes(self) -> int:
        return ID_BYTES + self.command.payload_bytes()


class Reply(Message):
    """Replica → client: the result of an executed request."""

    __slots__ = ("rid", "ok", "reply_bytes", "view")

    def __init__(self, rid: Rid, ok: bool, reply_bytes: int, view: int):
        self.rid = rid
        self.ok = ok
        self.reply_bytes = reply_bytes
        self.view = view

    def payload_bytes(self) -> int:
        return ID_BYTES + VIEW_BYTES + self.reply_bytes


class Reject(Message):
    """Replica → client: this replica will not process request ``rid`` (IDEM/LBR)."""

    __slots__ = ("rid",)

    def __init__(self, rid: Rid):
        self.rid = rid

    def payload_bytes(self) -> int:
        return ID_BYTES


class RequireBatch(Message):
    """Replica → leader: these accepted request ids await ordering (IDEM)."""

    __slots__ = ("rids",)

    def __init__(self, rids: tuple[Rid, ...]):
        self.rids = rids

    def payload_bytes(self) -> int:
        return ID_BYTES * len(self.rids)


class Propose(Message):
    """Leader → replicas: order this batch of request *ids* at ``sqn`` (IDEM).

    ``threshold_hint`` optionally piggybacks the leader's current
    adaptive reject threshold: the leader sits deepest in the execution
    pipeline and is the first to observe congestion, so followers apply
    the hint as a cap on their own thresholds (collaborative adaptive
    control; see :class:`repro.core.acceptance.AdaptiveThreshold`).
    """

    __slots__ = ("view", "sqn", "rids", "threshold_hint")

    def __init__(
        self,
        view: int,
        sqn: int,
        rids: tuple[Rid, ...],
        threshold_hint: Optional[int] = None,
    ):
        self.view = view
        self.sqn = sqn
        self.rids = rids
        self.threshold_hint = threshold_hint

    def payload_bytes(self) -> int:
        hint = 2 if self.threshold_hint is not None else 0
        return VIEW_BYTES + SQN_BYTES + hint + ID_BYTES * len(self.rids)


class ProposeFull(Message):
    """Leader → replicas: order this batch of *full requests* (Paxos, BFT-SMaRt)."""

    __slots__ = ("view", "sqn", "requests", "_payload")

    def __init__(self, view: int, sqn: int, requests: tuple[Request, ...]):
        self.view = view
        self.sqn = sqn
        self.requests = requests
        self._payload = VIEW_BYTES + SQN_BYTES + sum(
            request.payload_bytes() for request in requests
        )

    def payload_bytes(self) -> int:
        return self._payload


class Commit(Message):
    """Replica → replicas: I endorse the proposal for ``sqn`` in ``view``."""

    __slots__ = ("view", "sqn")

    def __init__(self, view: int, sqn: int):
        self.view = view
        self.sqn = sqn

    def payload_bytes(self) -> int:
        return VIEW_BYTES + SQN_BYTES


class Skip(Message):
    """Slot owner → replicas: no-ops for my owned slots in ``[from_sqn, to_sqn)``.

    Multi-leader (Mencius-style) operation only: an idle slot owner
    releases its slots below the frontier so execution stays contiguous.
    """

    __slots__ = ("view", "from_sqn", "to_sqn")

    def __init__(self, view: int, from_sqn: int, to_sqn: int):
        self.view = view
        self.from_sqn = from_sqn
        self.to_sqn = to_sqn

    def payload_bytes(self) -> int:
        return VIEW_BYTES + 2 * SQN_BYTES


class SkipAck(Message):
    """Replica → slot owner: bulk commit for a skipped slot range."""

    __slots__ = ("view", "from_sqn", "to_sqn")

    def __init__(self, view: int, from_sqn: int, to_sqn: int):
        self.view = view
        self.from_sqn = from_sqn
        self.to_sqn = to_sqn

    def payload_bytes(self) -> int:
        return VIEW_BYTES + 2 * SQN_BYTES


class Forward(Message):
    """Replica → replicas: relay of an accepted request's body (IDEM)."""

    __slots__ = ("request",)

    def __init__(self, request: Request):
        self.request = request

    def payload_bytes(self) -> int:
        return self.request.payload_bytes()


class Fetch(Message):
    """Replica → replica: please forward the body of request ``rid`` (IDEM)."""

    __slots__ = ("rid",)

    def __init__(self, rid: Rid):
        self.rid = rid

    def payload_bytes(self) -> int:
        return ID_BYTES


class WindowEntry:
    """One consensus instance carried inside a view-change message."""

    __slots__ = ("sqn", "view", "rids", "requests")

    def __init__(
        self,
        sqn: int,
        view: int,
        rids: tuple[Rid, ...],
        requests: Optional[tuple[Request, ...]] = None,
    ):
        self.sqn = sqn
        self.view = view
        self.rids = rids
        self.requests = requests  # full bodies for full-request protocols

    def payload_bytes(self) -> int:
        size = SQN_BYTES + VIEW_BYTES + ID_BYTES * len(self.rids)
        if self.requests is not None:
            size += sum(request.payload_bytes() for request in self.requests)
        return size


class ViewChange(Message):
    """Replica → replicas: abandon the current view, move to ``target_view``."""

    __slots__ = ("target_view", "entries")

    def __init__(self, target_view: int, entries: tuple[WindowEntry, ...]):
        self.target_view = target_view
        self.entries = entries

    def payload_bytes(self) -> int:
        return VIEW_BYTES + sum(entry.payload_bytes() for entry in self.entries)


class NewView(Message):
    """New leader → replicas: ``view`` starts; re-propose these instances."""

    __slots__ = ("view", "entries", "next_sqn")

    def __init__(self, view: int, entries: tuple[WindowEntry, ...], next_sqn: int):
        self.view = view
        self.entries = entries
        self.next_sqn = next_sqn

    def payload_bytes(self) -> int:
        return VIEW_BYTES + SQN_BYTES + sum(
            entry.payload_bytes() for entry in self.entries
        )


class NewViewAck(Message):
    """Replica → replicas: bulk commit for all instances re-proposed in ``view``."""

    __slots__ = ("view", "sqns")

    def __init__(self, view: int, sqns: tuple[int, ...]):
        self.view = view
        self.sqns = sqns

    def payload_bytes(self) -> int:
        return VIEW_BYTES + SQN_BYTES * len(self.sqns)


class Decided(Message):
    """Replica → replica: this instance is final; adopt it regardless of view.

    Sent in answer to a :class:`ProposalRequest` for an instance the
    responder has already *executed* — the outcome can no longer change,
    so the lagging replica may adopt it without any view check (the
    classic Paxos "learn" message).  ``requests`` carries bodies for
    full-request protocols.
    """

    __slots__ = ("sqn", "rids", "requests")

    def __init__(
        self,
        sqn: int,
        rids: tuple[Rid, ...],
        requests: Optional[tuple[Request, ...]] = None,
    ):
        self.sqn = sqn
        self.rids = rids
        self.requests = requests

    def payload_bytes(self) -> int:
        size = SQN_BYTES + ID_BYTES * len(self.rids)
        if self.requests is not None:
            size += sum(request.payload_bytes() for request in self.requests)
        return size


class ProposalRequest(Message):
    """Replica → replica: re-send me the proposal for ``sqn``.

    Recovery path for fair-loss links: a replica that sees commits for a
    sequence number it has no proposal for asks the committer to repeat
    the proposal.
    """

    __slots__ = ("sqn",)

    def __init__(self, sqn: int):
        self.sqn = sqn

    def payload_bytes(self) -> int:
        return SQN_BYTES


class CheckpointRequest(Message):
    """Lagging replica → peer: send me your newest checkpoint."""

    __slots__ = ("known_sqn",)

    def __init__(self, known_sqn: int):
        self.known_sqn = known_sqn

    def payload_bytes(self) -> int:
        return SQN_BYTES


class CheckpointTransfer(Message):
    """Peer → lagging replica: a full application checkpoint."""

    __slots__ = ("sqn", "snapshot", "executed_onr", "declared_bytes")

    def __init__(self, sqn: int, snapshot: Any, executed_onr: dict[int, int], declared_bytes: int):
        self.sqn = sqn
        self.snapshot = snapshot
        self.executed_onr = executed_onr
        self.declared_bytes = declared_bytes

    def payload_bytes(self) -> int:
        return SQN_BYTES + self.declared_bytes + ID_BYTES * len(self.executed_onr)

"""Shared replica and client plumbing for all protocols.

Every protocol in this repository (IDEM, Paxos, Paxos_LBR, BFT-SMaRt) is
a leader-based, two-phase agreement protocol for ``n = 2f + 1`` replicas
that differs in *how requests reach the ordering stage* and *who answers
clients*.  :class:`BaseReplica` implements everything they share:

* message delivery through a serial CPU station (the queueing model),
* the consensus window with PROPOSE/COMMIT quorums (a proposal counts as
  the leader's commit, so a commit quorum is ``f + 1`` including it),
* strictly ordered execution with duplicate suppression,
* periodic checkpoints and state transfer for lagging replicas,
* the view-change protocol (progress timer, VIEWCHANGE / NEWVIEW /
  NEWVIEWACK, window merging by highest view).

Protocol-specific behaviour is provided through hook methods documented
on the class.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.app.state_machine import StateMachine
from repro.net.addresses import Address, client_address, replica_address
from repro.net.message import Message
from repro.net.network import Network, NetworkNode
from repro.protocols.config import ProtocolConfig
from repro.protocols.messages import (
    CheckpointRequest,
    CheckpointTransfer,
    Commit,
    Decided,
    NewView,
    NewViewAck,
    ProposalRequest,
    Propose,
    ProposeFull,
    Reject,
    Reply,
    Request,
    RequireBatch,
    Rid,
    ViewChange,
    WindowEntry,
)
from repro.sim.loop import EventLoop
from repro.sim.processor import Processor
from repro.sim.rng import RngRegistry
from repro.sim.timers import RestartableTimer, Timer


def _noop() -> None:
    """Placeholder job body used when charging pure CPU time."""


# How many executed instances a single ProposalRequest may recover.
_DECIDED_BATCH = 16


class Instance:
    """One consensus instance: a batch of requests at a sequence number."""

    __slots__ = ("sqn", "view", "rids", "commits", "executed", "decided", "bodies")

    def __init__(self, sqn: int, view: int, rids: tuple[Rid, ...]):
        self.sqn = sqn
        self.view = view
        self.rids = rids
        self.commits: set[int] = set()
        self.executed = False
        # Adopted from a Decided (learn) message: final by construction.
        self.decided = False
        # Full request bodies, for protocols that carry them in proposals.
        self.bodies: Optional[dict[Rid, Request]] = None

    def committed(self, quorum: int) -> bool:
        """Whether enough replicas endorse this instance."""
        return self.decided or len(self.commits) >= quorum


class BaseReplica(NetworkNode):
    """Common machinery of a crash-tolerant leader-based SMR replica.

    Subclasses override:

    * :meth:`_on_request` — client request admission (acceptance test,
      forwarding to the leader, ...).
    * :meth:`_flush_proposals` — turn queued work into PROPOSE messages.
    * :meth:`_resolve_bodies` — locate the request bodies of an instance
      about to execute (return ``None`` if some are missing and recovery
      has been initiated).
    * :meth:`_on_executed` — per-request completion (replies, slots).
    * :meth:`_make_window_entry` / :meth:`_install_entry` — what
      view-change messages carry.
    * :meth:`_after_view_installed` — protocol-specific view-change
      recovery actions.
    """

    def __init__(
        self,
        index: int,
        loop: EventLoop,
        network: Network,
        config: ProtocolConfig,
        state_machine: StateMachine,
        rng: RngRegistry,
    ):
        self.index = index
        self.loop = loop
        self.network = network
        self.config = config
        self.app = state_machine
        self.rng = rng
        self.address = replica_address(index)
        self.peers = [
            replica_address(i) for i in range(config.n) if i != index
        ]
        self.processor = Processor(
            loop,
            name=f"replica-{index}",
            jitter_sigma=config.cpu_jitter_sigma,
            jitter_rng=rng.stream(f"replica.{index}.cpu"),
        )
        self.halted = False
        # Which life of this replica index we are: bumped by
        # Cluster.recover_replica when a crashed replica rejoins with
        # fresh volatile state.  Safety checkers key per-incarnation
        # facts (execution order) by (index, incarnation).
        self.incarnation = 0
        # Optional observer called as (replica, sqn, rid) for every
        # request this replica executes (chaos/safety checking).
        self.exec_observer: Optional[Callable[["BaseReplica", int, Rid], None]] = None
        # Optional observability facade (repro.obs.ReplicaObserver).
        # Observer-only: hooks read state but never influence the run.
        self.obs: Optional[Any] = None

        # View state.
        self.view = 0
        self._vc_target: Optional[int] = None
        self._vc_msgs: dict[int, dict[int, ViewChange]] = {}
        self._progress_timer = RestartableTimer(
            loop, config.view_change_timeout, self._on_progress_timeout
        )

        # Agreement state.
        self.instances: dict[int, Instance] = {}
        self._unexecuted: set[int] = set()
        self._pending_commits: dict[tuple[int, int], set[int]] = {}
        self.next_sqn = 1  # leader: next sequence number to assign
        self.exec_sqn = 0  # highest executed sequence number
        self.window_start = 1
        self._exec_scheduled = False

        # Proposal batching (leader side).
        self._propose_queue: list[Any] = []
        self._batch_timer = Timer(loop, self._flush_proposals)

        # Execution bookkeeping.
        self.executed_onr: dict[int, int] = {}
        self.last_reply: dict[int, Reply] = {}
        # Rolling digest of the execution order; equal digests at equal
        # exec_sqn prove two replicas executed the same request sequence
        # (used by the safety test suite).
        self.exec_order_digest = 0

        # Checkpointing / state transfer.
        self._checkpoint: Optional[tuple[int, Any, dict[int, int]]] = None
        self._transfer_requested_at: float = -1.0
        # Proposal recovery over fair-loss links (rate limited per sqn).
        self._proposal_requested_at: dict[int, float] = {}

        # Statistics for experiment reports.
        self.stats: dict[str, int] = {
            "requests_seen": 0,
            "accepted": 0,
            "rejected": 0,
            "executed": 0,
            "proposals": 0,
            "view_changes": 0,
            "forwards": 0,
            "fetches": 0,
            "checkpoints": 0,
            "state_transfers": 0,
            "replies_sent": 0,
        }

        self._handlers: dict[type, Callable[[Address, Any], None]] = {
            Request: self._on_request,
            Commit: self._on_commit,
            Decided: self._on_decided,
            ProposalRequest: self._on_proposal_request,
            ViewChange: self._on_viewchange_msg,
            NewView: self._on_newview,
            NewViewAck: self._on_newviewack,
            CheckpointRequest: self._on_checkpoint_request,
            CheckpointTransfer: self._on_checkpoint_transfer,
        }

    # ------------------------------------------------------------------
    # Roles and plumbing
    # ------------------------------------------------------------------

    def leader_of(self, view: int) -> int:
        """The replica index leading ``view`` (round-robin, as in the paper)."""
        return self.config.leader_of(view)

    def _proposer_of(self, view: int, sqn: int) -> int:
        """Which replica's proposal counts as the commit for ``sqn``.

        Single-leader protocols: the view's leader.  Multi-leader
        variants override this with slot ownership.
        """
        return self.leader_of(view)

    @property
    def is_leader(self) -> bool:
        """Whether this replica leads its current view."""
        return self.leader_of(self.view) == self.index

    @property
    def leader_address(self) -> Address:
        """Address of the current view's leader."""
        return replica_address(self.leader_of(self.view))

    # -- introspection (repro.obs probe layer) -------------------------

    def _probe_timers(self) -> tuple:
        """The replica's protocol timers, for the timer-population probe.

        Subclasses with extra timers extend the tuple.
        """
        return (self._progress_timer, self._batch_timer)

    def probe_state(self) -> dict[str, float]:
        """Flat snapshot of protocol internals for the probe layer.

        Read-only by contract (``repro.obs.probes.Probeable``): values
        are plain floats, computing them must not touch any state.
        Subclasses extend the dict with their admission bookkeeping
        (``active_slots``, ``admission_threshold``).
        """
        stats = self.stats
        return {
            "queue_depth": float(self.processor.queue_length),
            "busy_time": float(self.processor.busy_time),
            "inflight_rounds": float(len(self._unexecuted)),
            "window_backlog": float(self.next_sqn - 1 - self.exec_sqn),
            "executed_total": float(stats["executed"]),
            "accepted_total": float(stats["accepted"]),
            "rejected_total": float(stats["rejected"]),
            "view": float(self.view),
            "timers_running": float(
                sum(1 for timer in self._probe_timers() if timer.running)
            ),
        }

    def crash(self) -> None:
        """Crash this replica: no more processing, sending or receiving."""
        self.halted = True
        self.processor.halt()
        self.network.crash(self.address)
        self._progress_timer.stop()
        self._batch_timer.cancel()

    def bootstrap(self) -> None:
        """Probe the group's state after joining with empty volatile state.

        A recovered replica knows nothing, so it asks every peer for the
        first instance it is missing.  Peers answer with DECIDED batches
        while the instance is still retained, or push a checkpoint when
        the newcomer is behind the window — the same catch-up paths a
        lagging live replica uses.
        """
        for peer in self.peers:
            self.send(peer, ProposalRequest(self.exec_sqn + 1))
        self._progress_timer.start()

    def deliver(self, src: Address, message: Message) -> None:
        if self.halted:
            return
        cost = self._receive_cost(message)
        if self.obs is not None:
            rid = message.rid if type(message) is Request else None
            self.obs.on_deliver(message.type_name(), cost, rid)
        self.processor.submit(cost, self._dispatch, src, message)

    def _receive_cost(self, message: Message) -> float:
        config = self.config
        mtype = type(message)
        byte_cost = config.cost_per_byte * message.size_bytes()
        if mtype is Request:
            return config.cost_client_request + byte_cost
        if mtype is RequireBatch:
            return config.cost_message + config.cost_per_id * len(message.rids)
        if mtype is Propose:
            return config.cost_message + config.cost_per_id * len(message.rids)
        if mtype is ProposeFull:
            return (
                config.cost_message
                + 2 * config.cost_per_id * len(message.requests)
                + byte_cost
            )
        if mtype is CheckpointTransfer:
            return config.cost_message + config.checkpoint_cost + byte_cost
        return config.cost_message + byte_cost

    def _dispatch(self, src: Address, message: Message) -> None:
        if self.halted:
            return
        handler = self._handlers.get(type(message))
        if handler is not None:
            handler(src, message)

    def charge(self, cost: float) -> None:
        """Occupy this replica's CPU for ``cost`` seconds."""
        if cost > 0:
            self.processor.submit(cost, _noop)

    def send(self, dst: Address, message: Message) -> None:
        """Send one message, charging per-send and per-byte CPU costs."""
        config = self.config
        self.charge(config.cost_send + config.cost_per_byte * message.size_bytes())
        self.network.send(self.address, dst, message)

    def multicast_peers(self, message: Message) -> None:
        """Send ``message`` to every other replica."""
        config = self.config
        fanout = len(self.peers)
        self.charge(
            fanout * (config.cost_send + config.cost_per_byte * message.size_bytes())
        )
        for peer in self.peers:
            self.network.send(self.address, peer, message)

    def send_to_leader(self, message: Message) -> None:
        """Send to the current leader; local delivery if we lead."""
        if self.is_leader:
            self._dispatch(self.address, message)
        else:
            self.send(self.leader_address, message)

    # ------------------------------------------------------------------
    # Client requests (protocol specific)
    # ------------------------------------------------------------------

    def _on_request(self, src: Address, message: Request) -> None:
        raise NotImplementedError

    def _maybe_resend_reply(self, src: Address, rid: Rid) -> bool:
        """If ``rid`` is an already-executed duplicate, re-answer it.

        Returns True when the request was handled as a duplicate.
        """
        cid, onr = rid
        if self.executed_onr.get(cid, 0) < onr:
            return False
        cached = self.last_reply.get(cid)
        if cached is not None and cached.rid == rid:
            self.send(client_address(cid), cached)
        return True

    # ------------------------------------------------------------------
    # Proposing (leader side)
    # ------------------------------------------------------------------

    def _queue_proposal(self, item: Any) -> None:
        """Add work to the leader's batch and schedule a flush."""
        self._propose_queue.append(item)
        if len(self._propose_queue) >= self.config.batch_max:
            self._batch_timer.cancel()
            self._flush_proposals()
        elif not self._batch_timer.running:
            self._batch_timer.start(self.config.batch_delay)

    def _flush_proposals(self) -> None:
        raise NotImplementedError

    def _window_has_room(self) -> bool:
        """Backpressure: may the leader open another instance?

        Bounded by the execution head so a leader cannot run unboundedly
        ahead of what the group has executed.
        """
        return self.next_sqn - self.exec_sqn <= self.config.window_size

    def _open_instance(self, sqn: int, view: int, rids: tuple[Rid, ...]) -> Instance:
        """Create an instance with our own endorsement recorded."""
        instance = Instance(sqn, view, rids)
        instance.commits.add(self._proposer_of(view, sqn))  # proposal = commit
        instance.commits.add(self.index)
        pending = self._pending_commits.pop((view, sqn), None)
        if pending:
            instance.commits.update(pending)
        self.instances[sqn] = instance
        self._unexecuted.add(sqn)
        return instance

    # ------------------------------------------------------------------
    # Commit phase
    # ------------------------------------------------------------------

    def _accept_proposal(self, view: int, sqn: int, rids: tuple[Rid, ...]) -> Optional[Instance]:
        """Common handling for an incoming PROPOSE; returns the instance.

        Returns ``None`` when the proposal is stale (old view, already
        executed, or below the window).
        """
        if view < self.view or self._vc_target is not None and view < self._vc_target:
            return None
        if view > self.view:
            # We missed a view change; adopt the newer view.
            self._enter_view(view)
        if sqn <= self.exec_sqn:
            return None
        existing = self.instances.get(sqn)
        if existing is not None and existing.view >= view:
            return None
        instance = self._open_instance(sqn, view, rids)
        if self.index != self._proposer_of(view, sqn):
            self.multicast_peers(Commit(view, sqn))
        if sqn >= self.next_sqn:
            self.next_sqn = sqn + 1
        self._check_lag(sqn)
        self._advance_window(sqn)
        if not self._progress_timer.running:
            self._progress_timer.start()
        if instance.committed(self.config.quorum):
            if self.obs is not None:
                self.obs.on_quorum(instance)
            self._try_execute()
        return instance

    def _on_commit(self, src: Address, message: Commit) -> None:
        if message.view < self.view:
            return
        if self._vc_target is not None and message.view < self._vc_target:
            return  # we abandoned this view (Section 4.5)
        instance = self.instances.get(message.sqn)
        if instance is None or instance.view != message.view:
            key = (message.view, message.sqn)
            self._pending_commits.setdefault(key, set()).add(src.index)
            self._check_lag(message.sqn)
            self._maybe_recover_proposal(message.sqn, src)
            return
        if instance.executed:
            return
        instance.commits.add(src.index)
        self._advance_window(message.sqn)
        if instance.committed(self.config.quorum):
            if self.obs is not None:
                self.obs.on_quorum(instance)
            self._try_execute()

    # ------------------------------------------------------------------
    # Ordered execution
    # ------------------------------------------------------------------

    def _resolve_bodies(self, instance: Instance) -> Optional[list[tuple[Rid, Request]]]:
        """Return the request bodies of ``instance`` in order, or None.

        ``None`` means "not yet" — execution is retried when more
        messages arrive.  Full-request protocols receive their bodies
        inside the proposal; until that proposal is processed the
        instance must not execute.  IDEM overrides this with its
        store/cache/fetch lookup.
        """
        if instance.bodies is None:
            return None
        bodies: list[tuple[Rid, Request]] = []
        for rid in instance.rids:
            request = instance.bodies.get(rid)
            if request is None:
                cid, onr = rid
                if self.executed_onr.get(cid, 0) >= onr:
                    continue  # duplicate of an executed request
                return None
            bodies.append((rid, request))
        return bodies

    def _try_execute(self) -> None:
        if self._exec_scheduled or self.halted:
            return
        instance = self.instances.get(self.exec_sqn + 1)
        if instance is None:
            if self.next_sqn > self.exec_sqn + 1:
                # Later instances exist but the next needed one is
                # missing: recover it instead of waiting for a timeout.
                self._probe_gap()
            return
        if instance.executed:
            return
        if not instance.committed(self.config.quorum):
            return
        bodies = self._resolve_bodies(instance)
        if bodies is None:
            return
        cost = self.config.cost_execution_overhead + sum(
            self.app.execution_cost(request.command) for _, request in bodies
        )
        self._exec_scheduled = True
        if self.obs is not None:
            self.obs.on_exec_scheduled(instance.sqn, cost, len(bodies))
        self.processor.submit(cost, self._apply_instance, instance, bodies)

    def _apply_instance(
        self, instance: Instance, bodies: list[tuple[Rid, Request]]
    ) -> None:
        self._exec_scheduled = False
        if self.halted or instance.executed:
            return
        if instance.sqn != self.exec_sqn + 1:
            # A state transfer moved us past this instance while the
            # execution job was queued.
            self._try_execute()
            return
        for rid, request in bodies:
            cid, onr = rid
            if self.executed_onr.get(cid, 0) >= onr:
                continue  # duplicate of an already executed request
            result = self.app.apply(request.command)
            self.executed_onr[cid] = onr
            self.exec_order_digest = hash((self.exec_order_digest, rid))
            self.stats["executed"] += 1
            if self.exec_observer is not None:
                self.exec_observer(self, instance.sqn, rid)
            if self.obs is not None:
                self.obs.on_execute(instance.sqn, rid)
            self._on_executed(rid, request, result)
        if self.obs is not None:
            self.obs.on_exec_done(instance.sqn)
        instance.executed = True
        self._unexecuted.discard(instance.sqn)
        self.exec_sqn = instance.sqn
        if instance.sqn % self.config.checkpoint_interval == 0:
            self._take_checkpoint(instance.sqn)
        self._gc_after_execute(instance.sqn)
        self._note_progress()
        self._try_execute()

    def _on_executed(self, rid: Rid, request: Request, result: Any) -> None:
        raise NotImplementedError

    def _record_reply(self, rid: Rid, result: Any) -> Reply:
        """Build and cache the REPLY for an executed request.

        Every replica caches replies (it executes every request anyway)
        so that any replica can answer a client retransmission — without
        this, a leader that crashes between executing and replying would
        leave the client stuck until its timeout.
        """
        reply = Reply(rid, result.ok, result.reply_bytes, self.view)
        self.last_reply[rid[0]] = reply
        return reply

    def _reply_to_client(self, rid: Rid, result: Any) -> None:
        """Cache and actively send the REPLY for an executed request."""
        reply = self._record_reply(rid, result)
        self.stats["replies_sent"] += 1
        if self.obs is not None:
            self.obs.on_reply(rid)
        self.send(client_address(rid[0]), reply)

    def _note_progress(self) -> None:
        """Execution progressed: restart or stop the view-change timer."""
        if self._has_outstanding_work():
            self._progress_timer.restart()
        else:
            self._progress_timer.stop()

    def _has_outstanding_work(self) -> bool:
        """Whether unexecuted agreed-on work exists (keeps the timer armed)."""
        return bool(self._unexecuted)

    # ------------------------------------------------------------------
    # Window management, checkpoints, state transfer
    # ------------------------------------------------------------------

    def _advance_window(self, observed_sqn: int) -> None:
        """Hook: IDEM overrides this with implicit garbage collection."""

    def _gc_after_execute(self, sqn: int) -> None:
        """Drop instances that have fallen out of the window."""
        old = sqn - self.config.window_size
        if old in self.instances:
            del self.instances[old]
            self._unexecuted.discard(old)
        if old >= self.window_start:
            self.window_start = old + 1

    def _take_checkpoint(self, sqn: int) -> None:
        self.charge(self.config.checkpoint_cost)
        self._checkpoint = (sqn, self.app.snapshot(), dict(self.executed_onr))
        self.stats["checkpoints"] += 1
        # Opportunistic cleanup of stale recovery bookkeeping.
        self._pending_commits = {
            key: value
            for key, value in self._pending_commits.items()
            if key[1] > self.exec_sqn and key[0] >= self.view
        }

    def _probe_gap(self) -> None:
        """Ask the peers for the next instance we are missing (rate limited)."""
        sqn = self.exec_sqn + 1
        now = self.loop.now
        if now - self._proposal_requested_at.get(sqn, -1.0) < 0.005:
            return
        self._proposal_requested_at[sqn] = now
        for peer in self.peers:
            self.send(peer, ProposalRequest(sqn))

    def _maybe_recover_proposal(self, sqn: int, src: Address) -> None:
        """Ask ``src`` to repeat a proposal we apparently missed."""
        if sqn <= self.exec_sqn:
            return
        now = self.loop.now
        if now - self._proposal_requested_at.get(sqn, -1.0) < 0.005:
            return
        if len(self._proposal_requested_at) > 512:
            self._proposal_requested_at = {
                s: t for s, t in self._proposal_requested_at.items()
                if s > self.exec_sqn
            }
        self._proposal_requested_at[sqn] = now
        self.send(src, ProposalRequest(sqn))

    def _on_proposal_request(self, src: Address, message: ProposalRequest) -> None:
        instance = self.instances.get(message.sqn)
        if instance is not None:
            if instance.executed:
                # Bulk catch-up: ship this and the following executed
                # instances so a lagging replica recovers in one round
                # trip instead of one instance per timeout.
                last = min(self.exec_sqn, message.sqn + _DECIDED_BATCH - 1)
                for sqn in range(message.sqn, last + 1):
                    batch_instance = self.instances.get(sqn)
                    if batch_instance is None or not batch_instance.executed:
                        break
                    self._send_decided(src, batch_instance)
            else:
                self._resend_proposal(src, instance)
        elif self.exec_sqn >= message.sqn:
            # We executed and discarded that instance: the requester is
            # too far behind for replay and needs a checkpoint.
            self._on_checkpoint_request(src, CheckpointRequest(message.sqn - 1))

    def _send_decided(self, dst: Address, instance: Instance) -> None:
        requests: Optional[tuple[Request, ...]] = None
        if instance.bodies is not None:
            requests = tuple(
                instance.bodies[rid]
                for rid in instance.rids
                if rid in instance.bodies
            )
        self.send(dst, Decided(instance.sqn, instance.rids, requests))

    def _on_decided(self, src: Address, message: Decided) -> None:
        if message.sqn <= self.exec_sqn:
            return
        instance = self.instances.get(message.sqn)
        if instance is None or not (instance.decided or instance.executed):
            instance = Instance(message.sqn, self.view, message.rids)
            instance.decided = True
            self.instances[message.sqn] = instance
            self._unexecuted.add(message.sqn)
            if message.sqn >= self.next_sqn:
                self.next_sqn = message.sqn + 1
        if message.requests is not None:
            bodies = instance.bodies or {}
            for request in message.requests:
                bodies[request.rid] = request
            instance.bodies = bodies
        if self.obs is not None:
            self.obs.on_quorum(instance)
        self._try_execute()
        # Receiving decided instances is progress: postpone suspecting
        # the leader while catch-up is flowing, and immediately ask for
        # the next missing instance (rate limited) instead of waiting
        # for another timeout.
        if self._has_outstanding_work():
            self._progress_timer.restart()
        following = self.instances.get(self.exec_sqn + 1)
        if following is None or not following.committed(self.config.quorum):
            self._maybe_recover_proposal(self.exec_sqn + 1, src)

    def _resend_proposal(self, dst: Address, instance: Instance) -> None:
        """Repeat a proposal towards a replica that missed it."""
        raise NotImplementedError

    def _lag_threshold(self) -> int:
        """How far behind an observed sqn may be before state transfer."""
        return self.config.window_size

    def _check_lag(self, observed_sqn: int) -> None:
        """Request state transfer when hopelessly behind the group."""
        if observed_sqn <= self.exec_sqn + self._lag_threshold():
            return
        now = self.loop.now
        if now - self._transfer_requested_at < 0.1:
            return  # a transfer request is already in flight
        self._transfer_requested_at = now
        self.send(self.leader_address, CheckpointRequest(self.exec_sqn))

    def _on_checkpoint_request(self, src: Address, message: CheckpointRequest) -> None:
        if self._checkpoint is None or self._checkpoint[0] <= message.known_sqn:
            # Take a fresh checkpoint at our execution head to help.
            self._take_checkpoint(self.exec_sqn)
        sqn, snapshot, executed_onr = self._checkpoint
        if sqn <= message.known_sqn:
            return
        transfer = CheckpointTransfer(
            sqn, snapshot, dict(executed_onr), self.app.snapshot_bytes()
        )
        self.send(src, transfer)

    def _on_checkpoint_transfer(self, src: Address, message: CheckpointTransfer) -> None:
        if message.sqn <= self.exec_sqn:
            return
        self.app.restore(message.snapshot)
        self.executed_onr = dict(message.executed_onr)
        self.exec_sqn = message.sqn
        self.window_start = max(self.window_start, message.sqn + 1)
        for sqn in [s for s in self.instances if s <= message.sqn]:
            del self.instances[sqn]
            self._unexecuted.discard(sqn)
        self.stats["state_transfers"] += 1
        self._after_state_transfer()
        self._try_execute()

    def _after_state_transfer(self) -> None:
        """Hook: protocol-specific cleanup after adopting a checkpoint."""

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------

    def _on_progress_timeout(self) -> None:
        if self.halted:
            return
        if not self._has_outstanding_work() and self._vc_target is None:
            return
        # Before (and alongside) suspecting the leader, probe for the
        # next instance we are missing: if the group is healthy and we
        # merely lag (lost messages), a peer resends the proposal or a
        # checkpoint and no view change is needed at the others.
        next_sqn = self.exec_sqn + 1
        instance = self.instances.get(next_sqn)
        if instance is None or not instance.committed(self.config.quorum):
            for peer in self.peers:
                self.send(peer, ProposalRequest(next_sqn))
        target = (self._vc_target if self._vc_target is not None else self.view) + 1
        self._start_view_change(target)

    def _start_view_change(self, target_view: int) -> None:
        if target_view <= self.view:
            return
        if self._vc_target is not None and target_view <= self._vc_target:
            return
        self._vc_target = target_view
        self.stats["view_changes"] += 1
        if self.obs is not None:
            self.obs.on_vc_start(target_view)
        # Carry ALL retained instances, executed ones included: any slot
        # that might have committed anywhere has, by quorum
        # intersection, an entry in at least one of the f+1 VIEWCHANGE
        # messages the new leader merges — which is what makes no-op
        # gap filling safe (see _maybe_activate_view).
        entries = tuple(
            self._make_window_entry(instance)
            for instance in self.instances.values()
        )
        message = ViewChange(target_view, entries)
        self._vc_msgs.setdefault(target_view, {})[self.index] = message
        self.multicast_peers(message)
        # Safeguard: if this view change stalls, escalate further.
        self._progress_timer.start()
        self._maybe_activate_view(target_view)

    def _on_viewchange_msg(self, src: Address, message: ViewChange) -> None:
        target = message.target_view
        if target <= self.view:
            return
        self._vc_msgs.setdefault(target, {})[src.index] = message
        others = [idx for idx in self._vc_msgs[target] if idx != self.index]
        if len(others) >= self.config.f and (
            self._vc_target is None or target > self._vc_target
        ):
            # Enough peers abandoned their view: join the view change.
            self._start_view_change(target)
        self._maybe_activate_view(target)

    def _maybe_activate_view(self, target_view: int) -> None:
        if self.leader_of(target_view) != self.index:
            return
        if target_view <= self.view:
            return
        messages = self._vc_msgs.get(target_view, {})
        if self.index not in messages or len(messages) < self.config.quorum:
            return
        # Merge windows: for each sequence number keep the entry from the
        # highest view (standard Paxos-style recovery).
        merged: dict[int, WindowEntry] = {}
        for message in messages.values():
            for entry in message.entries:
                current = merged.get(entry.sqn)
                if current is None or entry.view > current.view:
                    merged[entry.sqn] = entry
        self._enter_view(target_view)
        relevant = [entry for entry in sorted(merged.values(), key=lambda e: e.sqn)
                    if entry.sqn > self.exec_sqn]
        if relevant:
            # Fill ownership/transmission gaps with no-ops: a slot no
            # member of the quorum has any trace of cannot have been
            # committed anywhere (quorum intersection), so deciding it
            # empty is safe — and it is what restores a contiguous,
            # executable sequence after a slot owner died mid-stream.
            covered = {entry.sqn for entry in relevant}
            top = max(covered)
            for sqn in range(self.exec_sqn + 1, top):
                if sqn not in covered and sqn not in self.instances:
                    relevant.append(WindowEntry(sqn, 0, ()))
            relevant.sort(key=lambda entry: entry.sqn)
        next_sqn = max(
            [self.next_sqn] + [entry.sqn + 1 for entry in relevant]
        )
        self.next_sqn = next_sqn
        for entry in relevant:
            self._install_entry(entry, target_view)
        if self.obs is not None:
            self.obs.on_newview(target_view, len(relevant))
        self.multicast_peers(NewView(target_view, tuple(relevant), next_sqn))
        self._after_view_installed()
        self._try_execute()

    def _on_newview(self, src: Address, message: NewView) -> None:
        if message.view <= self.view or src.index != self.leader_of(message.view):
            return
        self._enter_view(message.view)
        self.next_sqn = max(self.next_sqn, message.next_sqn)
        sqns = []
        for entry in message.entries:
            if entry.sqn <= self.exec_sqn:
                continue
            self._install_entry(entry, message.view)
            sqns.append(entry.sqn)
        if sqns:
            self.multicast_peers(NewViewAck(message.view, tuple(sqns)))
        self._after_view_installed()
        self._try_execute()

    def _on_newviewack(self, src: Address, message: NewViewAck) -> None:
        if message.view != self.view:
            return
        for sqn in message.sqns:
            instance = self.instances.get(sqn)
            if instance is None or instance.executed:
                continue
            instance.commits.add(src.index)
            if self.obs is not None and instance.committed(self.config.quorum):
                self.obs.on_quorum(instance)
        self._try_execute()

    def _enter_view(self, view: int) -> None:
        """Adopt ``view``: reset view-change state and timers."""
        self.view = view
        self._vc_target = None
        if self.obs is not None:
            self.obs.on_view_installed(view)
        for target in [t for t in self._vc_msgs if t <= view]:
            del self._vc_msgs[target]
        self._batch_timer.cancel()
        self._propose_queue.clear()
        if self._has_outstanding_work():
            self._progress_timer.start()
        else:
            self._progress_timer.stop()

    def _make_window_entry(self, instance: Instance) -> WindowEntry:
        """What a VIEWCHANGE message carries for one instance."""
        return WindowEntry(instance.sqn, instance.view, instance.rids)

    def _install_entry(self, entry: WindowEntry, view: int) -> None:
        """Re-open an instance from a view-change entry in ``view``."""
        instance = self.instances.get(entry.sqn)
        if instance is not None and instance.executed:
            return
        new_instance = Instance(entry.sqn, view, entry.rids)
        new_instance.commits.add(self.leader_of(view))  # re-proposals are
        new_instance.commits.add(self.index)  # always led by the view leader
        if entry.requests is not None:
            new_instance.bodies = {req.rid: req for req in entry.requests}
        elif instance is not None and instance.bodies is not None:
            new_instance.bodies = instance.bodies
        self.instances[entry.sqn] = new_instance
        self._unexecuted.add(entry.sqn)
        if entry.sqn >= self.next_sqn:
            self.next_sqn = entry.sqn + 1

    def _after_view_installed(self) -> None:
        """Hook: protocol-specific actions once a new view is running."""

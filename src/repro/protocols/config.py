"""Configuration shared by all replication protocols.

The CPU-cost constants are the calibration knobs of the simulated
cluster: together with the state machine's execution cost they determine
where the system saturates.  The defaults are tuned (see
``tests/test_calibration.py``) so that a 3-replica cluster saturates in
the low tens of thousands of requests per second at ≈1 ms — the regime
of the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience import JITTER_MODES, RETRY_OUTCOME_MODES, RETRY_POLICY_NAMES


def fault_tolerance(n: int) -> int:
    """Largest crash-fault threshold an ``n``-replica group tolerates.

    ``f = (n - 1) // 2`` — the single owner of this arithmetic; every
    layer that needs an ``f`` for a given group size derives it here
    (detlint's PROTO001 flags literal ``f`` values elsewhere).
    """
    return (n - 1) // 2


def quorum_size(n: int) -> int:
    """Majority quorum of an ``n``-replica group: ``n // 2 + 1``.

    Equals ``fault_tolerance(n) + 1`` for the odd group sizes the
    protocols run with (``n = 2f + 1``).
    """
    return n // 2 + 1


@dataclass
class ProtocolConfig:
    """Parameters common to IDEM, Paxos, Paxos_LBR and BFT-SMaRt.

    Attributes
    ----------
    n, f:
        Group size and fault threshold; ``n`` must equal ``2f + 1``.
    cost_client_request:
        CPU seconds a replica spends receiving and admitting one client
        REQUEST (parsing, dedup lookup, acceptance test).
    cost_message:
        Base CPU seconds for receiving any replica-to-replica message.
    cost_per_id:
        Incremental CPU seconds per id carried in a batch message.
    cost_send:
        CPU seconds the sender spends per message put on the wire.
    cost_per_byte:
        CPU seconds per wire byte, paid by both sender and receiver.
        Models serialisation/copy bandwidth; this is what makes
        full-request dissemination (Paxos, BFT-SMaRt proposals) heavier
        than IDEM's id-based agreement (Section 4.2).
    cost_execution_overhead:
        Fixed per-batch execution overhead on top of the state machine's
        per-command costs.
    batch_max / batch_delay:
        The leader proposes when ``batch_max`` requests are pending or
        ``batch_delay`` seconds after the first pending one.
    window_size:
        Number of consensus instances kept live at once.
    checkpoint_interval:
        A checkpoint is taken every this many executed instances.
    checkpoint_cost:
        CPU seconds to create (or apply) a checkpoint.
    view_change_timeout:
        Progress timeout after which a replica suspects the leader.
    request_timeout:
        Client-side deadline after which an operation is abandoned.
    client_failover_timeout:
        For single-target clients (Paxos): resend to the next presumed
        leader after this long without an answer.
    think_time:
        Closed-loop client pause between completion and the next request.
    """

    n: int = 3
    f: int = 1
    # CPU cost model (seconds).
    cost_client_request: float = 3.0e-6
    cost_message: float = 1.5e-6
    cost_per_id: float = 0.3e-6
    cost_send: float = 1.2e-6
    cost_per_byte: float = 1.0e-9
    cost_execution_overhead: float = 2.0e-6
    # Log-normal sigma of per-job CPU-time noise (scheduling and
    # processing-time variation, Section 5.1); the source of divergence
    # between replicas' load views.
    cpu_jitter_sigma: float = 0.15
    # Batching.
    batch_max: int = 32
    batch_delay: float = 200e-6
    # Agreement window and checkpointing.
    window_size: int = 1024
    checkpoint_interval: int = 512
    checkpoint_cost: float = 400e-6
    # Fault handling.
    view_change_timeout: float = 1.4
    # Client behaviour.
    request_timeout: float = 4.0
    client_failover_timeout: float = 1.0
    think_time: float = 0.0
    # Random delay before the next operation after a rejection
    # (Section 7.1: 50-100 ms, the established backoff-with-jitter
    # technique for load management).
    reject_backoff_min: float = 0.05
    reject_backoff_max: float = 0.10
    # Fair-loss links require retransmission (Section 2.1): clients
    # resend an unanswered request at this interval.
    retransmit_interval: float = 0.1
    # -- client resilience (repro.resilience) -------------------------
    # What the client does after a rejection/timeout: "none" (abandon,
    # the paper's Section 7.1 behaviour and the byte-identical default),
    # "immediate", "fixed" or "exponential" (re-issue the same command
    # under a new request id).
    retry_policy: str = "none"
    # Which outcomes a retrying policy reacts to: "any", "timeout" or
    # "reject".  "timeout" models the common naive client that retries
    # silence but honours an explicit rejection's backoff guidance.
    retry_on: str = "any"
    # Caps shared by every retrying policy: total attempts per command,
    # an optional per-request deadline (0 disables) and an optional
    # token-bucket retry budget (rate 0 disables; `cap` bounds bursts).
    retry_max_attempts: int = 4
    request_deadline: float = 0.0
    retry_budget_rate: float = 0.0
    retry_budget_cap: float = 10.0
    # Backoff shape for "fixed"/"exponential" and the jitter flavour
    # ("none", "full", "decorrelated") applied to the exponential.
    retry_base_delay: float = 0.01
    retry_max_delay: float = 0.2
    retry_jitter: str = "full"
    # Hedged requests: after `hedge_delay` seconds without an answer
    # (or the observed `hedge_percentile` reply latency once enough
    # samples exist) send up to `hedge_max` duplicates of the pending
    # request to other replicas; 0.0 disables hedging.
    hedge_delay: float = 0.0
    hedge_percentile: float = 0.0
    hedge_max: int = 1

    def __post_init__(self) -> None:
        if self.n != 2 * self.f + 1:
            raise ValueError(f"n must equal 2f+1, got n={self.n}, f={self.f}")
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be at least 1, got {self.batch_max}")
        if self.window_size < 1:
            raise ValueError(f"window_size must be positive, got {self.window_size}")
        if self.retry_policy not in RETRY_POLICY_NAMES:
            raise ValueError(
                f"unknown retry_policy {self.retry_policy!r}; "
                f"choose from {RETRY_POLICY_NAMES}"
            )
        if self.retry_on not in RETRY_OUTCOME_MODES:
            raise ValueError(
                f"unknown retry_on {self.retry_on!r}; "
                f"choose from {RETRY_OUTCOME_MODES}"
            )
        if self.retry_jitter not in JITTER_MODES:
            raise ValueError(
                f"unknown retry_jitter {self.retry_jitter!r}; "
                f"choose from {JITTER_MODES}"
            )
        if self.retry_max_attempts < 1:
            raise ValueError(
                f"retry_max_attempts must be at least 1, got {self.retry_max_attempts}"
            )
        if self.hedge_max < 1:
            raise ValueError(f"hedge_max must be at least 1, got {self.hedge_max}")
        if not 0.0 <= self.hedge_percentile < 1.0:
            raise ValueError(
                f"hedge_percentile must be in [0, 1), got {self.hedge_percentile}"
            )

    @property
    def quorum(self) -> int:
        """Commit/require quorum size: f + 1."""
        return self.f + 1

    def leader_of(self, view: int) -> int:
        """Replica index leading ``view`` (round-robin, as in the paper).

        The protocol-owned leader policy: everything outside the
        protocol layer (cluster composition, fault targeting, client
        failover, the aggregate population backend) resolves leaders
        through here, so a different rotation — or a leaderless
        protocol — changes one place (detlint PROTO003 enforces this).
        """
        return view % self.n

"""Closed-loop client drivers.

Clients model the paper's benchmark clients (Section 7.1): each has at
most one pending request at a time and issues the next operation as soon
as the previous one completes (closed loop).  The semi-autonomous-client
behaviour from the system model is implemented here too: when an
operation is abandoned (rejection or timeout) an optional *fallback*
callable is invoked, and after a rejection the client backs off for a
random 50–100 ms before its next operation, as in Section 7.1.

What happens after a rejection or timeout is decided by a pluggable
:class:`repro.resilience.RetryPolicy` (``config.retry_policy``): the
default ``none`` abandons exactly as above, while retrying policies
re-issue the same command under a fresh request id — each operation is
then a sequence of *attempts* and the latency of its final outcome is
measured from the first send, the way an impatient real client
experiences it.  A :class:`repro.resilience.HedgePolicy`
(``config.hedge_delay``) can additionally race a duplicate of a
still-pending request against the original; the duplicate reuses the
request id, so at-most-once execution suppresses it server-side.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.app.commands import Command
from repro.cluster.metrics import MetricsCollector
from repro.net.addresses import Address, client_address, replica_address
from repro.net.message import Message
from repro.net.network import Network, NetworkNode
from repro.protocols.config import ProtocolConfig
from repro.protocols.messages import Reject, Reply, Request, Rid
from repro.resilience import ABANDON, make_hedge_policy, make_retry_policy
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry
from repro.sim.timers import Timer
from repro.workload.schedule import LoadSchedule
from repro.workload.ycsb import YcsbWorkload

# How long an inactive scheduled client waits before re-checking whether
# the load schedule has activated it.
_SCHEDULE_POLL = 0.02


class BaseClient(NetworkNode):
    """A closed-loop client issuing one request at a time.

    Subclasses choose the request-dissemination strategy by overriding
    :meth:`_send_request` and may add response handling (rejections).
    """

    def __init__(
        self,
        cid: int,
        loop: EventLoop,
        network: Network,
        config: ProtocolConfig,
        metrics: MetricsCollector,
        workload: YcsbWorkload,
        rng: RngRegistry,
        stop_time: float = math.inf,
        schedule: Optional[LoadSchedule] = None,
        fallback: Optional[Callable[[Command], None]] = None,
    ):
        self.cid = cid
        self.loop = loop
        self.network = network
        self.config = config
        self.metrics = metrics
        self.workload = workload
        self.address = client_address(cid)
        self.replicas = [replica_address(i) for i in range(config.n)]
        self.stop_time = stop_time
        self.schedule = schedule
        self.fallback = fallback
        self._ops_rng = rng.stream(f"client.{cid}.ops")
        self._timing_rng = rng.stream(f"client.{cid}.timing")
        self.retry_policy = make_retry_policy(config, cid, rng, self._timing_rng)
        self.hedge_policy = make_hedge_policy(config)
        self.onr = 0
        self.current_rid: Optional[Rid] = None
        self.current_command: Optional[Command] = None
        # First send of the current operation (latency reference point)
        # and of the current attempt; identical unless a retry happened.
        self.send_time = 0.0
        self.first_send_time = 0.0
        self.attempt = 0
        self._request_timer = Timer(loop, self._on_request_timeout)
        self._retransmit_timer = Timer(loop, self._on_retransmit)
        self._hedge_timer = Timer(loop, self._on_hedge_timeout)
        self._hedges_this_attempt = 0
        # When a driver is attached (open-loop load generation), the
        # client reports completion instead of self-scheduling its next
        # operation; see repro.workload.open_loop.
        self.driver = None
        # Clients that resend through another mechanism (leader failover)
        # disable the generic retransmission timer.
        self.retransmit_enabled = True
        self.stopped = False
        # Per-client outcome counters (fairness analysis, Section 5.1).
        self.successes = 0
        self.rejections = 0
        self.timeouts = 0
        # Resilience accounting: distinct commands started, every copy
        # put on the wire (first sends, retransmits, failovers, retries,
        # hedges), and the policy's decisions.  sends / commands_started
        # is the client's load-amplification factor.
        self.commands_started = 0
        self.sends = 0
        self.retries = 0
        self.hedges = 0
        self.give_ups = 0
        # When set (safety checking), every successfully answered rid is
        # appended so a checker can match replies against executions.
        self.reply_log: Optional[list[Rid]] = None
        # Optional observability facade (repro.obs.ClientObserver).
        self.obs = None

    def probe_state(self) -> dict[str, float]:
        """Flat counter snapshot for the probe layer (read-only; the
        sampler aggregates these over the whole client population)."""
        return {
            "commands": float(self.commands_started),
            "sends": float(self.sends),
            "retries": float(self.retries),
            "hedges": float(self.hedges),
            "give_ups": float(self.give_ups),
            "successes": float(self.successes),
            "rejections": float(self.rejections),
            "timeouts": float(self.timeouts),
        }

    # -- lifecycle -----------------------------------------------------

    def start(self, at: float) -> None:
        """Begin the closed loop at simulated time ``at``."""
        self.loop.call_at(at, self._issue_next)

    def stop(self) -> None:
        """Stop issuing new operations (the pending one is abandoned)."""
        self.stopped = True
        self._request_timer.cancel()
        self._retransmit_timer.cancel()
        self._hedge_timer.cancel()

    # -- the closed loop -----------------------------------------------

    def _issue_next(self) -> None:
        """Begin a fresh operation: draw a command, issue attempt 1."""
        if self.stopped or self.loop.now >= self.stop_time:
            return
        if self.schedule is not None and (
            self.cid >= self.schedule.active_clients(self.loop.now)
        ):
            self.loop.call_after(_SCHEDULE_POLL, self._issue_next)
            return
        self.current_command = self.workload.next_command(self._ops_rng)
        self.commands_started += 1
        self.attempt = 0
        self.first_send_time = self.loop.now
        self.retry_policy.on_operation_start(self.loop.now)
        self._issue_attempt()

    def _issue_attempt(self) -> None:
        """Send one attempt of the current command under a fresh rid."""
        if self.stopped or self.current_command is None:
            return
        self.onr += 1
        self.attempt += 1
        self.current_rid = (self.cid, self.onr)
        self.send_time = self.loop.now
        self._reset_operation_state()
        if self.obs is not None:
            self.obs.on_send(self.current_rid)
        self.sends += 1
        self._send_request(Request(self.current_rid, self.current_command))
        self._request_timer.start(self.config.request_timeout)
        if self.retransmit_enabled:
            self._retransmit_timer.start(self.config.retransmit_interval)
        if self.hedge_policy is not None:
            self._hedges_this_attempt = 0
            self._hedge_timer.start(self.hedge_policy.delay())

    def _schedule_next(self, delay: float) -> None:
        if self.driver is not None:
            self.driver.client_finished(self, delay)
        else:
            self.loop.call_after(delay, self._issue_next)

    def _reset_operation_state(self) -> None:
        """Hook: clear per-operation state before sending a new request."""

    def _send_request(self, request: Request) -> None:
        raise NotImplementedError

    def _send_hedge(self, request: Request) -> None:
        """Put the hedged duplicate on the wire (same rid, another path)."""
        self._send_request(request)

    def _on_retransmit(self) -> None:
        """Resend the pending request over the fair-loss links."""
        if self.stopped or self.current_rid is None:
            return
        if self.obs is not None:
            self.obs.on_send(self.current_rid, retransmit=True)
        self.sends += 1
        self._send_request(Request(self.current_rid, self.current_command))
        self._retransmit_timer.start(self.config.retransmit_interval)

    def _on_hedge_timeout(self) -> None:
        """The attempt outlived the hedge delay: race a duplicate."""
        if self.stopped or self.current_rid is None or self.hedge_policy is None:
            return
        if self._hedges_this_attempt >= self.hedge_policy.max_hedges:
            return
        self._hedges_this_attempt += 1
        self.hedges += 1
        self.sends += 1
        if self.obs is not None:
            self.obs.on_hedge(self.current_rid)
        self._send_hedge(Request(self.current_rid, self.current_command))
        if self._hedges_this_attempt < self.hedge_policy.max_hedges:
            self._hedge_timer.start(self.hedge_policy.delay())

    # -- responses -------------------------------------------------------

    def deliver(self, src: Address, message: Message) -> None:
        if isinstance(message, Reply):
            self._on_reply(src, message)
        elif isinstance(message, Reject):
            self._on_reject(src, message)

    def _on_reply(self, src: Address, message: Reply) -> None:
        if message.rid != self.current_rid:
            return  # late reply for an operation we already finished
        self._finish_success()

    def _on_reject(self, src: Address, message: Reject) -> None:
        """Default: protocols without rejection ignore REJECTs."""

    # -- outcomes --------------------------------------------------------

    def _finish_success(self) -> None:
        self._request_timer.cancel()
        self._retransmit_timer.cancel()
        self._hedge_timer.cancel()
        now = self.loop.now
        latency = now - self.first_send_time
        self.metrics.record_success(now, latency)
        self.successes += 1
        if self.hedge_policy is not None:
            self.hedge_policy.observe(latency)
        if self.reply_log is not None:
            self.reply_log.append(self.current_rid)
        if self.obs is not None:
            self.obs.on_outcome(self.current_rid, "success", latency)
        self.current_rid = None
        self.current_command = None
        self._schedule_next(self.config.think_time)

    def _finish_rejected(self) -> None:
        """The operation's attempt was rejected: ask the policy."""
        self._request_timer.cancel()
        self._retransmit_timer.cancel()
        self._hedge_timer.cancel()
        now = self.loop.now
        decision = self.retry_policy.next_action(
            "reject", self.attempt, now - self.first_send_time, now
        )
        if decision.kind != ABANDON:
            self._begin_retry("rejected", decision)
            return
        self.metrics.record_reject(now, now - self.first_send_time)
        self.rejections += 1
        if self.obs is not None:
            self.obs.on_outcome(
                self.current_rid, "rejected", now - self.first_send_time
            )
        self._abandon_operation(decision)

    def _on_request_timeout(self) -> None:
        self._retransmit_timer.cancel()
        self._hedge_timer.cancel()
        now = self.loop.now
        decision = self.retry_policy.next_action(
            "timeout", self.attempt, now - self.first_send_time, now
        )
        if decision.kind != ABANDON:
            self._begin_retry("timeout", decision)
            return
        self.metrics.record_timeout(now, now - self.first_send_time)
        self.timeouts += 1
        if self.obs is not None and self.current_rid is not None:
            self.obs.on_outcome(
                self.current_rid, "timeout", now - self.first_send_time
            )
        self._abandon_operation(decision)

    def _begin_retry(self, outcome: str, decision) -> None:
        """Re-issue the same command under a new rid after the backoff."""
        self.retries += 1
        if self.obs is not None:
            self.obs.on_retry(self.current_rid, outcome, self.attempt, decision.delay)
        self.current_rid = None
        self.loop.call_after(decision.delay, self._issue_attempt)

    def _abandon_operation(self, decision) -> None:
        """Terminal abandonment: fallback (while the per-operation state
        is still intact), then clear it and schedule the next command."""
        if decision.reason != "no-retry":
            self.give_ups += 1
            if self.obs is not None and self.current_rid is not None:
                self.obs.on_give_up(self.current_rid, decision.reason)
        if self.fallback is not None:
            self.fallback(self.current_command)
        self.current_rid = None
        self.current_command = None
        self._schedule_next(decision.delay)


class SingleTargetClient(BaseClient):
    """A Paxos-style client that talks to the presumed leader only.

    On silence it fails over to the next replica (client-side timeout),
    which is what makes rejections unavailable for several seconds after
    a leader crash in Paxos_LBR (Figure 3 / Figure 10d).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.presumed_leader = 0
        self._failover_timer = Timer(self.loop, self._on_failover_timeout)
        # The failover timer already resends; the generic retransmission
        # timer would only duplicate it.
        self.retransmit_enabled = False

    def _send_request(self, request: Request) -> None:
        self.network.send(
            self.address, replica_address(self.presumed_leader), request
        )
        self._failover_timer.start(self.config.client_failover_timeout)

    def _send_hedge(self, request: Request) -> None:
        # Hedge to a replica other than the presumed leader (it relays
        # to the leader) without disturbing the failover timer.
        target = (self.presumed_leader + self._hedges_this_attempt) % self.config.n
        self.network.send(self.address, replica_address(target), request)

    def _on_failover_timeout(self) -> None:
        if self.current_rid is None or self.stopped:
            return
        self.presumed_leader = (self.presumed_leader + 1) % self.config.n
        if self.obs is not None:
            self.obs.on_send(self.current_rid, retransmit=True)
        self.sends += 1
        self.network.send(
            self.address,
            replica_address(self.presumed_leader),
            Request(self.current_rid, self.current_command),
        )
        self._failover_timer.start(self.config.client_failover_timeout)

    def _on_reply(self, src: Address, message: Reply) -> None:
        # Learn the current leader from the reply's view.
        self.presumed_leader = self.config.leader_of(message.view)
        if message.rid != self.current_rid:
            return
        self._failover_timer.cancel()
        self._finish_success()

    def _finish_rejected(self) -> None:
        self._failover_timer.cancel()
        super()._finish_rejected()

    def _on_request_timeout(self) -> None:
        self._failover_timer.cancel()
        super()._on_request_timeout()


class LbrClient(SingleTargetClient):
    """Paxos_LBR client: a single REJECT from the leader aborts the operation."""

    def _on_reject(self, src: Address, message: Reject) -> None:
        self.metrics.note_reject_message(self.loop.now)
        if message.rid != self.current_rid:
            return
        self._finish_rejected()


class BroadcastClient(BaseClient):
    """A BFT-SMaRt-style client: multicast the request, first reply wins."""

    def _send_request(self, request: Request) -> None:
        self.network.multicast(self.address, self.replicas, request)

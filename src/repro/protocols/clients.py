"""Closed-loop client drivers.

Clients model the paper's benchmark clients (Section 7.1): each has at
most one pending request at a time and issues the next operation as soon
as the previous one completes (closed loop).  The semi-autonomous-client
behaviour from the system model is implemented here too: when an
operation is abandoned (rejection or timeout) an optional *fallback*
callable is invoked, and after a rejection the client backs off for a
random 50–100 ms before its next operation, as in Section 7.1.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.app.commands import Command
from repro.cluster.metrics import MetricsCollector
from repro.net.addresses import Address, client_address, replica_address
from repro.net.message import Message
from repro.net.network import Network, NetworkNode
from repro.protocols.config import ProtocolConfig
from repro.protocols.messages import Reject, Reply, Request, Rid
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry
from repro.sim.timers import Timer
from repro.workload.schedule import LoadSchedule
from repro.workload.ycsb import YcsbWorkload

# How long an inactive scheduled client waits before re-checking whether
# the load schedule has activated it.
_SCHEDULE_POLL = 0.02


class BaseClient(NetworkNode):
    """A closed-loop client issuing one request at a time.

    Subclasses choose the request-dissemination strategy by overriding
    :meth:`_send_request` and may add response handling (rejections).
    """

    def __init__(
        self,
        cid: int,
        loop: EventLoop,
        network: Network,
        config: ProtocolConfig,
        metrics: MetricsCollector,
        workload: YcsbWorkload,
        rng: RngRegistry,
        stop_time: float = math.inf,
        schedule: Optional[LoadSchedule] = None,
        fallback: Optional[Callable[[Command], None]] = None,
    ):
        self.cid = cid
        self.loop = loop
        self.network = network
        self.config = config
        self.metrics = metrics
        self.workload = workload
        self.address = client_address(cid)
        self.replicas = [replica_address(i) for i in range(config.n)]
        self.stop_time = stop_time
        self.schedule = schedule
        self.fallback = fallback
        self._ops_rng = rng.stream(f"client.{cid}.ops")
        self._timing_rng = rng.stream(f"client.{cid}.timing")
        self.onr = 0
        self.current_rid: Optional[Rid] = None
        self.current_command: Optional[Command] = None
        self.send_time = 0.0
        self._request_timer = Timer(loop, self._on_request_timeout)
        self._retransmit_timer = Timer(loop, self._on_retransmit)
        # When a driver is attached (open-loop load generation), the
        # client reports completion instead of self-scheduling its next
        # operation; see repro.workload.open_loop.
        self.driver = None
        # Clients that resend through another mechanism (leader failover)
        # disable the generic retransmission timer.
        self.retransmit_enabled = True
        self.stopped = False
        # Per-client outcome counters (fairness analysis, Section 5.1).
        self.successes = 0
        self.rejections = 0
        self.timeouts = 0
        # When set (safety checking), every successfully answered rid is
        # appended so a checker can match replies against executions.
        self.reply_log: Optional[list[Rid]] = None
        # Optional observability facade (repro.obs.ClientObserver).
        self.obs = None

    # -- lifecycle -----------------------------------------------------

    def start(self, at: float) -> None:
        """Begin the closed loop at simulated time ``at``."""
        self.loop.call_at(at, self._issue_next)

    def stop(self) -> None:
        """Stop issuing new operations (the pending one is abandoned)."""
        self.stopped = True
        self._request_timer.cancel()
        self._retransmit_timer.cancel()

    # -- the closed loop -----------------------------------------------

    def _issue_next(self) -> None:
        if self.stopped or self.loop.now >= self.stop_time:
            return
        if self.schedule is not None and (
            self.cid >= self.schedule.active_clients(self.loop.now)
        ):
            self.loop.call_after(_SCHEDULE_POLL, self._issue_next)
            return
        self.onr += 1
        self.current_rid = (self.cid, self.onr)
        self.current_command = self.workload.next_command(self._ops_rng)
        self.send_time = self.loop.now
        self._reset_operation_state()
        if self.obs is not None:
            self.obs.on_send(self.current_rid)
        self._send_request(Request(self.current_rid, self.current_command))
        self._request_timer.start(self.config.request_timeout)
        if self.retransmit_enabled:
            self._retransmit_timer.start(self.config.retransmit_interval)

    def _schedule_next(self, delay: float) -> None:
        if self.driver is not None:
            self.driver.client_finished(self, delay)
        else:
            self.loop.call_after(delay, self._issue_next)

    def _reset_operation_state(self) -> None:
        """Hook: clear per-operation state before sending a new request."""

    def _send_request(self, request: Request) -> None:
        raise NotImplementedError

    def _on_retransmit(self) -> None:
        """Resend the pending request over the fair-loss links."""
        if self.stopped or self.current_rid is None:
            return
        if self.obs is not None:
            self.obs.on_send(self.current_rid, retransmit=True)
        self._send_request(Request(self.current_rid, self.current_command))
        self._retransmit_timer.start(self.config.retransmit_interval)

    # -- responses -------------------------------------------------------

    def deliver(self, src: Address, message: Message) -> None:
        if isinstance(message, Reply):
            self._on_reply(src, message)
        elif isinstance(message, Reject):
            self._on_reject(src, message)

    def _on_reply(self, src: Address, message: Reply) -> None:
        if message.rid != self.current_rid:
            return  # late reply for an operation we already finished
        self._finish_success()

    def _on_reject(self, src: Address, message: Reject) -> None:
        """Default: protocols without rejection ignore REJECTs."""

    # -- outcomes --------------------------------------------------------

    def _finish_success(self) -> None:
        self._request_timer.cancel()
        self._retransmit_timer.cancel()
        now = self.loop.now
        self.metrics.record_success(now, now - self.send_time)
        self.successes += 1
        if self.reply_log is not None:
            self.reply_log.append(self.current_rid)
        if self.obs is not None:
            self.obs.on_outcome(self.current_rid, "success", now - self.send_time)
        self.current_rid = None
        self._schedule_next(self.config.think_time)

    def _finish_rejected(self) -> None:
        """Abandon the operation after rejection: fallback, backoff, next."""
        self._request_timer.cancel()
        self._retransmit_timer.cancel()
        now = self.loop.now
        self.metrics.record_reject(now, now - self.send_time)
        self.rejections += 1
        if self.obs is not None:
            self.obs.on_outcome(self.current_rid, "rejected", now - self.send_time)
        self.current_rid = None
        if self.fallback is not None:
            self.fallback(self.current_command)
        backoff = self._timing_rng.uniform(
            self.config.reject_backoff_min, self.config.reject_backoff_max
        )
        self._schedule_next(backoff)

    def _on_request_timeout(self) -> None:
        self._retransmit_timer.cancel()
        now = self.loop.now
        self.metrics.record_timeout(now)
        self.timeouts += 1
        if self.obs is not None and self.current_rid is not None:
            self.obs.on_outcome(self.current_rid, "timeout", now - self.send_time)
        self.current_rid = None
        if self.fallback is not None:
            self.fallback(self.current_command)
        self._schedule_next(0.0)


class SingleTargetClient(BaseClient):
    """A Paxos-style client that talks to the presumed leader only.

    On silence it fails over to the next replica (client-side timeout),
    which is what makes rejections unavailable for several seconds after
    a leader crash in Paxos_LBR (Figure 3 / Figure 10d).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.presumed_leader = 0
        self._failover_timer = Timer(self.loop, self._on_failover_timeout)
        # The failover timer already resends; the generic retransmission
        # timer would only duplicate it.
        self.retransmit_enabled = False

    def _send_request(self, request: Request) -> None:
        self.network.send(
            self.address, replica_address(self.presumed_leader), request
        )
        self._failover_timer.start(self.config.client_failover_timeout)

    def _on_failover_timeout(self) -> None:
        if self.current_rid is None or self.stopped:
            return
        self.presumed_leader = (self.presumed_leader + 1) % self.config.n
        if self.obs is not None:
            self.obs.on_send(self.current_rid, retransmit=True)
        self.network.send(
            self.address,
            replica_address(self.presumed_leader),
            Request(self.current_rid, self.current_command),
        )
        self._failover_timer.start(self.config.client_failover_timeout)

    def _on_reply(self, src: Address, message: Reply) -> None:
        # Learn the current leader from the reply's view.
        self.presumed_leader = message.view % self.config.n
        if message.rid != self.current_rid:
            return
        self._failover_timer.cancel()
        self._finish_success()

    def _finish_rejected(self) -> None:
        self._failover_timer.cancel()
        super()._finish_rejected()

    def _on_request_timeout(self) -> None:
        self._failover_timer.cancel()
        super()._on_request_timeout()


class LbrClient(SingleTargetClient):
    """Paxos_LBR client: a single REJECT from the leader aborts the operation."""

    def _on_reject(self, src: Address, message: Reject) -> None:
        self.metrics.note_reject_message(self.loop.now)
        if message.rid != self.current_rid:
            return
        self._finish_rejected()


class BroadcastClient(BaseClient):
    """A BFT-SMaRt-style client: multicast the request, first reply wins."""

    def _send_request(self, request: Request) -> None:
        self.network.multicast(self.address, self.replicas, request)

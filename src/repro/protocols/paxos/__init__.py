"""Kirsch–Amir-style Paxos, optionally with leader-based rejection (LBR)."""

from repro.protocols.paxos.config import PaxosConfig
from repro.protocols.paxos.replica import PaxosReplica

__all__ = ["PaxosConfig", "PaxosReplica"]

"""Configuration of the Paxos baseline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.config import ProtocolConfig


@dataclass
class PaxosConfig(ProtocolConfig):
    """Paxos parameters.

    ``leader_rejection`` enables Paxos_LBR (Section 3.3): the leader —
    and only the leader — runs a tail-drop acceptance test over its
    outstanding requests and rejects the excess.  ``reject_threshold``
    plays the role of IDEM's ``RT``: because IDEM clients multicast to
    all replicas, every IDEM replica's active set approximates the
    system-wide outstanding load, so the leader-side count here is
    directly comparable to IDEM's per-replica threshold.
    """

    leader_rejection: bool = False
    reject_threshold: int = 50

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.reject_threshold < 1:
            raise ValueError(
                f"reject threshold must be at least 1, got {self.reject_threshold}"
            )

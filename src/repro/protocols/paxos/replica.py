"""The Paxos baseline replica (Kirsch and Amir's variant, Section 7).

Clients talk to the leader only; the leader batches full requests into
proposals, replicas commit, and the leader answers.  A follower that
receives a request (after client failover) relays it to the leader.
Sharing :class:`~repro.protocols.base.BaseReplica` with IDEM gives the
paper's property that the two systems differ only in the protocol, not
the code base.

With ``leader_rejection`` enabled this becomes Paxos_LBR, the strawman
of Section 3.3: the leader tail-drops requests beyond its threshold and
sends REJECTs — which stops working entirely while the leader is down.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.app.state_machine import StateMachine
from repro.net.addresses import Address
from repro.net.network import Network
from repro.protocols.base import BaseReplica, Instance
from repro.protocols.messages import (
    ProposeFull,
    Reject,
    Request,
    Rid,
    WindowEntry,
)
from repro.protocols.paxos.config import PaxosConfig
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry


class PaxosReplica(BaseReplica):
    """One Paxos (or Paxos_LBR) replica."""

    def __init__(
        self,
        index: int,
        loop: EventLoop,
        network: Network,
        config: PaxosConfig,
        state_machine: StateMachine,
        rng: RngRegistry,
    ):
        super().__init__(index, loop, network, config, state_machine, rng)
        self.config: PaxosConfig = config
        # Leader: requests admitted but not yet executed (LBR counting).
        self.outstanding: dict[Rid, Request] = {}
        # Follower: requests relayed to the leader, re-relayed on view change.
        self.relayed: dict[Rid, Request] = {}
        self._handlers[ProposeFull] = self._on_propose_full

    def probe_state(self) -> dict[str, float]:
        state = super().probe_state()
        state["active_slots"] = float(len(self.outstanding))
        state["relayed"] = float(len(self.relayed))
        if self.config.leader_rejection:
            state["admission_threshold"] = float(self.config.reject_threshold)
        return state

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    def _on_request(self, src: Address, message: Request) -> None:
        self.stats["requests_seen"] += 1
        rid = message.rid
        if self._maybe_resend_reply(src, rid):
            return
        if not self.is_leader or self._vc_target is not None:
            # Relay to whoever we believe leads; remember it so we can
            # re-relay after a view change.
            if rid not in self.relayed:
                self.relayed[rid] = message
                if not self._vc_target:
                    if self.obs is not None:
                        self.obs.on_forward(rid)
                    self.send(self.leader_address, message)
                if not self._progress_timer.running:
                    self._progress_timer.start()
            return
        if rid in self.outstanding:
            return  # duplicate of an admitted request
        threshold = (
            self.config.reject_threshold if self.config.leader_rejection else None
        )
        if self.config.leader_rejection and (
            len(self.outstanding) >= self.config.reject_threshold
        ):
            self.stats["rejected"] += 1
            if self.obs is not None:
                self.obs.on_reject(
                    rid, len(self.outstanding), threshold, "leader-threshold"
                )
            self.send(src, Reject(rid))
            return
        if self.obs is not None:
            self.obs.on_accept(rid, len(self.outstanding), threshold)
        self.outstanding[rid] = message
        self.stats["accepted"] += 1
        self._queue_proposal(message)
        if not self._progress_timer.running:
            self._progress_timer.start()

    # ------------------------------------------------------------------
    # Proposing full-request batches
    # ------------------------------------------------------------------

    def _flush_proposals(self) -> None:
        if self.halted or self._vc_target is not None or not self.is_leader:
            return
        config = self.config
        while self._propose_queue and self._window_has_room():
            batch = tuple(self._propose_queue[: config.batch_max])
            del self._propose_queue[: len(batch)]
            sqn = self.next_sqn
            self.next_sqn = sqn + 1
            rids = tuple(request.rid for request in batch)
            instance = self._open_instance(sqn, self.view, rids)
            instance.bodies = {request.rid: request for request in batch}
            if self.obs is not None:
                self.obs.on_propose(self.view, sqn, rids)
            self.multicast_peers(ProposeFull(self.view, sqn, batch))
            self.stats["proposals"] += 1
        if self._propose_queue and not self._batch_timer.running:
            self._batch_timer.start(config.batch_delay)
        if not self._progress_timer.running:
            self._progress_timer.start()

    def _on_propose_full(self, src: Address, message: ProposeFull) -> None:
        rids = tuple(request.rid for request in message.requests)
        instance = self._accept_proposal(message.view, message.sqn, rids)
        if instance is None:
            return
        instance.bodies = {request.rid: request for request in message.requests}
        self._try_execute()

    def _resend_proposal(self, dst: Address, instance: Instance) -> None:
        if instance.bodies is None:
            return
        requests = tuple(instance.bodies[rid] for rid in instance.rids)
        self.send(dst, ProposeFull(instance.view, instance.sqn, requests))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _on_executed(self, rid: Rid, request: Request, result: Any) -> None:
        self.outstanding.pop(rid, None)
        self.relayed.pop(rid, None)
        if self.is_leader:
            self._reply_to_client(rid, result)
        else:
            self._record_reply(rid, result)

    def _has_outstanding_work(self) -> bool:
        return bool(self._unexecuted) or bool(self.relayed) or bool(self.outstanding)

    # ------------------------------------------------------------------
    # View changes carry full requests
    # ------------------------------------------------------------------

    def _make_window_entry(self, instance: Instance) -> WindowEntry:
        requests: Optional[tuple[Request, ...]] = None
        if instance.bodies is not None:
            requests = tuple(instance.bodies[rid] for rid in instance.rids)
        return WindowEntry(instance.sqn, instance.view, instance.rids, requests)

    def _after_view_installed(self) -> None:
        reproposed = {
            rid
            for instance in self.instances.values()
            if not instance.executed
            for rid in instance.rids
        }
        if self.is_leader:
            # Requests we admitted (or relayed) that did not survive in
            # the merged window must be proposed again.
            self.outstanding.update(self.relayed)
            self.relayed.clear()
            for rid, request in self.outstanding.items():
                cid, onr = rid
                if rid in reproposed or self.executed_onr.get(cid, 0) >= onr:
                    continue
                self._queue_proposal(request)
        else:
            self.outstanding.clear()
            for rid, request in list(self.relayed.items()):
                cid, onr = rid
                if rid in reproposed or self.executed_onr.get(cid, 0) >= onr:
                    self.relayed.pop(rid, None)
                    continue
                self.send(self.leader_address, request)

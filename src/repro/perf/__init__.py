"""Simulator performance harness.

Named microbenchmark scenarios over the discrete-event core
(:mod:`repro.perf.scenarios`), a runner with a committed events/sec
baseline gate (:mod:`repro.perf.runner`), and the ``repro-experiments
perf`` CLI.  This package deliberately lives *outside* the simulation
core: it reads the wall clock, which the DET rules forbid inside
anything that runs under the event loop.
"""

from repro.perf.runner import (  # noqa: F401
    SCENARIOS,
    PerfCheckReport,
    check_perf_baseline,
    render_results,
    results_jsonable,
    run_scenarios,
    write_perf_baseline,
)
from repro.perf.scenarios import PerfResult  # noqa: F401

"""The perf scenario runner and its committed baseline gate.

``run_scenarios`` executes the named scenarios best-of-``repeat`` (the
fastest run is the least-noisy estimate of the code's speed), and the
baseline machinery mirrors the campaign's ``BENCH_*.json`` convention:
``benchmarks/baselines/BENCH_simulator.json`` records events/sec and
dispatched-event counts per scenario.  The gate is asymmetric by
design:

* ``dispatched_events`` must match **exactly** — the scenarios are
  deterministic, so any drift means the simulation's behaviour changed,
  not its speed;
* ``events_per_sec`` may regress by at most the relative tolerance
  (generous, default −40%: CI runners are noisy).  Faster-than-baseline
  results pass (and are labelled ``improved`` as a hint to refresh).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import repro
from repro.perf.scenarios import (
    PerfResult,
    arraycore_churn,
    event_churn,
    fig2_slice,
    net_multicast,
    sharded_fig2,
    timer_restart_storm,
)

#: Scenario name -> callable(scale) in canonical (report) order.
SCENARIOS = {
    "event_churn": event_churn,
    "arraycore_churn": arraycore_churn,
    "timer_restart_storm": timer_restart_storm,
    "net_multicast": net_multicast,
    "fig2_slice": fig2_slice,
    "sharded_fig2": sharded_fig2,
}

DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"
BASELINE_NAME = "BENCH_simulator.json"

#: Only a slowdown beyond this relative fraction fails the gate.
DEFAULT_RELATIVE_TOLERANCE = 0.40


def run_scenarios(
    names: Optional[list[str]] = None, repeat: int = 3, scale: float = 1.0
) -> list[PerfResult]:
    """Run the selected scenarios; best (fastest) of ``repeat`` each."""
    if names is None:
        names = list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise KeyError(
            f"unknown perf scenario(s) {', '.join(unknown)}; "
            f"available: {', '.join(SCENARIOS)}"
        )
    results = []
    for name in names:
        scenario = SCENARIOS[name]
        best: Optional[PerfResult] = None
        for _ in range(max(1, repeat)):
            result = scenario(scale)
            if best is None or result.events_per_sec > best.events_per_sec:
                best = result
        results.append(best)
    return results


def render_results(results: list[PerfResult]) -> str:
    """Human-readable results table."""
    lines = [
        "Simulator perf scenarios:",
        "  scenario             wall       events        ev/s  peak heap  drained",
    ]
    for result in results:
        lines.append(
            f"  {result.scenario:<19s} {result.wall_seconds:6.3f}s "
            f"{result.dispatched_events:>9,}  {result.events_per_sec:>10,.0f}  "
            f"{result.peak_heap:>9,}  {result.drained_tombstones:>7,}"
        )
    return "\n".join(lines)


def results_jsonable(
    results: list[PerfResult], repeat: int, scale: float
) -> dict[str, Any]:
    """The machine-readable perf report (CI artifact)."""
    return {
        "bench": "simulator",
        "version": repro.__version__,
        "settings": {"scale": scale, "repeat": repeat},
        "results": [result.to_jsonable() for result in results],
    }


def baseline_path(directory: Path) -> Path:
    return Path(directory) / BASELINE_NAME


def write_perf_baseline(
    directory: Path,
    results: list[PerfResult],
    scale: float,
    notes: Optional[dict[str, Any]] = None,
) -> Path:
    """Write/refresh the committed simulator perf baseline.

    A re-bless only replaces the measurements: the previous baseline's
    ``notes`` (the human record of *why* the numbers are what they are)
    and its ``tolerance`` block (including per-metric overrides for
    noisier scenarios) carry forward unless explicitly overridden.
    """
    metrics: dict[str, float] = {}
    for result in results:
        metrics[f"{result.scenario}.events_per_sec"] = result.events_per_sec
        metrics[f"{result.scenario}.dispatched_events"] = result.dispatched_events
    previous = load_perf_baseline(directory) or {}
    tolerance = dict(
        previous.get("tolerance") or {"relative": DEFAULT_RELATIVE_TOLERANCE}
    )
    tolerance.setdefault("relative", DEFAULT_RELATIVE_TOLERANCE)
    document = {
        "bench": "simulator",
        "version": repro.__version__,
        "settings": {"scale": scale},
        "tolerance": tolerance,
        "metrics": metrics,
    }
    if notes is None:
        notes = previous.get("notes")
    if notes:
        document["notes"] = notes
    path = baseline_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_perf_baseline(directory: Path) -> Optional[dict[str, Any]]:
    path = baseline_path(directory)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


@dataclass
class PerfCheckEntry:
    """One gated metric (or one structural problem)."""

    metric: str
    status: str  # "ok" | "improved" | "regressed" | "count-drift" | ...
    baseline: Optional[float] = None
    current: Optional[float] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "improved", "new-metric")


@dataclass
class PerfCheckReport:
    """The outcome of gating one perf run against the baseline."""

    entries: list[PerfCheckEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        lines = ["Perf baseline check:"]
        for entry in self.entries:
            value = ""
            if entry.baseline is not None or entry.current is not None:
                value = (
                    f": baseline={_fmt(entry.baseline)} current={_fmt(entry.current)}"
                )
            lines.append(
                f"  {entry.status:12s} {entry.metric}{value}"
                + (f"  {entry.detail}" if entry.detail else "")
            )
        verdict = (
            "PASS"
            if self.ok
            else f"FAIL ({sum(1 for entry in self.entries if not entry.ok)} problem(s))"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.6g}"


def check_perf_baseline(
    directory: Path, results: list[PerfResult], scale: float
) -> PerfCheckReport:
    """Gate a perf run against the committed baseline."""
    report = PerfCheckReport()
    document = load_perf_baseline(directory)
    if document is None:
        report.entries.append(
            PerfCheckEntry(
                "*",
                "missing-baseline",
                detail=f"no {BASELINE_NAME}; run perf --update-baselines",
            )
        )
        return report
    recorded_scale = document.get("settings", {}).get("scale")
    if recorded_scale != scale:
        report.entries.append(
            PerfCheckEntry(
                "*",
                "settings-mismatch",
                detail=f"baseline recorded scale={recorded_scale}, run used {scale}",
            )
        )
        return report
    tolerance = document.get("tolerance", {})
    relative = float(tolerance.get("relative", DEFAULT_RELATIVE_TOLERANCE))
    # Per-metric overrides widen the band for intrinsically noisier
    # scenarios (pool startup in sharded_fig2 swings with machine load).
    per_metric = tolerance.get("per_metric", {})
    metrics = document.get("metrics", {})
    for result in results:
        rate_metric = f"{result.scenario}.events_per_sec"
        _check_rate(
            report,
            metrics,
            result,
            float(per_metric.get(rate_metric, relative)),
        )
        _check_count(report, metrics, result)
    return report


def _check_rate(
    report: PerfCheckReport,
    metrics: dict[str, Any],
    result: PerfResult,
    relative: float,
) -> None:
    metric = f"{result.scenario}.events_per_sec"
    baseline = metrics.get(metric)
    if baseline is None:
        report.entries.append(
            PerfCheckEntry(metric, "new-metric", current=result.events_per_sec)
        )
        return
    baseline = float(baseline)
    current = result.events_per_sec
    if current < baseline * (1.0 - relative):
        status, detail = "regressed", f"slower than −{relative * 100:.0f}% band"
    elif current > baseline * (1.0 + relative):
        status, detail = "improved", "faster than band; consider --update-baselines"
    else:
        status, detail = "ok", ""
    report.entries.append(
        PerfCheckEntry(metric, status, baseline=baseline, current=current, detail=detail)
    )


def _check_count(
    report: PerfCheckReport, metrics: dict[str, Any], result: PerfResult
) -> None:
    metric = f"{result.scenario}.dispatched_events"
    baseline = metrics.get(metric)
    if baseline is None:
        report.entries.append(
            PerfCheckEntry(metric, "new-metric", current=result.dispatched_events)
        )
        return
    exact = int(baseline) == result.dispatched_events
    report.entries.append(
        PerfCheckEntry(
            metric,
            "ok" if exact else "count-drift",
            baseline=float(baseline),
            current=float(result.dispatched_events),
            detail=""
            if exact
            else "deterministic event count changed — simulation behaviour drifted",
        )
    )

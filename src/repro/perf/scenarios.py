"""Microbenchmark scenarios exercising the simulator's hot paths.

Each scenario is a pure function of its ``scale`` knob: the simulated
work is fully deterministic (fixed seeds, no wall-clock input), so
``dispatched_events`` is byte-stable run to run and machine to machine —
only the wall time varies.  That split is what makes the committed
baseline gate workable: dispatched counts are compared exactly (a drift
means the simulation changed), events/sec within a generous band (CI
runners are noisy).

Scenario catalogue:

* ``event_churn`` — raw heap throughput: a flat batch of pre-scheduled
  events plus a long chain of immediate re-schedules.
* ``timer_restart_storm`` — the view-change pattern that motivated the
  lazy-deadline timer: a bank of progress timers restarted ten times
  per period.
* ``net_multicast`` — the network fan-out path: metering, per-link
  latency sampling and delivery scheduling.
* ``fig2_slice`` — a saturated paxos replica from the paper's Figure 2
  (150 clients), the end-to-end composition of all of the above.
* ``arraycore_churn`` — the ``event_churn`` shape on the opt-in
  array-backed core (:mod:`repro.sim.arraycore`); its ratio against
  ``event_churn`` is the core's dispatch-loop speedup.
* ``sharded_fig2`` — the scale-out composition: a Figure-2-style run
  sliced into 4 client cohorts, executed on the process pool with the
  array core and merged deterministically.  Wall time includes pool
  startup, so its ev/s against ``fig2_slice`` is the honest end-to-end
  campaign speedup.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Callable

from repro.sim.loop import EventLoop
from repro.sim.timers import RestartableTimer


@dataclass(frozen=True)
class PerfResult:
    """One scenario measurement."""

    scenario: str
    wall_seconds: float
    dispatched_events: int
    events_per_sec: float
    peak_heap: int
    drained_tombstones: int

    def to_jsonable(self) -> dict:
        return {
            "scenario": self.scenario,
            "wall_seconds": self.wall_seconds,
            "dispatched_events": self.dispatched_events,
            "events_per_sec": self.events_per_sec,
            "peak_heap": self.peak_heap,
            "drained_tombstones": self.drained_tombstones,
        }


def _measure(scenario: str, loop: EventLoop, run: Callable[[], None]) -> PerfResult:
    """Time ``run()`` and package the loop's counters."""
    # A gen-2 collection pausing mid-measurement swings short (few-ms)
    # samples far beyond the baseline band, so the timed region runs
    # with the collector held off, like timeit does.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        run()
        wall_seconds = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    dispatched = loop.dispatched_events
    return PerfResult(
        scenario=scenario,
        wall_seconds=wall_seconds,
        dispatched_events=dispatched,
        events_per_sec=dispatched / wall_seconds if wall_seconds > 0 else 0.0,
        peak_heap=loop.peak_heap,
        drained_tombstones=loop.drained_tombstones,
    )


def _nothing() -> None:
    pass


def event_churn(scale: float = 1.0) -> PerfResult:
    """Raw dispatch throughput: pre-scheduled batch + immediate chain."""
    loop = EventLoop()
    total = max(2, int(200_000 * scale))

    def chain(k: int) -> None:
        if k:
            loop.call_after(1e-6, chain, k - 1)

    def run() -> None:
        for i in range(total // 2):
            loop.call_at(i * 1e-6, _nothing)
        loop.call_after(0.0, chain, total // 2)
        loop.run()

    return _measure("event_churn", loop, run)


def timer_restart_storm(scale: float = 1.0) -> PerfResult:
    """A bank of progress timers restarted 10x per period (view-change load)."""
    loop = EventLoop()
    period = 1e-3
    fired = [0]
    timers = [
        RestartableTimer(loop, period, fired.__setitem__, 0, 0) for _ in range(16)
    ]
    rounds = max(1, int(40_000 * scale))

    def tick(k: int) -> None:
        for timer in timers:
            timer.restart()
        if k:
            loop.call_after(period / 10, tick, k - 1)

    def run() -> None:
        for timer in timers:
            timer.start()
        loop.call_after(0.0, tick, rounds)
        loop.run()

    return _measure("timer_restart_storm", loop, run)


def net_multicast(scale: float = 1.0) -> PerfResult:
    """Network fan-out: metering + latency sampling + delivery scheduling."""
    from repro.net.addresses import replica_address
    from repro.net.message import Message
    from repro.net.network import Network, NetworkNode
    from repro.sim.rng import RngRegistry

    class Sink(NetworkNode):
        def __init__(self, address):
            self.address = address

        def deliver(self, src, message):
            pass

    class Probe(Message):
        __slots__ = ()

    loop = EventLoop()
    net = Network(loop, RngRegistry(1))
    nodes = [Sink(replica_address(i)) for i in range(5)]
    for node in nodes:
        net.attach(node)
    message = Probe()
    src = nodes[0].address
    dsts = [node.address for node in nodes[1:]]
    rounds = max(1, int(30_000 * scale))

    def run() -> None:
        for round_ in range(rounds):
            net.multicast(src, dsts, message)
            if round_ % 100 == 0:
                loop.run_until(loop.now + 1e-3)
        loop.run()

    return _measure("net_multicast", loop, run)


def arraycore_churn(scale: float = 1.0) -> PerfResult:
    """The ``event_churn`` shape on the array-backed event core.

    Identical schedule to :func:`event_churn` (same ``dispatched_events``
    for a given scale), so the two scenarios' ev/s ratio isolates the
    core's dispatch-loop cost from everything else.
    """
    from repro.sim.arraycore import ArrayEventLoop

    loop = ArrayEventLoop()
    total = max(2, int(200_000 * scale))

    def chain(k: int) -> None:
        if k:
            loop.call_after(1e-6, chain, k - 1)

    def run() -> None:
        for i in range(total // 2):
            loop.call_at(i * 1e-6, _nothing)
        loop.call_after(0.0, chain, total // 2)
        loop.run()

    return _measure("arraycore_churn", loop, run)


def sharded_fig2(scale: float = 1.0) -> PerfResult:
    """A Figure-2-style run sharded 4 ways over the process pool.

    The full scale-out path: plan one paxos run, slice it into 4
    client cohorts (``repro.campaign.shard``), execute them on a
    4-worker spawn pool running the array core, and merge
    deterministically.  Wall time covers everything — pool startup,
    shard execution, merge — so the ev/s is what a campaign actually
    gains; ``dispatched_events`` is the cohort total and stays exact.
    Falls back to serial shard execution where the platform has no
    process pool (the rate drops; the count does not).
    """
    import os

    from repro.campaign.plan import sim_job
    from repro.campaign.pool import execute_jobs
    from repro.campaign.shard import merge_shard_groups, shard_campaign_jobs
    from repro.cluster.runner import RunSpec
    from repro.sim.cores import use_core

    duration = 0.5 * scale
    spec = RunSpec(
        system="paxos",
        clients=150,
        duration=duration,
        warmup=min(0.3, duration * 0.3),
        seed=1,
    )
    base = sim_job("perf", spec)
    jobs, groups = shard_campaign_jobs([base], 4)
    # The shard plan (and hence dispatched_events) is always 4-way; only
    # the pool width adapts to the machine, so the count stays exact
    # while single-core boxes are not charged for useless workers.
    workers = max(1, min(4, os.cpu_count() or 1))

    merged = None

    def run() -> None:
        nonlocal merged
        with use_core("array"):
            results, _ = execute_jobs(jobs, workers=workers, cache=None)
            merge_shard_groups(results, groups)
        merged = results[base.key]

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        run()
        wall_seconds = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    sim_stats = merged.sim_stats
    dispatched = sim_stats["dispatched_events"]
    return PerfResult(
        scenario="sharded_fig2",
        wall_seconds=wall_seconds,
        dispatched_events=dispatched,
        events_per_sec=dispatched / wall_seconds if wall_seconds > 0 else 0.0,
        peak_heap=sim_stats["peak_heap"],
        drained_tombstones=sim_stats["drained_tombstones"],
    )


def fig2_slice(scale: float = 1.0) -> PerfResult:
    """A saturated paxos replica: 150 clients from the Figure 2 sweep."""
    from repro.cluster.builder import build_cluster

    stop_time = 0.3 * scale
    started = time.perf_counter()
    cluster = build_cluster("paxos", 150, seed=1, stop_time=stop_time)
    cluster.run_until(stop_time)
    wall_seconds = time.perf_counter() - started
    loop = cluster.loop
    dispatched = loop.dispatched_events
    return PerfResult(
        scenario="fig2_slice",
        wall_seconds=wall_seconds,
        dispatched_events=dispatched,
        events_per_sec=dispatched / wall_seconds if wall_seconds > 0 else 0.0,
        peak_heap=loop.peak_heap,
        drained_tombstones=loop.drained_tombstones,
    )

"""Deterministic sim-time observability: metrics, lifecycle spans,
replica-state probes, the flight recorder, drift detection, exporters.

See ``docs/OBSERVABILITY.md`` for the span model, the probe catalog and
the detector rule reference.
"""

from repro.obs.analysis import (
    RequestBreakdown,
    build_breakdowns,
    reject_reason_histogram,
    render_report,
    resilience_summary,
    top_slowest,
)
from repro.obs.detect import (
    DetectorConfig,
    DetectorRule,
    Finding,
    RULES,
    findings_jsonable,
    run_detectors,
)
from repro.obs.export import chrome_trace_events, write_chrome_trace, write_jsonl
from repro.obs.hub import ObservabilityHub
from repro.obs.probes import Probeable, ProbeSampler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    ClientObserver,
    ReplicaObserver,
    RequestTracer,
    TraceEvent,
)
from repro.obs.timeseries import (
    FlightRecorder,
    PercentileSketch,
    Series,
    WindowStats,
    series_counter_events,
    write_series_chrome_trace,
    write_series_jsonl,
)

__all__ = [
    "ClientObserver",
    "Counter",
    "DetectorConfig",
    "DetectorRule",
    "Finding",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityHub",
    "PercentileSketch",
    "Probeable",
    "ProbeSampler",
    "RULES",
    "ReplicaObserver",
    "RequestBreakdown",
    "RequestTracer",
    "Series",
    "TraceEvent",
    "WindowStats",
    "build_breakdowns",
    "chrome_trace_events",
    "findings_jsonable",
    "reject_reason_histogram",
    "render_report",
    "resilience_summary",
    "run_detectors",
    "series_counter_events",
    "top_slowest",
    "write_chrome_trace",
    "write_jsonl",
    "write_series_chrome_trace",
    "write_series_jsonl",
]

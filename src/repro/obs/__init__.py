"""Deterministic sim-time observability: metrics, lifecycle spans, exporters.

See ``docs/OBSERVABILITY.md`` for the span model and usage examples.
"""

from repro.obs.analysis import (
    RequestBreakdown,
    build_breakdowns,
    reject_reason_histogram,
    render_report,
    resilience_summary,
    top_slowest,
)
from repro.obs.export import chrome_trace_events, write_chrome_trace, write_jsonl
from repro.obs.hub import ObservabilityHub
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    ClientObserver,
    ReplicaObserver,
    RequestTracer,
    TraceEvent,
)

__all__ = [
    "ClientObserver",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityHub",
    "ReplicaObserver",
    "RequestBreakdown",
    "RequestTracer",
    "TraceEvent",
    "build_breakdowns",
    "chrome_trace_events",
    "reject_reason_histogram",
    "render_report",
    "resilience_summary",
    "top_slowest",
    "write_chrome_trace",
    "write_jsonl",
]

"""Invariant drift detection over flight-recorder series.

Declarative rules scan the probe series of one run
(:class:`repro.obs.timeseries.FlightRecorder`) for *protocol-state
drift*: internal state evolving in a way no healthy execution should
show.  Each rule emits structured :class:`Finding` rows carrying the
sim-time window, the node, and scalar evidence — enough to point a
human at the exact series and interval.

The built-in rules target the failure shapes of this repo's protocols:

``active_set_leak``
    A replica carries dedup-dead active entries (request ids whose
    client has already executed an operation number at or above
    theirs — the ``dead_slots`` probe series) and the count never
    shrinks over a sustained window.  Healthy IDEM frees those slots
    on the client's next rejected request
    (``IdemReplica._release_dedup_dead``), so a non-decreasing
    non-zero count is the active-slot leak that historically pinned a
    replica at its admission threshold (see ``docs/RESILIENCE.md``).

``threshold_pinned``
    Occupancy pinned at the admission threshold while rejections keep
    climbing and executions are flat — the replica is shedding all load
    but doing no work, regardless of what clients perceive.

``occupancy_imbalance``
    Active-set occupancy grows by several slots over a window in which
    executions are flat.  Catches a leak while it is still filling,
    before the threshold pins.

``post_fault_non_recovery``
    After an annotated fault window ends (recorder marks, written by
    the hub's fault annotator), client goodput fails to return to a
    fraction of its pre-fault rate.

All rules share hygiene requirements: windows only span samples where
the replica was up, a sampling gap larger than twice the probe interval
breaks any window (crash/recovery boundaries), iteration is sorted
everywhere and evidence is plain floats — detector output is a pure
function of the recorded series, independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.timeseries import FlightRecorder, Series

#: Minimum sim-time span a drift window must cover before it is reported.
DEFAULT_MIN_WINDOW = 0.5

#: Minimum samples inside a window (guards tiny runs with huge intervals).
DEFAULT_MIN_SAMPLES = 5

#: Active-set growth (slots) that counts as imbalance while executions
#: are flat.
DEFAULT_MIN_GROWTH = 3.0

#: Post-fault goodput must reach this fraction of the pre-fault rate.
DEFAULT_RECOVERY_FRACTION = 0.5


@dataclass
class Finding:
    """One detected invariant violation, with its evidence window."""

    rule: str
    node: str
    start: float
    end: float
    summary: str
    evidence: dict[str, float] = field(default_factory=dict)

    def jsonable(self) -> dict:
        return {
            "rule": self.rule,
            "node": self.node,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "summary": self.summary,
            "evidence": {
                key: round(value, 6) for key, value in sorted(self.evidence.items())
            },
        }


def findings_jsonable(findings: list[Finding]) -> list[dict]:
    """JSON-safe rows, in the detector's deterministic order."""
    return [finding.jsonable() for finding in findings]


@dataclass(frozen=True)
class DetectorRule:
    """One declarative invariant rule."""

    name: str
    description: str
    fn: Callable[[FlightRecorder, "DetectorConfig"], list[Finding]]


@dataclass(frozen=True)
class DetectorConfig:
    """Shared rule parameters (all sim-time seconds unless noted)."""

    interval: float = 0.01
    min_window: float = DEFAULT_MIN_WINDOW
    min_samples: int = DEFAULT_MIN_SAMPLES
    min_growth: float = DEFAULT_MIN_GROWTH
    recovery_fraction: float = DEFAULT_RECOVERY_FRACTION


# -- shared walking machinery ------------------------------------------


def _replica_nodes(recorder: FlightRecorder) -> list[str]:
    return [node for node in recorder.nodes() if node.startswith("replica-")]


def _gap_breaks(previous_time: float, time: float, config: DetectorConfig) -> bool:
    """A sampling gap > 2x the cadence ends any window (downtime)."""
    return (time - previous_time) > 2.0 * config.interval


def _value_at(series: Optional[Series], time: float) -> float:
    if series is None:
        return math.nan
    return series.value_at(time)


class _Window:
    """An open candidate window while a rule's predicate keeps holding."""

    __slots__ = ("start", "end", "samples", "first", "last")

    def __init__(self, start: float, value: float):
        self.start = start
        self.end = start
        self.samples = 1
        self.first = value
        self.last = value

    def extend(self, time: float, value: float) -> None:
        self.end = time
        self.samples += 1
        self.last = value

    def long_enough(self, config: DetectorConfig) -> bool:
        return (
            self.end - self.start >= config.min_window
            and self.samples >= config.min_samples
        )


def _scan_windows(
    series: Series,
    predicate: Callable[[float, float], bool],
    config: DetectorConfig,
) -> list[_Window]:
    """Maximal windows of consecutive samples where ``predicate(t, v)``
    holds, broken at sampling gaps."""
    windows: list[_Window] = []
    current: Optional[_Window] = None
    previous_time: Optional[float] = None

    def close() -> None:
        nonlocal current
        if current is not None and current.long_enough(config):
            windows.append(current)
        current = None

    for time, value in series.samples():
        if previous_time is not None and _gap_breaks(previous_time, time, config):
            close()
        previous_time = time
        if predicate(time, value):
            if current is None:
                current = _Window(time, value)
            else:
                current.extend(time, value)
        else:
            close()
    close()
    return windows


# -- rules -------------------------------------------------------------


def _rule_active_set_leak(
    recorder: FlightRecorder, config: DetectorConfig
) -> list[Finding]:
    findings: list[Finding] = []
    for node in _replica_nodes(recorder):
        dead = recorder.series(node, "dead_slots")
        up = recorder.series(node, "up")
        if dead is None:
            # Protocol without dedup bookkeeping (e.g. Paxos) — the
            # leak cannot exist there by construction.
            continue
        active = recorder.series(node, "active_slots")
        threshold = recorder.series(node, "admission_threshold")

        state = {"previous_dead": -math.inf}

        def predicate(time: float, value: float) -> bool:
            if _value_at(up, time) != 1.0 or value < 1.0:
                state["previous_dead"] = -math.inf
                return False
            if value < state["previous_dead"]:
                # A release happened: healthy sweeping, restart the
                # candidate window from this sample.
                state["previous_dead"] = value
                return False
            state["previous_dead"] = value
            return True

        for window in _scan_windows(dead, predicate, config):
            findings.append(
                Finding(
                    rule="active_set_leak",
                    node=node,
                    start=window.start,
                    end=window.end,
                    summary=(
                        f"{window.last:.0f} dedup-dead active slot(s) held "
                        f"without release for "
                        f"{window.end - window.start:.2f}s"
                    ),
                    evidence={
                        "dead_start": window.first,
                        "dead_end": window.last,
                        "active": _value_at(active, window.end),
                        "threshold": _value_at(threshold, window.end),
                        "samples": float(window.samples),
                    },
                )
            )
    return findings


def _rule_threshold_pinned(
    recorder: FlightRecorder, config: DetectorConfig
) -> list[Finding]:
    findings: list[Finding] = []
    for node in _replica_nodes(recorder):
        active = recorder.series(node, "active_slots")
        threshold = recorder.series(node, "admission_threshold")
        executed = recorder.series(node, "executed_total")
        rejected = recorder.series(node, "rejected_total")
        up = recorder.series(node, "up")
        if active is None or threshold is None or executed is None or rejected is None:
            continue

        def predicate(time: float, value: float) -> bool:
            if _value_at(up, time) != 1.0:
                return False
            cap = _value_at(threshold, time)
            return not math.isnan(cap) and value >= cap

        for window in _scan_windows(active, predicate, config):
            executed_delta = _value_at(executed, window.end) - _value_at(
                executed, window.start
            )
            rejected_delta = _value_at(rejected, window.end) - _value_at(
                rejected, window.start
            )
            if executed_delta != 0.0 or rejected_delta <= 0.0:
                continue
            findings.append(
                Finding(
                    rule="threshold_pinned",
                    node=node,
                    start=window.start,
                    end=window.end,
                    summary=(
                        f"occupancy at threshold for "
                        f"{window.end - window.start:.2f}s while rejecting "
                        f"{rejected_delta:.0f} requests and executing none"
                    ),
                    evidence={
                        "active_end": window.last,
                        "rejected_delta": rejected_delta,
                        "executed_delta": executed_delta,
                        "samples": float(window.samples),
                    },
                )
            )
    return findings


def _rule_occupancy_imbalance(
    recorder: FlightRecorder, config: DetectorConfig
) -> list[Finding]:
    findings: list[Finding] = []
    for node in _replica_nodes(recorder):
        active = recorder.series(node, "active_slots")
        executed = recorder.series(node, "executed_total")
        up = recorder.series(node, "up")
        if active is None or executed is None:
            continue

        # Windows where executions are flat (and the replica is up)...
        anchor = {"executed": math.nan}

        def predicate(time: float, value: float) -> bool:
            if _value_at(up, time) != 1.0:
                anchor["executed"] = math.nan
                return False
            executed_now = _value_at(executed, time)
            if math.isnan(anchor["executed"]):
                anchor["executed"] = executed_now
                return True
            if executed_now != anchor["executed"]:
                anchor["executed"] = math.nan
                return False
            return True

        # ...during which occupancy still grew by min_growth or more.
        for window in _scan_windows(active, predicate, config):
            growth = window.last - window.first
            if growth < config.min_growth:
                continue
            findings.append(
                Finding(
                    rule="occupancy_imbalance",
                    node=node,
                    start=window.start,
                    end=window.end,
                    summary=(
                        f"active set grew by {growth:.0f} slots over "
                        f"{window.end - window.start:.2f}s with zero "
                        "executions"
                    ),
                    evidence={
                        "active_start": window.first,
                        "active_end": window.last,
                        "growth": growth,
                        "samples": float(window.samples),
                    },
                )
            )
    return findings


def _rule_post_fault_non_recovery(
    recorder: FlightRecorder, config: DetectorConfig
) -> list[Finding]:
    findings: list[Finding] = []
    goodput = recorder.series("clients", "successes")
    if goodput is None or not recorder.marks:
        return findings
    horizon = goodput.last_time
    first_sample = next(iter(goodput.times()), math.inf)
    for mark in recorder.marks:
        start = float(mark.get("time", 0.0))
        end = float(mark.get("end", start))
        label = str(mark.get("label", "fault"))
        span = max(end - start, config.min_window)
        pre_start = start - span
        post_end = end + span
        # Need a full pre-fault baseline and a full post-fault window.
        if pre_start < first_sample or post_end > horizon:
            continue
        pre_delta = goodput.value_at(start) - goodput.value_at(pre_start)
        post_delta = goodput.value_at(post_end) - goodput.value_at(end)
        if math.isnan(pre_delta) or math.isnan(post_delta) or pre_delta <= 0:
            continue
        if post_delta >= config.recovery_fraction * pre_delta:
            continue
        findings.append(
            Finding(
                rule="post_fault_non_recovery",
                node="clients",
                start=end,
                end=post_end,
                summary=(
                    f"goodput after fault '{label}' is "
                    f"{post_delta:.0f} successes/{span:.2f}s vs "
                    f"{pre_delta:.0f} before (needs "
                    f">= {config.recovery_fraction:.0%})"
                ),
                evidence={
                    "pre_delta": pre_delta,
                    "post_delta": post_delta,
                    "fault_start": start,
                    "fault_end": end,
                    "recovery_fraction": config.recovery_fraction,
                },
            )
        )
    return findings


#: The rule registry, in report order.
RULES: tuple[DetectorRule, ...] = (
    DetectorRule(
        "active_set_leak",
        "dedup-dead active slots held without release",
        _rule_active_set_leak,
    ),
    DetectorRule(
        "threshold_pinned",
        "occupancy at threshold while rejecting everything, executing nothing",
        _rule_threshold_pinned,
    ),
    DetectorRule(
        "occupancy_imbalance",
        "occupancy grows while executions are flat",
        _rule_occupancy_imbalance,
    ),
    DetectorRule(
        "post_fault_non_recovery",
        "goodput does not recover after an annotated fault window",
        _rule_post_fault_non_recovery,
    ),
)


def run_detectors(
    recorder: FlightRecorder,
    config: Optional[DetectorConfig] = None,
    rules: Optional[tuple[DetectorRule, ...]] = None,
) -> list[Finding]:
    """Run every rule over the recording; findings sorted and stable."""
    if config is None:
        config = DetectorConfig()
    findings: list[Finding] = []
    for rule in rules if rules is not None else RULES:
        findings.extend(rule.fn(recorder, config))
    findings.sort(key=lambda f: (f.rule, f.node, f.start, f.end))
    return findings

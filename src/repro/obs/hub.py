"""The observability hub: one object wiring metrics + spans into a cluster.

Attach a hub to a built (not yet run) cluster and every replica and
client gets an observer facade (``node.obs``); the hub optionally drives
a periodic sampler for replica internals (queue depth, busy fraction,
acceptance-buffer occupancy) and annotates fault windows from a
:class:`~repro.cluster.faults.FaultSchedule` into the trace.

Observer-only contract: the sampler schedules pure *read* callbacks on
the event loop.  Scheduling extra events shifts the loop's internal
sequence numbers, but never the relative order of simulation events
(ties between simulation events keep their original scheduling order),
and the callbacks touch no protocol state and no RNG stream — so a run
with a hub attached produces byte-identical results to one without.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.obs.probes import ProbeSampler
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import FAULT, ClientObserver, ReplicaObserver, RequestTracer
from repro.obs.timeseries import FlightRecorder


class ObservabilityHub:
    """Bundles a tracer and a registry and wires them into a cluster.

    With ``probes=True`` the hub also owns a flight recorder
    (:class:`~repro.obs.timeseries.FlightRecorder`) and records a probe
    sample of every node on the same tick that drives observer
    sampling — probing schedules no loop events of its own, so a probed
    run and a merely-observed run see the identical event sequence.
    """

    def __init__(
        self,
        sample_interval: float = 0.01,
        max_events: int = 2_000_000,
        probes: bool = False,
    ):
        if sample_interval <= 0:
            raise ValueError(
                f"sample interval must be positive, got {sample_interval}"
            )
        self.sample_interval = sample_interval
        self.tracer = RequestTracer(max_events=max_events)
        self.registry = MetricsRegistry()
        self.cluster = None
        self._sampling_until = -math.inf
        self.recorder: Optional[FlightRecorder] = None
        self._probe_sampler: Optional[ProbeSampler] = None
        if probes:
            self.recorder = FlightRecorder()
            self._probe_sampler = ProbeSampler(self.recorder, sample_interval)

    def attach(self, cluster, horizon: Optional[float] = None) -> "ObservabilityHub":
        """Wire observers into every node of ``cluster``.

        ``horizon`` bounds the periodic sampler (pass the run duration);
        with ``None`` no sampling events are scheduled and only
        event-driven instrumentation records.
        """
        self.cluster = cluster
        cluster.observability = self
        for replica in cluster.replicas:
            self.attach_replica(replica)
        for client in cluster.clients:
            client.obs = ClientObserver(self.tracer, self.registry, client)
        if horizon is not None:
            self._sampling_until = horizon
            cluster.loop.call_after(self.sample_interval, self._sample_tick)
        return self

    def attach_replica(self, replica) -> None:
        """Attach a fresh observer to ``replica`` (also used on recovery)."""
        replica.obs = ReplicaObserver(self.tracer, self.registry, replica)

    def _sample_tick(self) -> None:
        cluster = self.cluster
        for replica in cluster.replicas:
            observer = replica.obs
            if observer is not None:
                observer.sample(self.sample_interval)
        if self._probe_sampler is not None:
            self._probe_sampler.sample(cluster)
        next_time = cluster.loop.now + self.sample_interval
        if next_time <= self._sampling_until:
            cluster.loop.call_after(self.sample_interval, self._sample_tick)

    # -- fault-window annotation --------------------------------------

    def annotate_faults(self, schedule, horizon: float) -> None:
        """Record each fault of ``schedule`` as a window in the trace.

        Crashes extend to the matching recovery (or the horizon),
        partitions to the matching heal; duration-bearing faults carry
        their own end.  Windows land on the synthetic ``faults`` node.
        """
        from repro.cluster.faults import (
            CrashFault,
            HealFault,
            LatencySpike,
            LossWindow,
            PartitionFault,
            RecoverFault,
            SlowReplica,
        )

        faults = sorted(schedule.faults, key=lambda fault: fault.time)
        for position, fault in enumerate(faults):
            label = None
            end = fault.time
            if isinstance(fault, CrashFault):
                label = f"crash {fault.target}"
                end = horizon
                for later in faults[position + 1:]:
                    if isinstance(later, RecoverFault) and (
                        later.target is None or later.target == fault.target
                    ):
                        end = later.time
                        break
            elif isinstance(fault, PartitionFault):
                label = f"partition {fault.a}<->{fault.b}"
                end = horizon
                for later in faults[position + 1:]:
                    if isinstance(later, HealFault) and {later.a, later.b} == {
                        fault.a, fault.b,
                    }:
                        end = later.time
                        break
            elif isinstance(fault, LossWindow):
                label = f"loss p={fault.probability:.2f}"
                end = fault.time + fault.duration
            elif isinstance(fault, SlowReplica):
                label = f"slow replica-{fault.target} x{fault.factor:.1f}"
                end = fault.time + fault.duration
            elif isinstance(fault, LatencySpike):
                label = f"latency spike replica-{fault.target} x{fault.factor:.1f}"
                end = fault.time + fault.duration
            elif isinstance(fault, RecoverFault):
                continue  # represented as the end of its crash window
            else:
                label = fault.describe()
            self.tracer.emit(
                fault.time, "faults", FAULT, None,
                {"label": label, "begin": fault.time, "end": min(end, horizon)},
            )
            if self.recorder is not None:
                self.recorder.mark(fault.time, min(end, horizon), str(label))

"""Request-lifecycle span events and the per-node observer facades.

Every client request carries its request id ``rid = (cid, onr)`` through
the protocol, which doubles as its *trace id*: the tracer records one
flat, time-ordered stream of :class:`TraceEvent` rows keyed by rid (and
by node for node-scoped events like view changes), from which the
analysis layer reconstructs a causal span tree per request::

    client_send -> recv (per replica) -> accept/reject -> propose
        -> quorum -> exec -> reply_sent -> client_outcome

The observers are pure *observers*: they read ``loop.now`` and protocol
state, append to lists and bump registry metrics, but never schedule
events, never draw randomness and never mutate protocol state.  A run
with observers attached is therefore bit-identical to one without.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

from repro.obs.registry import MetricsRegistry

Rid = tuple[int, int]

# Event kinds (kept short: they appear once per event in exports).
CLIENT_SEND = "client_send"
CLIENT_RETRANSMIT = "client_retransmit"
CLIENT_REJECT_RECV = "client_reject_recv"
CLIENT_RETRY = "client_retry"
CLIENT_HEDGE = "client_hedge"
CLIENT_GIVE_UP = "client_give_up"
CLIENT_OUTCOME = "client_outcome"
RECV = "recv"
ACCEPT = "accept"
REJECT = "reject"
PROPOSE = "propose"
QUORUM = "quorum"
EXEC = "exec"
EXECUTE = "execute"
REPLY_SENT = "reply_sent"
FORWARD = "forward"
ADOPT = "adopt"
FETCH = "fetch"
VC_START = "vc_start"
NEWVIEW = "newview"
VC_DONE = "view_installed"
SAMPLE = "sample"
FAULT = "fault"


class TraceEvent(NamedTuple):
    """One row of the lifecycle trace."""

    time: float
    node: str
    kind: str
    rid: Optional[Rid]
    data: Optional[dict[str, Any]]


class RequestTracer:
    """Collects :class:`TraceEvent` rows, bounded by ``max_events``.

    Once the cap is reached further events are counted but dropped
    (``truncated``), mirroring :class:`repro.net.trace.MessageTracer`.
    """

    def __init__(self, max_events: int = 2_000_000):
        if max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.truncated = 0

    def emit(
        self,
        time: float,
        node: str,
        kind: str,
        rid: Optional[Rid] = None,
        data: Optional[dict[str, Any]] = None,
    ) -> None:
        """Append one event (dropped and counted once the cap is hit)."""
        if len(self.events) >= self.max_events:
            self.truncated += 1
            return
        self.events.append(TraceEvent(time, node, kind, rid, data))

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self) -> dict[str, int]:
        """Event counts per kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def for_rid(self, rid: Rid) -> list[TraceEvent]:
        """All events of one request, in time order."""
        return [event for event in self.events if event.rid == rid]


class ReplicaObserver:
    """Observer facade attached to one replica as ``replica.obs``.

    The replica calls these hooks from its protocol code; each hook is a
    few appends and dict updates.  When no observer is attached the
    replica's ``if self.obs is not None`` guard is the only cost.
    """

    def __init__(self, tracer: RequestTracer, registry: MetricsRegistry, replica):
        self.tracer = tracer
        self.registry = registry
        self.replica = replica
        self.node = f"replica-{replica.index}"
        # Observer-side bookkeeping (never protocol state).
        self._quorum_seen: set[tuple[int, int]] = set()
        self._exec_pending: dict[int, tuple[float, float]] = {}
        self._vc_started_at: Optional[float] = None
        self._last_busy_time = 0.0

    def _now(self) -> float:
        return self.replica.loop.now

    # -- message handling ---------------------------------------------

    def on_deliver(self, type_name: str, cost: float, rid: Optional[Rid]) -> None:
        """A message reached this replica's processor queue."""
        now = self._now()
        queue_depth = self.replica.processor.queue_length
        self.registry.counter("messages_received", node=self.node, type=type_name).inc()
        self.registry.histogram("handling_cost", node=self.node, type=type_name).observe(cost)
        self.registry.histogram("queue_depth_at_arrival", node=self.node).observe(queue_depth)
        if rid is not None:
            self.tracer.emit(now, self.node, RECV, rid, {"queue": queue_depth})

    # -- acceptance / rejection ---------------------------------------

    def on_accept(self, rid: Rid, active_count: int, threshold: Optional[int]) -> None:
        """The acceptance test admitted a fresh client request."""
        self.registry.counter("accepts", node=self.node).inc()
        self._note_decision(active_count, threshold)
        self.tracer.emit(
            self._now(), self.node, ACCEPT, rid,
            {"active": active_count, "threshold": threshold},
        )

    def on_reject(
        self, rid: Rid, active_count: int, threshold: Optional[int], reason: str
    ) -> None:
        """The acceptance test rejected a fresh client request."""
        self.registry.counter("rejects", node=self.node, reason=reason).inc()
        self._note_decision(active_count, threshold)
        self.tracer.emit(
            self._now(), self.node, REJECT, rid,
            {"active": active_count, "threshold": threshold, "reason": reason},
        )

    def _note_decision(self, active_count: int, threshold: Optional[int]) -> None:
        self.registry.histogram("active_at_decision", node=self.node).observe(active_count)
        if threshold is not None:
            self.registry.gauge("reject_threshold", node=self.node).set(threshold)

    # -- ordering ------------------------------------------------------

    def on_propose(self, view: int, sqn: int, rids: tuple[Rid, ...]) -> None:
        """This replica (as leader) proposed a batch at ``sqn``."""
        self.registry.counter("proposals", node=self.node).inc()
        self.registry.histogram("propose_batch_size", node=self.node).observe(len(rids))
        self.tracer.emit(
            self._now(), self.node, PROPOSE, None,
            {"sqn": sqn, "view": view, "rids": list(rids)},
        )

    def on_quorum(self, instance) -> None:
        """An instance first reached its commit quorum here (deduplicated)."""
        key = (instance.sqn, instance.view)
        if key in self._quorum_seen:
            return
        self._quorum_seen.add(key)
        self.registry.counter("quorums", node=self.node).inc()
        self.tracer.emit(
            self._now(), self.node, QUORUM, None,
            {"sqn": instance.sqn, "view": instance.view, "rids": list(instance.rids)},
        )

    # -- execution -----------------------------------------------------

    def on_exec_scheduled(self, sqn: int, cost: float, batch_size: int) -> None:
        """An execution job for ``sqn`` entered the processor queue."""
        self._exec_pending[sqn] = (self._now(), cost)
        self.registry.histogram("exec_batch_size", node=self.node).observe(batch_size)
        self.registry.histogram("exec_cost", node=self.node).observe(cost)

    def on_execute(self, sqn: int, rid: Rid) -> None:
        """One request of instance ``sqn`` was applied to the state machine."""
        self.tracer.emit(self._now(), self.node, EXECUTE, rid, {"sqn": sqn})

    def on_exec_done(self, sqn: int) -> None:
        """Instance ``sqn`` finished executing (closes the exec span)."""
        begin, cost = self._exec_pending.pop(sqn, (self._now(), 0.0))
        self.tracer.emit(
            self._now(), self.node, EXEC, None,
            {"sqn": sqn, "begin": begin, "cost": cost},
        )

    def on_reply(self, rid: Rid) -> None:
        """A REPLY for ``rid`` left this replica."""
        self.registry.counter("replies", node=self.node).inc()
        self.tracer.emit(self._now(), self.node, REPLY_SENT, rid, None)

    # -- IDEM forwarding ----------------------------------------------

    def on_forward(self, rid: Rid) -> None:
        """This replica forwarded the body of ``rid`` to its peers."""
        self.registry.counter("forwards", node=self.node).inc()
        self.tracer.emit(self._now(), self.node, FORWARD, rid, None)

    def on_adopt(self, rid: Rid) -> None:
        """This replica adopted a forwarded body it had not accepted."""
        self.registry.counter("adopted_forwards", node=self.node).inc()
        self.tracer.emit(self._now(), self.node, ADOPT, rid, None)

    def on_fetch(self, rid: Rid) -> None:
        """This replica asked its peers for a missing body."""
        self.registry.counter("fetches", node=self.node).inc()
        self.tracer.emit(self._now(), self.node, FETCH, rid, None)

    # -- view changes --------------------------------------------------

    def on_vc_start(self, target_view: int) -> None:
        """This replica abandoned its view, targeting ``target_view``."""
        now = self._now()
        if self._vc_started_at is None:
            self._vc_started_at = now
        self.registry.counter("view_changes_started", node=self.node).inc()
        self.tracer.emit(now, self.node, VC_START, None, {"target": target_view})

    def on_newview(self, view: int, entries: int) -> None:
        """This replica (as new leader) sent NEWVIEW for ``view``."""
        self.registry.counter("newviews_sent", node=self.node).inc()
        self.tracer.emit(
            self._now(), self.node, NEWVIEW, None,
            {"view": view, "entries": entries},
        )

    def on_view_installed(self, view: int) -> None:
        """This replica entered ``view`` (closes the view-change span)."""
        now = self._now()
        if self._vc_started_at is not None:
            self.registry.histogram("view_change_duration", node=self.node).observe(
                now - self._vc_started_at
            )
            begin = self._vc_started_at
            self._vc_started_at = None
        else:
            begin = now
        self.registry.counter("views_installed", node=self.node).inc()
        self.tracer.emit(now, self.node, VC_DONE, None, {"view": view, "begin": begin})

    # -- periodic sampling (driven by the hub) -------------------------

    def sample(self, elapsed_interval: float) -> None:
        """Record one periodic sample of this replica's internals."""
        replica = self.replica
        if replica.halted:
            return
        now = self._now()
        processor = replica.processor
        busy_delta = processor.busy_time - self._last_busy_time
        self._last_busy_time = processor.busy_time
        busy_fraction = (
            min(1.0, busy_delta / elapsed_interval) if elapsed_interval > 0 else 0.0
        )
        queue = processor.queue_length
        active = len(getattr(replica, "active", ()))
        backlog = replica.next_sqn - 1 - replica.exec_sqn
        self.registry.gauge("queue_depth", node=self.node).set(queue)
        self.registry.gauge("busy_fraction", node=self.node).set(busy_fraction)
        self.registry.gauge("active_slots", node=self.node).set(active)
        self.registry.gauge("window_backlog", node=self.node).set(backlog)
        self.tracer.emit(
            now, self.node, SAMPLE, None,
            {
                "queue": queue,
                "busy": round(busy_fraction, 4),
                "active": active,
                "backlog": backlog,
            },
        )


class ClientObserver:
    """Observer facade attached to one client as ``client.obs``."""

    def __init__(self, tracer: RequestTracer, registry: MetricsRegistry, client):
        self.tracer = tracer
        self.registry = registry
        self.client = client
        self.node = f"client-{client.cid}"

    def _now(self) -> float:
        return self.client.loop.now

    def on_send(self, rid: Rid, retransmit: bool = False) -> None:
        """The client put a request (or a retransmission) on the wire."""
        kind = CLIENT_RETRANSMIT if retransmit else CLIENT_SEND
        self.registry.counter(
            "client_retransmits" if retransmit else "client_sends", node=self.node
        ).inc()
        self.tracer.emit(self._now(), self.node, kind, rid, None)

    def on_reject_recv(self, rid: Rid, src_index: int) -> None:
        """A REJECT for the pending request arrived from one replica."""
        self.tracer.emit(
            self._now(), self.node, CLIENT_REJECT_RECV, rid, {"from": src_index}
        )

    def on_retry(self, rid: Rid, outcome: str, attempt: int, delay: float) -> None:
        """The resilience policy retries after ``outcome`` of ``attempt``."""
        self.registry.counter(
            "client_retries", node=self.node, outcome=outcome
        ).inc()
        self.tracer.emit(
            self._now(), self.node, CLIENT_RETRY, rid,
            {"outcome": outcome, "attempt": attempt, "delay": delay},
        )

    def on_hedge(self, rid: Rid) -> None:
        """A hedged duplicate of the pending request went on the wire."""
        self.registry.counter("client_hedges", node=self.node).inc()
        self.tracer.emit(self._now(), self.node, CLIENT_HEDGE, rid, None)

    def on_give_up(self, rid: Rid, reason: str) -> None:
        """A retrying policy stopped retrying (cap hit): ``reason`` names
        the binding cap (max-attempts, deadline, budget)."""
        self.registry.counter(
            "client_give_ups", node=self.node, reason=reason
        ).inc()
        self.tracer.emit(
            self._now(), self.node, CLIENT_GIVE_UP, rid, {"reason": reason}
        )

    def on_outcome(self, rid: Rid, outcome: str, latency: float) -> None:
        """The operation finished: ``success``, ``rejected`` or ``timeout``."""
        self.registry.counter("client_outcomes", node=self.node, outcome=outcome).inc()
        self.tracer.emit(
            self._now(), self.node, CLIENT_OUTCOME, rid,
            {"outcome": outcome, "latency": latency},
        )

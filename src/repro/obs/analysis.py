"""Trace analysis: per-request latency breakdowns and summary reports.

Reconstructs, for every traced request, the causal chain the paper's
latency argument is about::

    client_send --net--> recv --cpu queue--> accept --require wait-->
    propose --agreement--> quorum --exec wait--> execute --reply-->
    client_outcome

and decomposes the end-to-end latency into those per-hop segments (the
decomposition style of the geo-SMR latency-modeling line of work), so a
p99 request can be explained stage by stage instead of being one opaque
number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    ACCEPT,
    CLIENT_OUTCOME,
    CLIENT_SEND,
    EXECUTE,
    PROPOSE,
    QUORUM,
    RECV,
    REJECT,
    REPLY_SENT,
    RequestTracer,
    Rid,
)

# The lifecycle stages, in causal order: (label, from-event, to-event).
_STAGES = [
    ("client -> replica network", "send", "recv"),
    ("replica cpu queue + acceptance", "recv", "accept"),
    ("ordering wait (require -> propose)", "accept", "propose"),
    ("agreement (propose -> quorum)", "propose", "quorum"),
    ("execution wait (quorum -> execute)", "quorum", "execute"),
    ("execute -> reply sent", "execute", "reply"),
    ("reply -> client", "reply", "done"),
]


@dataclass
class RequestBreakdown:
    """One request's lifecycle timestamps and per-hop latency segments."""

    rid: Rid
    outcome: str = "pending"
    send: Optional[float] = None
    recv: Optional[float] = None
    accept: Optional[float] = None
    reject_times: list[float] = field(default_factory=list)
    reject_reasons: list[str] = field(default_factory=list)
    propose: Optional[float] = None
    sqn: Optional[int] = None
    quorum: Optional[float] = None
    execute: Optional[float] = None
    reply: Optional[float] = None
    done: Optional[float] = None

    @property
    def latency(self) -> float:
        """End-to-end latency in seconds (0 while unfinished)."""
        if self.send is None or self.done is None:
            return 0.0
        return self.done - self.send

    def stages(self) -> list[tuple[str, float]]:
        """The per-hop decomposition: consecutive ``(label, seconds)`` pairs.

        Stages whose endpoints were not observed (e.g. a rejected request
        never reaches ordering) are skipped; the remaining segments are
        measured between the nearest observed timestamps, so they always
        sum to the end-to-end latency.
        """
        times = {
            "send": self.send,
            "recv": self.recv,
            "accept": self.accept,
            "propose": self.propose,
            "quorum": self.quorum,
            "execute": self.execute,
            "reply": self.reply,
            "done": self.done,
        }
        segments: list[tuple[str, float]] = []
        previous_point = "send"
        previous_time = times["send"]
        if previous_time is None:
            return segments
        for label, begin, end in _STAGES:
            end_time = times[end]
            if end_time is None:
                continue
            if begin != previous_point:
                label = f"{previous_point} -> {end}"
            segments.append((label, max(0.0, end_time - previous_time)))
            previous_point = end
            previous_time = end_time
        return segments


def build_breakdowns(tracer: RequestTracer) -> dict[Rid, RequestBreakdown]:
    """One :class:`RequestBreakdown` per traced request id.

    Per-replica events collapse onto the *earliest* observation (first
    replica to receive, first to execute, ...), which is the causal path
    the client-visible latency followed.
    """
    breakdowns: dict[Rid, RequestBreakdown] = {}
    rid_sqn: dict[Rid, int] = {}
    quorum_at: dict[int, float] = {}

    def entry(rid: Rid) -> RequestBreakdown:
        breakdown = breakdowns.get(rid)
        if breakdown is None:
            breakdown = breakdowns[rid] = RequestBreakdown(rid)
        return breakdown

    for event in tracer.events:
        kind = event.kind
        if kind == CLIENT_SEND:
            breakdown = entry(event.rid)
            if breakdown.send is None:
                breakdown.send = event.time
        elif kind == RECV:
            breakdown = entry(event.rid)
            if breakdown.recv is None:
                breakdown.recv = event.time
        elif kind == ACCEPT:
            breakdown = entry(event.rid)
            if breakdown.accept is None:
                breakdown.accept = event.time
        elif kind == REJECT:
            breakdown = entry(event.rid)
            breakdown.reject_times.append(event.time)
            breakdown.reject_reasons.append(event.data["reason"])
        elif kind == PROPOSE:
            for rid in event.data["rids"]:
                rid = tuple(rid)
                breakdown = entry(rid)
                if breakdown.propose is None:
                    breakdown.propose = event.time
                    breakdown.sqn = event.data["sqn"]
                rid_sqn[rid] = event.data["sqn"]
        elif kind == QUORUM:
            sqn = event.data["sqn"]
            if sqn not in quorum_at:
                quorum_at[sqn] = event.time
        elif kind == EXECUTE:
            breakdown = entry(event.rid)
            if breakdown.execute is None:
                breakdown.execute = event.time
                breakdown.sqn = event.data["sqn"]
                rid_sqn[event.rid] = event.data["sqn"]
        elif kind == REPLY_SENT:
            breakdown = entry(event.rid)
            if breakdown.reply is None:
                breakdown.reply = event.time
        elif kind == CLIENT_OUTCOME:
            breakdown = entry(event.rid)
            breakdown.done = event.time
            breakdown.outcome = event.data["outcome"]

    for rid, breakdown in breakdowns.items():
        if breakdown.quorum is None:
            sqn = rid_sqn.get(rid)
            if sqn is not None:
                breakdown.quorum = quorum_at.get(sqn)
    return breakdowns


def top_slowest(
    breakdowns: dict[Rid, RequestBreakdown],
    k: int = 5,
    outcome: str = "success",
) -> list[RequestBreakdown]:
    """The ``k`` highest-latency finished requests with ``outcome``."""
    finished = [
        breakdown
        for breakdown in breakdowns.values()
        if breakdown.outcome == outcome and breakdown.send is not None
    ]
    finished.sort(key=lambda breakdown: (-breakdown.latency, breakdown.rid))
    return finished[:k]


def resilience_summary(registry: MetricsRegistry) -> dict:
    """Cross-client totals of the resilience counters.

    ``client_sends`` counts every attempt's first send (retries
    included), so distinct commands are ``sends - retries`` and the
    *load-amplification factor* — copies put on the wire per distinct
    command — is ``(sends + retransmits + hedges) / commands``.  A
    factor of 1.0 means the reactive machinery never fired.
    """
    totals: dict = {
        "sends": 0.0,
        "retransmits": 0.0,
        "retries": 0.0,
        "hedges": 0.0,
        "give_ups": 0.0,
    }
    retries_by_outcome: dict[str, float] = {}
    give_ups_by_reason: dict[str, float] = {}
    for metric in registry:
        if metric.kind != "counter":
            continue
        if metric.name == "client_sends":
            totals["sends"] += metric.value
        elif metric.name == "client_retransmits":
            totals["retransmits"] += metric.value
        elif metric.name == "client_hedges":
            totals["hedges"] += metric.value
        elif metric.name == "client_retries":
            totals["retries"] += metric.value
            outcome = metric.labels.get("outcome", "?")
            retries_by_outcome[outcome] = (
                retries_by_outcome.get(outcome, 0.0) + metric.value
            )
        elif metric.name == "client_give_ups":
            totals["give_ups"] += metric.value
            reason = metric.labels.get("reason", "?")
            give_ups_by_reason[reason] = (
                give_ups_by_reason.get(reason, 0.0) + metric.value
            )
    commands = totals["sends"] - totals["retries"]
    wire_copies = totals["sends"] + totals["retransmits"] + totals["hedges"]
    totals["commands"] = commands
    totals["load_amplification"] = wire_copies / commands if commands else 1.0
    totals["retries_by_outcome"] = retries_by_outcome
    totals["give_ups_by_reason"] = give_ups_by_reason
    return totals


def reject_reason_histogram(tracer: RequestTracer) -> dict[str, int]:
    """How often each rejection reason fired, across all replicas."""
    counts: dict[str, int] = {}
    for event in tracer.events:
        if event.kind == REJECT:
            reason = event.data["reason"]
            counts[reason] = counts.get(reason, 0) + 1
    return counts


def render_breakdown(breakdown: RequestBreakdown) -> str:
    """Multi-line rendering of one request's per-hop decomposition."""
    rid = breakdown.rid
    lines = [
        f"rid=({rid[0]}, {rid[1]})  outcome={breakdown.outcome}  "
        f"latency={breakdown.latency * 1e3:.3f} ms"
        + (f"  sqn={breakdown.sqn}" if breakdown.sqn is not None else "")
    ]
    total = breakdown.latency
    for label, seconds in breakdown.stages():
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"    {label:<36s} {seconds * 1e3:9.3f} ms  {share:5.1f}%")
    if breakdown.reject_reasons:
        lines.append(
            f"    rejections seen: {len(breakdown.reject_reasons)} "
            f"({', '.join(sorted(set(breakdown.reject_reasons)))})"
        )
    return "\n".join(lines)


def render_report(
    tracer: RequestTracer,
    registry: Optional[MetricsRegistry] = None,
    k: int = 5,
) -> str:
    """The deterministic trace summary printed by ``repro-experiments trace``.

    Top-``k`` slowest successful requests with per-hop breakdowns, the
    reject-reason histogram, and (when a registry is supplied) per-node
    internals.
    """
    breakdowns = build_breakdowns(tracer)
    finished = [b for b in breakdowns.values() if b.outcome != "pending"]
    successes = [b for b in finished if b.outcome == "success"]
    lines = [
        f"traced requests: {len(breakdowns)} "
        f"({len(successes)} success, "
        f"{sum(1 for b in finished if b.outcome == 'rejected')} rejected, "
        f"{sum(1 for b in finished if b.outcome == 'timeout')} timeout)",
    ]
    if tracer.truncated:
        lines.append(f"warning: {tracer.truncated} trace events dropped (cap hit)")
    slowest = top_slowest(breakdowns, k)
    lines.append("")
    lines.append(f"top {len(slowest)} slowest successful requests:")
    for breakdown in slowest:
        lines.append("  " + render_breakdown(breakdown).replace("\n", "\n  "))
    reasons = reject_reason_histogram(tracer)
    lines.append("")
    if reasons:
        total = sum(reasons.values())
        lines.append(f"reject reasons ({total} replica-side rejections):")
        for reason in sorted(reasons):
            lines.append(f"  {reason:<24s} {reasons[reason]:8d}")
    else:
        lines.append("reject reasons: none (no replica-side rejections)")
    if registry is not None and len(registry):
        lines.append("")
        lines.append("replica internals (registry):")
        for metric in registry:
            if metric.name in (
                "busy_fraction",
                "queue_depth_at_arrival",
                "active_at_decision",
                "view_change_duration",
            ):
                labels = ",".join(
                    f"{key}={value}" for key, value in sorted(metric.labels.items())
                )
                body = " ".join(
                    f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
                    for key, value in metric.snapshot().items()
                )
                lines.append(f"  {metric.name}{{{labels}}} {body}")
    return "\n".join(lines)

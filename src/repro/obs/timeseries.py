"""The time-series flight recorder: bounded per-(node, series) history.

The probe layer (:mod:`repro.obs.probes`) samples protocol internals on
the hub's sim-time cadence and records each value here.  Storage per
series is a **ring buffer** — the newest ``maxlen`` samples are kept
verbatim, older ones are evicted — plus a **fixed-bin percentile
sketch** that absorbs *every* sample ever recorded, so quantiles stay
meaningful after eviction.  The sketch's bins are fixed a priori
(log-spaced over ``[0, SKETCH_CAP]``), never data-adapted: recording
order cannot change bin boundaries, which keeps the recorder
hash-seed- and history-independent.

Windowed aggregation (:meth:`Series.window`) reduces any sim-time
interval of the retained samples to min/max/mean/last/count; quantiles
come from the lifetime sketch (:meth:`Series.quantile`), which is
monotone in ``q`` by construction.

Exports mirror :mod:`repro.obs.export`: one-sample-per-line JSONL
(:func:`write_series_jsonl`) and Perfetto counter tracks
(:func:`series_counter_events`) that slot into the Chrome trace-event
document next to the span exporter's rows.

Like everything in ``repro.obs`` the recorder is observer-pure: it only
ever *reads* simulation state handed to it and appends to its own
buffers — no RNG, no scheduling, no protocol mutation.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterator, NamedTuple, Optional

#: Default ring capacity per (node, series).
DEFAULT_MAXLEN = 4096

#: Fixed sketch domain: values are clamped into [0, SKETCH_CAP] before
#: binning.  Probe values are counts, fractions and small totals; 1e9
#: leaves headroom for counter series over any plausible run.
SKETCH_CAP = 1e9

#: Log-spaced bins per decade of (1 + value).
SKETCH_BINS_PER_DECADE = 32


class WindowStats(NamedTuple):
    """Aggregate of the retained samples inside one sim-time window."""

    count: int
    min: float
    max: float
    mean: float
    last: float

    @staticmethod
    def empty() -> "WindowStats":
        return WindowStats(0, math.nan, math.nan, math.nan, math.nan)


class PercentileSketch:
    """Fixed-bin percentile sketch over ``[0, cap]``.

    Bin ``i`` covers values with ``floor(bpd * log10(1 + v))`` equal to
    ``i``; the bin layout is a constant of the class parameters, never
    of the data.  ``quantile`` interpolates linearly inside the winning
    bin, which makes it monotone in ``q`` and exact for single-valued
    bins.  Negative values clamp to bin 0, values above ``cap`` to the
    last bin (both still move min/max, so the clamp is visible).
    """

    def __init__(
        self,
        cap: float = SKETCH_CAP,
        bins_per_decade: int = SKETCH_BINS_PER_DECADE,
    ):
        if cap <= 0:
            raise ValueError(f"sketch cap must be positive, got {cap}")
        if bins_per_decade < 1:
            raise ValueError(
                f"bins per decade must be at least 1, got {bins_per_decade}"
            )
        self.cap = cap
        self.bins_per_decade = bins_per_decade
        self.bin_count = int(bins_per_decade * math.log10(1.0 + cap)) + 1
        self._counts = [0] * self.bin_count
        self.total = 0
        self.min = math.inf
        self.max = -math.inf

    def _bin_of(self, value: float) -> int:
        clamped = min(max(value, 0.0), self.cap)
        index = int(self.bins_per_decade * math.log10(1.0 + clamped))
        return min(index, self.bin_count - 1)

    def _bin_lower(self, index: int) -> float:
        return 10.0 ** (index / self.bins_per_decade) - 1.0

    def add(self, value: float) -> None:
        self._counts[self._bin_of(value)] += 1
        self.total += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """The approximate ``q``-quantile of everything ever added.

        Monotone in ``q``; returns NaN while the sketch is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return math.nan
        rank = q * (self.total - 1)
        cumulative = 0
        for index, count in enumerate(self._counts):
            if count == 0:
                continue
            if cumulative + count > rank:
                lower = self._bin_lower(index)
                upper = self._bin_lower(index + 1)
                # Position of the rank inside this bin, interpolated.
                within = (rank - cumulative) / count
                value = lower + within * (upper - lower)
                # Tighten with the exact extremes we tracked.
                return min(max(value, self.min), self.max)
            cumulative += count
        return self.max


class Series:
    """One bounded (time, value) history plus its lifetime sketch."""

    __slots__ = (
        "node",
        "name",
        "maxlen",
        "_times",
        "_values",
        "_head",
        "count",
        "evicted",
        "last_time",
        "last_value",
        "sketch",
    )

    def __init__(self, node: str, name: str, maxlen: int = DEFAULT_MAXLEN):
        if maxlen < 1:
            raise ValueError(f"series maxlen must be at least 1, got {maxlen}")
        self.node = node
        self.name = name
        self.maxlen = maxlen
        self._times: list[float] = []
        self._values: list[float] = []
        self._head = 0  # ring start once the buffer is full
        self.count = 0  # lifetime samples (retained + evicted)
        self.evicted = 0
        self.last_time = math.nan
        self.last_value = math.nan
        self.sketch = PercentileSketch()

    def record(self, time: float, value: float) -> None:
        """Append one sample (evicting the oldest when full)."""
        if len(self._times) < self.maxlen:
            self._times.append(time)
            self._values.append(value)
        else:
            head = self._head
            self._times[head] = time
            self._values[head] = value
            self._head = (head + 1) % self.maxlen
            self.evicted += 1
        self.count += 1
        self.last_time = time
        self.last_value = value
        self.sketch.add(value)

    def __len__(self) -> int:
        return len(self._times)

    def samples(self) -> Iterator[tuple[float, float]]:
        """Retained samples, oldest first."""
        size = len(self._times)
        head = self._head
        for offset in range(size):
            index = (head + offset) % size if size == self.maxlen else offset
            yield self._times[index], self._values[index]

    def times(self) -> list[float]:
        return [time for time, _ in self.samples()]

    def values(self) -> list[float]:
        return [value for _, value in self.samples()]

    def value_at(self, time: float) -> float:
        """The last retained value recorded at or before ``time``.

        NaN when ``time`` predates every retained sample.
        """
        result = math.nan
        for sample_time, value in self.samples():
            if sample_time > time:
                break
            result = value
        return result

    def window(self, start: float, end: float) -> WindowStats:
        """Aggregate the retained samples with ``start <= t <= end``."""
        count = 0
        minimum = math.inf
        maximum = -math.inf
        total = 0.0
        last = math.nan
        for time, value in self.samples():
            if time < start:
                continue
            if time > end:
                break
            count += 1
            total += value
            last = value
            if value < minimum:
                minimum = value
            if value > maximum:
                maximum = value
        if count == 0:
            return WindowStats.empty()
        return WindowStats(count, minimum, maximum, total / count, last)

    def quantile(self, q: float) -> float:
        """Lifetime quantile (sketch-backed; survives ring eviction)."""
        return self.sketch.quantile(q)


class FlightRecorder:
    """All probe series of one run, keyed by ``(node, series name)``.

    Iteration orders are sorted everywhere, so renders, exports and the
    drift detector built on top are independent of insertion order and
    of ``PYTHONHASHSEED``.
    """

    def __init__(self, maxlen: int = DEFAULT_MAXLEN):
        self.maxlen = maxlen
        self._series: dict[tuple[str, str], Series] = {}
        # Annotation marks (fault windows): dicts with time/end/label.
        self.marks: list[dict] = []
        self.samples_recorded = 0

    def record(self, time: float, node: str, name: str, value: float) -> None:
        """Record one sample for series ``name`` of ``node``."""
        key = (node, name)
        series = self._series.get(key)
        if series is None:
            series = Series(node, name, self.maxlen)
            self._series[key] = series
        series.record(time, value)
        self.samples_recorded += 1

    def mark(self, time: float, end: float, label: str) -> None:
        """Annotate a sim-time window (e.g. a fault) on the recording."""
        self.marks.append({"time": time, "end": end, "label": label})

    # -- lookup --------------------------------------------------------

    def series(self, node: str, name: str) -> Optional[Series]:
        return self._series.get((node, name))

    def nodes(self) -> list[str]:
        return sorted({node for node, _ in self._series})

    def names(self, node: str) -> list[str]:
        return sorted(name for n, name in self._series if n == node)

    def items(self) -> list[tuple[tuple[str, str], Series]]:
        """All series, sorted by (node, name)."""
        return sorted(self._series.items())

    def __len__(self) -> int:
        return len(self._series)

    def window(self, node: str, name: str, start: float, end: float) -> WindowStats:
        series = self._series.get((node, name))
        if series is None:
            return WindowStats.empty()
        return series.window(start, end)


# -- exports -----------------------------------------------------------


def write_series_jsonl(recorder: FlightRecorder, stream: IO[str]) -> int:
    """One JSON object per retained sample, globally time-ordered.

    Ties are broken by (node, series) so output is byte-stable.
    Returns the number of lines written (marks included).
    """
    rows = [
        (time, node, name, value)
        for (node, name), series in recorder.items()
        for time, value in series.samples()
    ]
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    written = 0
    for time, node, name, value in rows:
        stream.write(
            json.dumps(
                {"ts": time, "node": node, "series": name, "value": value},
                sort_keys=True,
            )
            + "\n"
        )
        written += 1
    for entry in recorder.marks:
        stream.write(json.dumps({"mark": entry}, sort_keys=True) + "\n")
        written += 1
    return written


def series_counter_events(recorder: FlightRecorder) -> list[dict]:
    """Perfetto counter ("C") rows for every retained probe sample.

    Same schema as the span exporter's sample counters
    (:func:`repro.obs.export.chrome_trace_events`); each (node, series)
    becomes its own counter track.  Ready to extend a ``traceEvents``
    list or to stand alone in a minimal document.
    """
    rows: list[dict] = []
    for (node, name), series in recorder.items():
        for time, value in series.samples():
            rows.append(
                {
                    "ph": "C",
                    "pid": 1,
                    "name": f"{node} {name}",
                    "ts": time * 1e6,
                    "args": {name: value},
                }
            )
    rows.sort(key=lambda row: (row["ts"], row["name"]))
    return rows


def write_series_chrome_trace(recorder: FlightRecorder, stream: IO[str]) -> int:
    """A standalone Chrome trace-event document of the counter tracks."""
    events = series_counter_events(recorder)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.timeseries",
            "series": len(recorder),
            "samples": recorder.samples_recorded,
        },
    }
    json.dump(document, stream, sort_keys=True)
    stream.write("\n")
    return len(events)

"""The probe layer: periodic sampling of protocol-internal state.

Where :mod:`repro.obs.spans` traces *request lifecycles* (events), the
probe layer samples *replica state* (levels): active-set occupancy,
admission threshold, queue depth, busy fraction, in-flight consensus
rounds, timer population, and the client population's retry
amplification.  Each protocol object answers through one introspection
method — :meth:`Probeable.probe_state` — returning a flat
``{series name: float}`` dict; the sampler records every entry into the
flight recorder (:mod:`repro.obs.timeseries`) under the node's name.

``probe_state`` implementations live on the protocol classes
(``BaseReplica`` and its paxos/bftsmart/IDEM subclasses, and
``BaseClient``) because only they know their own state dicts; the
contract is that the method is **read-only** and returns plain floats.
The sampler is driven by the observability hub on the same sim-time
cadence as observer sampling, so enabling probes schedules no loop
events beyond the ones observer sampling already schedules.

Derived series the sampler computes from deltas between ticks:

* ``busy_frac`` — processor busy time accrued this tick / interval;
* ``reject_rate`` / ``exec_rate`` — rejections / executions per second
  this tick;
* ``retry_amplification`` / ``max_retry_amplification`` — wire sends
  per started command, aggregated and worst-case over all clients.

Per-client series are aggregated onto the synthetic node ``"clients"``
(summing counters over the population) so recorder size is independent
of the client count; the event loop contributes a ``"sim"`` node with
its pending-event population.  A halted replica reports only ``up=0``
— its state dicts are in a pre-recovery limbo not worth charting.

Observer-purity contract: this module only *reads* protocol state and
writes to the recorder it owns.  It never schedules events, draws
randomness, or mutates simulation objects (enforced by detlint's OBS
rules, which treat every parameter of these functions as simulation
state).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.obs.timeseries import FlightRecorder


@runtime_checkable
class Probeable(Protocol):
    """An object that can report its internal state as flat series."""

    def probe_state(self) -> dict[str, float]:
        """A ``{series name: value}`` snapshot; read-only, floats only."""
        ...


class ProbeSampler:
    """Samples every probeable node of a cluster into a recorder.

    Holds the tick-to-tick state needed for derived rate series (last
    busy time, last counter totals per node) — observer-side bookkeeping
    only, keyed by node name so replica recovery (a fresh object under
    the same name) keeps the delta baseline.
    """

    def __init__(self, recorder: FlightRecorder, interval: float):
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, got {interval}")
        self.recorder = recorder
        self.interval = interval
        self._last_busy: dict[str, float] = {}
        self._last_rejected: dict[str, float] = {}
        self._last_executed: dict[str, float] = {}

    def sample(self, cluster) -> None:
        """Record one probe sample of every node at the cluster's now."""
        now = cluster.loop.now
        recorder = self.recorder
        recorder.record(now, "sim", "pending_events", float(cluster.loop.pending_events))

        for replica in cluster.replicas:
            node = f"replica-{replica.index}"
            if replica.halted:
                recorder.record(now, node, "up", 0.0)
                continue
            recorder.record(now, node, "up", 1.0)
            state = replica.probe_state()
            for name in sorted(state):
                recorder.record(now, node, name, float(state[name]))
            self._record_rates(now, node, state)

        self._sample_clients(now, cluster)

    def _record_rates(self, now: float, node: str, state: dict) -> None:
        """Derived per-tick series: busy fraction and event rates."""
        interval = self.interval
        busy = state.get("busy_time", 0.0)
        previous_busy = self._last_busy.get(node, 0.0)
        self._last_busy[node] = busy
        # A recovery gap spans several ticks of accrued busy time; the
        # clamp keeps the fraction honest after it.
        busy_frac = min(1.0, max(0.0, busy - previous_busy) / interval)
        recorder = self.recorder
        recorder.record(now, node, "busy_frac", busy_frac)

        rejected = state.get("rejected_total", 0.0)
        previous_rejected = self._last_rejected.get(node, 0.0)
        self._last_rejected[node] = rejected
        recorder.record(
            now, node, "reject_rate", max(0.0, rejected - previous_rejected) / interval
        )

        executed = state.get("executed_total", 0.0)
        previous_executed = self._last_executed.get(node, 0.0)
        self._last_executed[node] = executed
        recorder.record(
            now, node, "exec_rate", max(0.0, executed - previous_executed) / interval
        )

    def _sample_clients(self, now: float, cluster) -> None:
        """Aggregate the client population onto the ``clients`` node."""
        totals: dict[str, float] = {}
        max_amplification = 0.0
        for client in cluster.clients:
            state = client.probe_state()
            for name, value in sorted(state.items()):
                totals[name] = totals.get(name, 0.0) + float(value)
            commands = state.get("commands", 0.0)
            if commands > 0:
                amplification = state.get("sends", 0.0) / commands
                if amplification > max_amplification:
                    max_amplification = amplification
        recorder = self.recorder
        for name in sorted(totals):
            recorder.record(now, "clients", name, totals[name])
        commands = totals.get("commands", 0.0)
        amplification = totals.get("sends", 0.0) / commands if commands > 0 else 0.0
        recorder.record(now, "clients", "retry_amplification", amplification)
        recorder.record(now, "clients", "max_retry_amplification", max_amplification)

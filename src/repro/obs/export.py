"""Trace exporters: JSONL event log and Chrome trace-event format.

The JSONL export is one :class:`~repro.obs.spans.TraceEvent` per line —
the lossless archival form, easy to grep and to post-process.

The Chrome trace-event export targets the ``chrome://tracing`` /
Perfetto JSON schema (the "JSON Array Format" with ``traceEvents``):

* each node (client, replica, the synthetic ``faults`` track) becomes a
  thread (``tid``) of one process, named via ``M`` metadata events;
* request lifetimes, execution batches, view changes and fault windows
  become complete (``X``) spans with microsecond ``ts``/``dur``;
* point events (accept, reject, propose, quorum, execute, forward, ...)
  become instant (``i``) events;
* periodic replica samples become counter (``C``) tracks, which Perfetto
  renders as stacked area charts per replica.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    CLIENT_OUTCOME,
    CLIENT_SEND,
    EXEC,
    FAULT,
    SAMPLE,
    VC_DONE,
    RequestTracer,
    TraceEvent,
)

_INSTANT_KINDS = {
    "client_retransmit",
    "client_reject_recv",
    "recv",
    "accept",
    "reject",
    "propose",
    "quorum",
    "execute",
    "reply_sent",
    "forward",
    "adopt",
    "fetch",
    "vc_start",
    "newview",
}


def _us(seconds: float) -> float:
    return seconds * 1e6


def write_jsonl(tracer: RequestTracer, stream: IO[str]) -> int:
    """Write every trace event as one JSON object per line.

    Returns the number of lines written.
    """
    written = 0
    for event in tracer.events:
        row = {"ts": event.time, "node": event.node, "kind": event.kind}
        if event.rid is not None:
            row["rid"] = list(event.rid)
        if event.data is not None:
            row["data"] = event.data
        stream.write(json.dumps(row, sort_keys=True) + "\n")
        written += 1
    return written


def _tid_order(node: str) -> tuple[int, int]:
    kind, _, index = node.partition("-")
    rank = {"replica": 0, "client": 1, "faults": 2}.get(kind, 3)
    try:
        return rank, int(index)
    except ValueError:
        return rank, 0


def chrome_trace_events(
    tracer: RequestTracer,
    registry: Optional[MetricsRegistry] = None,
) -> list[dict]:
    """The ``traceEvents`` list for the Chrome trace-event JSON."""
    nodes = sorted({event.node for event in tracer.events}, key=_tid_order)
    tids = {node: position + 1 for position, node in enumerate(nodes)}
    rows: list[dict] = [
        {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "repro-sim"}},
    ]
    for node, tid in tids.items():
        rows.append(
            {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name", "args": {"name": node}}
        )
        rows.append(
            {"ph": "M", "pid": 1, "tid": tid, "name": "thread_sort_index",
             "args": {"sort_index": tid}}
        )

    # Client request lifetimes: send -> outcome as a complete span.
    send_at: dict[tuple, TraceEvent] = {}
    for event in tracer.events:
        tid = tids[event.node]
        if event.kind == CLIENT_SEND:
            send_at[(event.node, event.rid)] = event
        elif event.kind == CLIENT_OUTCOME:
            begin = send_at.pop((event.node, event.rid), None)
            start = begin.time if begin is not None else event.time
            rows.append({
                "ph": "X", "pid": 1, "tid": tid,
                "name": f"request {event.rid} [{event.data['outcome']}]",
                "cat": "request",
                "ts": _us(start), "dur": max(0.0, _us(event.time - start)),
                "args": dict(event.data),
            })
        elif event.kind == EXEC:
            begin = event.data["begin"]
            rows.append({
                "ph": "X", "pid": 1, "tid": tid,
                "name": f"exec sqn={event.data['sqn']}",
                "cat": "execution",
                "ts": _us(begin), "dur": max(0.0, _us(event.time - begin)),
                "args": {"sqn": event.data["sqn"], "cost": event.data["cost"]},
            })
        elif event.kind == VC_DONE:
            begin = event.data["begin"]
            rows.append({
                "ph": "X", "pid": 1, "tid": tid,
                "name": f"view change -> v{event.data['view']}",
                "cat": "view_change",
                "ts": _us(begin), "dur": max(0.0, _us(event.time - begin)),
                "args": {"view": event.data["view"]},
            })
        elif event.kind == FAULT:
            rows.append({
                "ph": "X", "pid": 1, "tid": tid,
                "name": event.data["label"],
                "cat": "fault",
                "ts": _us(event.data["begin"]),
                "dur": max(0.0, _us(event.data["end"] - event.data["begin"])),
                "args": {},
            })
        elif event.kind == SAMPLE:
            rows.append({
                "ph": "C", "pid": 1, "tid": tid,
                "name": f"{event.node} internals",
                "ts": _us(event.time),
                "args": {
                    "queue": event.data["queue"],
                    "active": event.data["active"],
                    "backlog": event.data["backlog"],
                },
            })
            rows.append({
                "ph": "C", "pid": 1, "tid": tid,
                "name": f"{event.node} busy",
                "ts": _us(event.time),
                "args": {"busy": event.data["busy"]},
            })
        elif event.kind in _INSTANT_KINDS:
            args = dict(event.data) if event.data else {}
            if event.rid is not None:
                args["rid"] = str(event.rid)
            if "rids" in args:
                args["rids"] = str(args["rids"])
            rows.append({
                "ph": "i", "pid": 1, "tid": tid, "s": "t",
                "name": event.kind,
                "cat": "lifecycle",
                "ts": _us(event.time),
                "args": args,
            })

    # Requests still pending at the end of the run get zero-length spans.
    for (node, rid), begin in sorted(send_at.items(), key=lambda item: item[1].time):
        rows.append({
            "ph": "X", "pid": 1, "tid": tids[node],
            "name": f"request {rid} [pending]",
            "cat": "request",
            "ts": _us(begin.time), "dur": 0.0,
            "args": {},
        })
    rows.sort(key=lambda row: (row.get("ts", -1.0), row.get("tid", 0)))
    return rows


def write_chrome_trace(
    tracer: RequestTracer,
    stream: IO[str],
    registry: Optional[MetricsRegistry] = None,
) -> int:
    """Write the Chrome trace-event JSON document; returns the event count."""
    events = chrome_trace_events(tracer, registry)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "events": len(tracer.events)},
    }
    json.dump(document, stream, sort_keys=True)
    stream.write("\n")
    return len(events)

"""A deterministic, sim-time metrics registry (counters, gauges, histograms).

Replica internals — processor queue depth, acceptance-buffer occupancy,
rejection-threshold state, per-message-type handling cost, view-change
phases — are recorded here when observability is enabled.  Everything is
an *observer*: metrics never schedule events, never draw randomness and
never touch protocol state, so a run with metrics attached produces
bit-identical results to one without (the determinism contract guarded
by ``tests/test_observability.py`` and the CI overhead-guard job).

The registry is label-based in the Prometheus style: a metric is
identified by a name plus a sorted tuple of ``key=value`` labels, e.g.
``handling_cost{node=replica-0, type=Propose}``.
"""

from __future__ import annotations

import math
from typing import Iterator, Union

LabelKey = tuple[str, tuple[tuple[str, str], ...]]


def _label_key(name: str, labels: dict[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down; remembers its extremes."""

    __slots__ = ("name", "labels", "value", "minimum", "maximum", "updates")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.updates += 1

    def snapshot(self) -> dict:
        if not self.updates:
            return {"value": 0.0, "min": 0.0, "max": 0.0, "updates": 0}
        return {
            "value": self.value,
            "min": self.minimum,
            "max": self.maximum,
            "updates": self.updates,
        }


class Histogram:
    """A sample distribution with streaming moments and a bounded reservoir.

    The first ``reservoir_size`` observations are retained for percentile
    queries (simulation runs are short enough that this usually means
    *all* observations); count/sum/min/max are always exact.
    """

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum", "_samples", "reservoir_size")

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, str], reservoir_size: int = 100_000):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: list[float] = []
        self.reservoir_size = reservoir_size

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if len(self._samples) < self.reservoir_size:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile over the retained samples."""
        ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create access to labelled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[LabelKey, Metric] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter ``name`` with ``labels``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge ``name`` with ``labels``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram ``name`` with ``labels``, created on first use."""
        return self._get(Histogram, name, labels)

    def _get(self, cls, name: str, labels: dict[str, object]) -> Metric:
        key = _label_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, {k: str(v) for k, v in labels.items()})
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def __iter__(self) -> Iterator[Metric]:
        for _, metric in sorted(self._metrics.items()):
            yield metric

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict]:
        """All metrics as plain dicts, deterministically ordered."""
        return [
            {
                "name": metric.name,
                "kind": metric.kind,
                "labels": metric.labels,
                **metric.snapshot(),
            }
            for metric in self
        ]

    def render(self) -> str:
        """A deterministic plain-text dump (debugging, CLI reports)."""
        lines = []
        for metric in self:
            labels = ",".join(f"{k}={v}" for k, v in sorted(metric.labels.items()))
            body = " ".join(
                f"{key}={value:.6g}" if isinstance(value, float) else f"{key}={value}"
                for key, value in metric.snapshot().items()
            )
            lines.append(f"{metric.name}{{{labels}}} {body}")
        return "\n".join(lines)

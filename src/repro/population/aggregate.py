"""One network node standing in for N closed-loop clients.

The :class:`AggregateClientNode` reproduces the *externally observable*
behaviour of ``clients`` per-object closed-loop clients — the request
stream the replicas see, the per-cid at-most-once bookkeeping they rely
on, and the latency/outcome statistics the experiment layer collects —
while keeping all internal state O(active requests) instead of O(N).

Three operating modes, selected by the effective think time Z and the
optional open-loop arrival plan:

* **exact closed loop** (``Z == 0``, no arrivals): each completion
  re-issues the next operation immediately (inline, zero extra events);
  rejection backoffs and retry delays get one precisely timed event
  each.  This mode is behaviourally equivalent to the per-object
  clients and is what the validation harness compares against.
* **analytic closed loop** (``Z > 0``): virtual clients in their think
  phase are a counter, not objects.  Arrivals are an inhomogeneous
  Poisson process at ``lambda_eff(t) = m(t) * thinkers(t) / Z`` (``m``
  is the MMPP/schedule modulation), integrated with the standard
  unit-exponential residual so rate changes need no re-draws; the rate
  is re-derived on a periodic *feedback tick* from the think-pool
  population — the analytic stand-in for N per-client think timers.
* **open loop** (an :class:`~repro.workload.open_loop.ArrivalSpec` is
  attached): arrivals follow the plan's piecewise rate; arrivals that
  find all N virtual clients busy are counted as shed, mirroring
  :class:`~repro.workload.open_loop.OpenLoopDriver`'s finite pool.

Request identities are fabricated deterministically: cids are drawn
from a seeded ``population.cids`` stream out of the currently-free id
space (so at most one in-flight operation per virtual client, exactly
like the object clients), and onrs come from one monotone counter —
per-cid onrs are then strictly increasing, which is all the replicas'
at-most-once window needs.  Client-side reactive behaviour (request
timeouts, retransmissions, Paxos leader failover, hedges) uses lazy
deadline queues drained on the feedback tick instead of one timer per
request.

Everything here is ordinary simulation state; the node is observer-pure
in the same sense as the object clients (``obs``/``reply_log`` hooks
never feed back into timing).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Optional

from repro.net.addresses import Address, client_address, replica_address
from repro.net.message import Message
from repro.protocols.clients import (
    BroadcastClient,
    LbrClient,
    SingleTargetClient,
)
from repro.protocols.messages import Reject, Reply, Request, Rid
from repro.resilience import ABANDON, make_hedge_policy, make_retry_policy
from repro.sim.timers import Timer

# Dissemination strategies (mirror the client class hierarchy).
IDEM = "idem"
LEADER = "leader"
LBR = "lbr"
BROADCAST = "broadcast"


def dissemination_mode(client_class: type) -> str:
    """Map a registry client class onto an aggregate dissemination mode."""
    # Imported here to keep repro.population importable without pulling
    # the whole core package at module-import time.
    from repro.core.client import IdemClient

    if issubclass(client_class, IdemClient):
        return IDEM
    if issubclass(client_class, LbrClient):
        return LBR
    if issubclass(client_class, SingleTargetClient):
        return LEADER
    if issubclass(client_class, BroadcastClient):
        return BROADCAST
    raise ValueError(
        f"no aggregate dissemination strategy for {client_class.__name__}"
    )


class _ActiveOp:
    """Per-in-flight-operation record (the only per-request state)."""

    __slots__ = (
        "cid",
        "onr",
        "command",
        "first_send",
        "send_time",
        "attempt",
        "rejecting",
        "grace_armed",
        "hedges_attempt",
    )

    def __init__(self, cid: int, command) -> None:
        self.cid = cid
        self.onr = 0
        self.command = command
        self.first_send = 0.0
        self.send_time = 0.0
        self.attempt = 0
        self.rejecting = 0  # bitmask of rejecting replica indices
        self.grace_armed = False
        self.hedges_attempt = 0


class AggregateClientNode:
    """N virtual closed-loop clients folded into one network node."""

    is_aggregate = True

    def __init__(
        self,
        population,
        client_class: type,
        loop,
        network,
        config,
        metrics,
        workload,
        rng,
        n_clients: int,
        stop_time: float = math.inf,
        schedule=None,
        arrivals=None,
        ramp: float = 0.1,
    ) -> None:
        if n_clients < 1:
            raise ValueError(f"need at least one virtual client, got {n_clients}")
        self.population = population
        self.mode = dissemination_mode(client_class)
        self.loop = loop
        self.network = network
        self.config = config
        self.metrics = metrics
        self.workload = workload
        self.n_clients = n_clients
        self.stop_time = stop_time
        self.schedule = schedule
        self.arrivals = arrivals
        self.ramp = ramp
        # Nominal address (the node is routed, not attached; every
        # message carries a fabricated per-virtual-client source).
        self.address = client_address(0)
        self.cid = "population"
        self.replicas = [replica_address(i) for i in range(config.n)]
        self.think_time = population.effective_think_time(config)

        self._ops_rng = rng.stream("population.ops")
        self._timing_rng = rng.stream("population.timing")
        self._cid_rng = rng.stream("population.cids")
        self._arrival_rng = rng.stream("population.arrivals")
        self._mmpp_rng = rng.stream("population.mmpp")
        self.retry_policy = make_retry_policy(
            _scale_retry_budget(config, n_clients), self.cid, rng, self._timing_rng
        )
        self.hedge_policy = make_hedge_policy(config)

        # Identity fabrication: free virtual-client ids (swap-pop draw)
        # and one monotone operation-number counter shared by all cids.
        self._free_cids = list(range(n_clients))
        self._onr = 0
        self._active: dict[Rid, _ActiveOp] = {}

        # Lazy deadline queues, drained on the feedback tick.  Each is
        # monotone by construction (deadline = push-time + a per-queue
        # constant); hedges may use observed-percentile delays, so they
        # get a heap instead.
        self._timeout_q: deque = deque()
        self._retransmit_q: deque = deque()
        self._failover_q: deque = deque()
        self._hedge_q: list = []
        self._hedge_seq = 0

        # Closed-loop / analytic / open-loop pool state.
        self._running = 0  # virtual clients cycling in exact closed loop
        self._think = 0  # think-pool population (analytic mode)
        self._available = 0  # idle virtual clients (open-loop mode)
        self._lambda = 0.0
        self._exp_remaining = 0.0  # residual of the unit-exponential draw
        self._int_anchor = 0.0  # time the residual was last consumed to
        self._arrival_timer = Timer(loop, self._on_arrival)
        self._mmpp_burst = False
        self._mmpp_timer = Timer(loop, self._on_mmpp_flip)
        self._presumed_leader = 0
        self._optimistic = getattr(config, "optimistic_client", True)
        self._grace = getattr(config, "optimistic_grace", 0.005)
        self._reject_to_think = population.reject_reentry == "think"

        self.stopped = False
        self.driver = None

        # BaseClient-compatible counters (Cluster.client_stats and the
        # probe layer read these attribute names directly).
        self.commands_started = 0
        self.sends = 0
        self.retries = 0
        self.hedges = 0
        self.give_ups = 0
        self.successes = 0
        self.rejections = 0
        self.timeouts = 0
        # IDEM outcome-state statistics (match IdemClient's).
        self.ambivalent_aborts = 0
        self.failure_aborts = 0
        self.early_warnings = 0
        # Aggregate-specific accounting.
        self.arrivals_generated = 0
        self.shed_arrivals = 0
        self.lost_arrivals = 0  # analytic arrivals that found no thinker
        self.feedback_ticks = 0
        self.reply_log: Optional[list[Rid]] = None
        self.obs = None

    # -- compatibility surface ------------------------------------------

    def probe_state(self) -> dict[str, float]:
        """BaseClient's probe counters plus aggregate-pool gauges."""
        return {
            "commands": float(self.commands_started),
            "sends": float(self.sends),
            "retries": float(self.retries),
            "hedges": float(self.hedges),
            "give_ups": float(self.give_ups),
            "successes": float(self.successes),
            "rejections": float(self.rejections),
            "timeouts": float(self.timeouts),
            "virtual_clients": float(self.n_clients),
            "active_requests": float(len(self._active)),
            "think_pool": float(self._think),
        }

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Begin generating load (mirrors the builder's client ramp)."""
        if self._uses_rate_process():
            if self.arrivals is None:
                self._think = self.n_clients
            else:
                self._available = self.n_clients
            self._exp_remaining = self._arrival_rng.expovariate(1.0)
            self._int_anchor = self.loop.now
            self._refresh_rate()
            if self.population.process == "mmpp":
                self._mmpp_timer.start(
                    self._mmpp_rng.expovariate(1.0 / self.population.dwell_normal)
                )
        else:
            # Exact closed loop: stagger the N virtual clients over the
            # same ramp window the per-object builder uses.
            self._running = self.n_clients
            n = self.n_clients
            for i in range(n):
                self.loop.call_at(self.ramp * (i + 1) / n, self._ramp_start)
        self._schedule_tick()

    def stop(self) -> None:
        """Stop issuing new operations (pending ones are abandoned)."""
        self.stopped = True
        self._arrival_timer.cancel()
        self._mmpp_timer.cancel()

    def _uses_rate_process(self) -> bool:
        return self.arrivals is not None or self.think_time > 0.0

    # -- identity fabrication -------------------------------------------

    def _draw_cid(self) -> int:
        """Draw a currently-idle virtual client id, uniformly."""
        free = self._free_cids
        i = self._cid_rng.randrange(len(free))
        last = len(free) - 1
        if i != last:
            free[i], free[last] = free[last], free[i]
        return free.pop()

    def _release_cid(self, cid: int) -> None:
        self._free_cids.append(cid)

    # -- the aggregate loop ---------------------------------------------

    def _ramp_start(self) -> None:
        if self.stopped or self.loop.now >= self.stop_time:
            self._running -= 1
            return
        if self._running > self._closed_cap(self.loop.now):
            # Schedule keeps this virtual client inactive for now; the
            # feedback tick re-spawns it when the schedule opens up.
            self._running -= 1
            return
        self._issue_fresh()

    def _closed_cap(self, now: float) -> int:
        if self.schedule is None:
            return self.n_clients
        return min(self.n_clients, self.schedule.active_clients(now))

    def _issue_fresh(self, cid: Optional[int] = None) -> None:
        """Begin a fresh operation for one virtual client.

        ``cid`` is set in exact closed-loop mode, where a virtual client
        keeps one identity for the whole run (like an object client —
        the AQM's per-cid group priority correlates with issue rate, so
        identities must persist across a client's operations).  The
        rate-process modes draw a uniformly random free cid per
        operation instead; there the think pool is a counter and the
        identity assignment is part of the analytic approximation.
        """
        if self.stopped or self.loop.now >= self.stop_time:
            if not self._uses_rate_process():
                if cid is not None:
                    self._release_cid(cid)
                self._running -= 1
            return
        if cid is None:
            if not self._free_cids:
                self.shed_arrivals += 1
                return
            cid = self._draw_cid()
        command = self.workload.next_command(self._ops_rng)
        self.commands_started += 1
        op = _ActiveOp(cid, command)
        op.first_send = self.loop.now
        self.retry_policy.on_operation_start(self.loop.now)
        self._issue_attempt(op)

    def _issue_attempt(self, op: _ActiveOp) -> None:
        """Send one attempt of ``op``'s command under a fresh rid."""
        if self.stopped:
            self._release_cid(op.cid)
            return
        now = self.loop.now
        self._onr += 1
        op.onr = self._onr
        op.attempt += 1
        op.send_time = now
        op.rejecting = 0
        op.grace_armed = False
        op.hedges_attempt = 0
        rid = (op.cid, op.onr)
        self._active[rid] = op
        if self.obs is not None:
            self.obs.on_send(rid)
        self.sends += 1
        self._send(rid, op)
        config = self.config
        self._timeout_q.append((now + config.request_timeout, rid, op.attempt))
        if self.mode in (IDEM, BROADCAST):
            self._retransmit_q.append(
                (now + config.retransmit_interval, rid, op.attempt)
            )
        if self.hedge_policy is not None:
            self._hedge_seq += 1
            heapq.heappush(
                self._hedge_q,
                (now + self.hedge_policy.delay(), self._hedge_seq, rid, op.attempt),
            )

    def _send(self, rid: Rid, op: _ActiveOp) -> None:
        request = Request(rid, op.command)
        src = client_address(op.cid)
        if self.mode in (IDEM, BROADCAST):
            self.network.multicast(src, self.replicas, request)
        else:
            self.network.send(
                src, replica_address(self._presumed_leader), request
            )
            self._failover_q.append(
                (
                    self.loop.now + self.config.client_failover_timeout,
                    rid,
                    op.attempt,
                )
            )

    def _send_hedge(self, rid: Rid, op: _ActiveOp) -> None:
        request = Request(rid, op.command)
        src = client_address(op.cid)
        if self.mode in (IDEM, BROADCAST):
            self.network.multicast(src, self.replicas, request)
        else:
            # Hedge to a replica other than the presumed leader, like
            # SingleTargetClient._send_hedge (it relays to the leader).
            target = (self._presumed_leader + op.hedges_attempt) % self.config.n
            self.network.send(src, replica_address(target), request)

    # -- responses -------------------------------------------------------

    def deliver(self, src: Address, message: Message) -> None:
        if isinstance(message, Reply):
            self._on_reply(src, message)
        elif isinstance(message, Reject):
            self._on_reject(src, message)

    def _on_reply(self, src: Address, message: Reply) -> None:
        if self.mode in (LEADER, LBR):
            # Learn the current leader from the reply's view.
            self._presumed_leader = self.config.leader_of(message.view)
        op = self._active.pop(message.rid, None)
        if op is None:
            return  # late reply for an operation already finished
        now = self.loop.now
        latency = now - op.first_send
        self.metrics.record_success(now, latency)
        self.successes += 1
        if self.hedge_policy is not None:
            self.hedge_policy.observe(latency)
        if self.reply_log is not None:
            self.reply_log.append(message.rid)
        if self.obs is not None:
            self.obs.on_outcome(message.rid, "success", latency)
        if self._uses_rate_process():
            self._release_cid(op.cid)
            self._virtual_done(self.config.think_time, to_think=True)
        else:
            self._virtual_done(self.config.think_time, to_think=True, cid=op.cid)

    def _on_reject(self, src: Address, message: Reject) -> None:
        mode = self.mode
        if mode in (IDEM, LBR):
            self.metrics.note_reject_message(self.loop.now)
        if mode in (LEADER, BROADCAST):
            return  # these protocols' clients ignore REJECTs
        op = self._active.get(message.rid)
        if op is None:
            return
        if mode == LBR:
            # A single REJECT from the leader aborts the operation.
            self._attempt_failed(message.rid, op, "reject")
            return
        if self.obs is not None:
            self.obs.on_reject_recv(message.rid, src.index)
        op.rejecting |= 1 << src.index
        count = op.rejecting.bit_count()
        config = self.config
        if count >= config.n:
            # Failure state: certain the request will never execute.
            self.failure_aborts += 1
            self._attempt_failed(message.rid, op, "reject")
        elif count >= config.n - config.f:
            # Ambivalence state (paper Section 5.3).
            if not self._optimistic:
                self.ambivalent_aborts += 1
                self._attempt_failed(message.rid, op, "reject")
            elif not op.grace_armed:
                op.grace_armed = True
                # Grace deadlines are short and timing-sensitive, so
                # they get a precise per-request event.
                self.loop.call_after(
                    self._grace, self._on_grace, message.rid, op.attempt
                )

    def _on_grace(self, rid: Rid, attempt: int) -> None:
        op = self._active.get(rid)
        if op is None or op.attempt != attempt or not op.grace_armed:
            return
        self.ambivalent_aborts += 1
        self._attempt_failed(rid, op, "reject")

    # -- outcomes --------------------------------------------------------

    def _attempt_failed(self, rid: Rid, op: _ActiveOp, outcome: str) -> None:
        """A rejection or timeout ended the attempt: ask the policy."""
        now = self.loop.now
        elapsed = now - op.first_send
        decision = self.retry_policy.next_action(outcome, op.attempt, elapsed, now)
        if decision.kind != ABANDON:
            self.retries += 1
            if self.obs is not None:
                self.obs.on_retry(rid, outcome, op.attempt, decision.delay)
            del self._active[rid]
            # The virtual client keeps its cid through the retry delay
            # (it is still mid-operation), then re-attempts.
            self.loop.call_after(decision.delay, self._issue_attempt, op)
            return
        del self._active[rid]
        if outcome == "reject":
            self.metrics.record_reject(now, elapsed)
            self.rejections += 1
            if self.obs is not None:
                self.obs.on_outcome(rid, "rejected", elapsed)
        else:
            self.metrics.record_timeout(now, elapsed)
            self.timeouts += 1
            if self.obs is not None:
                self.obs.on_outcome(rid, "timeout", elapsed)
        if decision.reason != "no-retry":
            self.give_ups += 1
            if self.obs is not None:
                self.obs.on_give_up(rid, decision.reason)
        # Timeout abandonment backs off for the think time (the policy's
        # decision.delay) — in analytic mode that is exactly a return to
        # the think pool.  Rejection backoffs are short (50-100 ms) and
        # get a precise re-issue event — unless the population opts into
        # "think" re-entry, where the rejected virtual client (served by
        # its fallback) rejoins the think pool and rejection sheds load.
        if self._uses_rate_process():
            self._release_cid(op.cid)
            self._virtual_done(
                decision.delay,
                to_think=(outcome == "timeout" or self._reject_to_think),
            )
        else:
            self._virtual_done(decision.delay, to_think=False, cid=op.cid)

    def _virtual_done(
        self, delay: float, to_think: bool, cid: Optional[int] = None
    ) -> None:
        """One virtual client finished an operation; recycle it.

        ``cid`` is only passed in exact closed-loop mode: the virtual
        client keeps its identity through backoffs and into its next
        operation, and only releases it when it retires.
        """
        now = self.loop.now
        if self.arrivals is not None:
            # Open loop: the client rejoins the idle pool after ``delay``.
            if delay > 0.0:
                self.loop.call_after(delay, self._return_to_pool)
            else:
                self._available += 1
            return
        if self.think_time > 0.0:
            if to_think:
                # Think phases are a counter; the feedback tick folds it
                # into lambda_eff.  (Deterministic think is approximated
                # as exponential with the same mean — see WORKLOADS.md.)
                self._think += 1
            else:
                self.loop.call_after(delay, self._issue_fresh)
            return
        # Exact closed loop.
        if self.stopped or now >= self.stop_time:
            if cid is not None:
                self._release_cid(cid)
            self._running -= 1
            return
        if self._running > self._closed_cap(now):
            # Schedule shrank; retire until it reopens.
            if cid is not None:
                self._release_cid(cid)
            self._running -= 1
            return
        if delay > 0.0:
            self.loop.call_after(delay, self._issue_fresh, cid)
        else:
            self._issue_fresh(cid)

    def _return_to_pool(self) -> None:
        self._available += 1

    # -- aggregate arrival process ---------------------------------------

    def _current_rate(self, now: float) -> float:
        if self.arrivals is not None:
            rate = self.arrivals.rate_at(now)
        else:
            rate = self._think / self.think_time
            if self.schedule is not None:
                # Proportional thinning: only the scheduled fraction of
                # the population participates.
                frac = self.schedule.active_clients(now) / self.n_clients
                rate *= min(1.0, max(0.0, frac))
        if self._mmpp_burst:
            rate *= self.population.burst_multiplier
        return rate

    def _refresh_rate(self) -> None:
        """Re-derive lambda_eff and re-arm the next-arrival timer.

        Uses the unit-exponential integral: an arrival fires once the
        integral of lambda(t) dt reaches the pending Exp(1) draw, so a
        rate change only rescales the residual wait — no re-draws, and
        the process stays exact for piecewise-constant rates.
        """
        now = self.loop.now
        lam = self._lambda
        if lam > 0.0:
            consumed = lam * (now - self._int_anchor)
            self._exp_remaining = max(0.0, self._exp_remaining - consumed)
        self._int_anchor = now
        self._lambda = self._current_rate(now)
        if self._lambda <= 0.0 or now >= self.stop_time:
            self._arrival_timer.cancel()
            return
        self._arrival_timer.start(self._exp_remaining / self._lambda)

    def _on_arrival(self) -> None:
        now = self.loop.now
        if self.stopped or now >= self.stop_time:
            return
        self._int_anchor = now
        self._exp_remaining = self._arrival_rng.expovariate(1.0)
        self.arrivals_generated += 1
        if self.arrivals is not None:
            if self._available > 0 and self._free_cids:
                self._available -= 1
                self._issue_fresh()
            else:
                self.shed_arrivals += 1
        else:
            if self._think > 0 and self._free_cids:
                self._think -= 1
                self._issue_fresh()
            else:
                # lambda_eff is re-derived on the tick; until then a
                # drained think pool can still fire — drop silently,
                # like a Poisson thinning step.
                self.lost_arrivals += 1
        if self._lambda > 0.0:
            self._arrival_timer.start(self._exp_remaining / self._lambda)

    def _on_mmpp_flip(self) -> None:
        if self.stopped or self.loop.now >= self.stop_time:
            return
        self._mmpp_burst = not self._mmpp_burst
        dwell = (
            self.population.dwell_burst
            if self._mmpp_burst
            else self.population.dwell_normal
        )
        self._mmpp_timer.start(self._mmpp_rng.expovariate(1.0 / dwell))
        self._refresh_rate()

    # -- feedback tick ----------------------------------------------------

    def _schedule_tick(self) -> None:
        interval = self.population.feedback_interval
        if self.loop.now + interval <= self.stop_time:
            self.loop.call_after(interval, self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        now = self.loop.now
        self.feedback_ticks += 1
        self._expire_deadlines(now)
        if self._uses_rate_process():
            self._refresh_rate()
        else:
            # Exact closed loop under a schedule: spawn virtual clients
            # the schedule has (re)activated.
            cap = self._closed_cap(now)
            while self._running < cap:
                self._running += 1
                self._issue_fresh()
        self._schedule_tick()

    def _expire_deadlines(self, now: float) -> None:
        """Drain every lazy deadline queue up to ``now``.

        Entries whose rid is no longer active (or whose attempt was
        superseded by a retry) are tombstones and are skipped — the lazy
        analogue of BaseClient's per-request Timer.cancel().
        """
        active = self._active
        config = self.config
        tq = self._timeout_q
        while tq and tq[0][0] <= now:
            _, rid, attempt = tq.popleft()
            op = active.get(rid)
            if op is not None and op.attempt == attempt:
                self._attempt_failed(rid, op, "timeout")
        rq = self._retransmit_q
        while rq and rq[0][0] <= now:
            _, rid, attempt = rq.popleft()
            op = active.get(rid)
            if op is not None and op.attempt == attempt:
                if self.obs is not None:
                    self.obs.on_send(rid, retransmit=True)
                self.sends += 1
                self.network.multicast(
                    client_address(op.cid), self.replicas, Request(rid, op.command)
                )
                rq.append((now + config.retransmit_interval, rid, attempt))
        fq = self._failover_q
        while fq and fq[0][0] <= now:
            _, rid, attempt = fq.popleft()
            op = active.get(rid)
            if op is not None and op.attempt == attempt:
                # Presumed-leader failover: resend to the next replica
                # (SingleTargetClient._on_failover_timeout).
                self._presumed_leader = (self._presumed_leader + 1) % config.n
                if self.obs is not None:
                    self.obs.on_send(rid, retransmit=True)
                self.sends += 1
                # _send re-arms the next failover deadline.
                self._send(rid, op)
        hq = self._hedge_q
        policy = self.hedge_policy
        while hq and hq[0][0] <= now:
            _, _, rid, attempt = heapq.heappop(hq)
            op = active.get(rid)
            if (
                policy is not None
                and op is not None
                and op.attempt == attempt
                and op.hedges_attempt < policy.max_hedges
            ):
                op.hedges_attempt += 1
                self.hedges += 1
                self.sends += 1
                if self.obs is not None:
                    self.obs.on_hedge(rid)
                self._send_hedge(rid, op)
                if op.hedges_attempt < policy.max_hedges:
                    self._hedge_seq += 1
                    heapq.heappush(
                        hq, (now + policy.delay(), self._hedge_seq, rid, attempt)
                    )


def _scale_retry_budget(config, n_clients: int):
    """Scale per-client token-bucket retry budgets to the population.

    Object clients each own a budget of ``retry_budget_rate`` tokens/s;
    the aggregate holds one shared bucket, so rate and cap scale by N to
    keep the population-wide budget identical.
    """
    import dataclasses

    if getattr(config, "retry_budget_rate", 0.0) <= 0.0:
        return config
    return dataclasses.replace(
        config,
        retry_budget_rate=config.retry_budget_rate * n_clients,
        retry_budget_cap=max(1.0, config.retry_budget_cap * n_clients),
    )

"""Declarative description of an aggregate client population.

A :class:`PopulationSpec` is a frozen dataclass of primitives, like
:class:`~repro.workload.open_loop.ArrivalSpec` and the fault types, so
it serialises losslessly through the campaign planner's JSON payloads
(``repro.campaign.plan``) and participates in content-addressed job
keys.  The population size itself is *not* part of the spec — it is the
:class:`~repro.cluster.runner.RunSpec`'s ``clients`` field, so sweeps
over N reuse one spec object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Supported aggregate arrival processes.  "poisson" is the homogeneous
# M/.../N closed-loop approximation; "mmpp" modulates it with a
# two-state Markov chain (normal/burst) for bursty edge populations.
POPULATION_PROCESSES = ("poisson", "mmpp")

# What a virtual client does after a *rejected* operation is abandoned
# (analytic mode only).  "backoff" re-engages after the 50-100 ms
# rejection backoff, exactly like the per-object benchmark clients
# (Section 7.1) — under sustained overload at large N this amplifies
# offered load without bound (every rejected client re-offers ~13x/s
# instead of 1/Z) and the population death-spirals, which is faithful
# but usually not the question being asked.  "think" models
# semi-autonomous edge clients (Section 2.3): the fallback already
# served the user, who returns to the think pool — rejection then
# *sheds* load, which is the regime the paper's thesis addresses.
REJECT_REENTRY_MODES = ("backoff", "think")


@dataclass(frozen=True)
class PopulationSpec:
    """How N virtual clients behave as one aggregate arrival process.

    ``think_time``
        Mean think time Z between a virtual client's operations.  When
        set it overrides ``config.think_time`` for the whole run (the
        retry policies' timeout backoff uses the same value, exactly as
        it would for object clients).  ``Z == 0`` selects the *exact*
        closed-loop mode (each completion immediately re-issues);
        ``Z > 0`` selects the analytic feedback mode where arrivals are
        Poisson at ``lambda_eff(t) = thinkers(t) / Z``.
    ``process``
        "poisson" or "mmpp" (two-state Markov-modulated bursts).
    ``burst_multiplier`` / ``dwell_normal`` / ``dwell_burst``
        MMPP parameters: the rate multiplier while in the burst state
        and the mean (exponential) sojourn times of the normal and
        burst states.  Ignored for ``process == "poisson"``.
    ``feedback_interval``
        Cadence of the feedback tick that re-derives ``lambda_eff``
        from the think pool and expires the lazy timeout/retransmit
        deadline queues.  Purely a fidelity/cost dial — the tick only
        touches the aggregate node's own state, never the replicas.
    ``reject_reentry``
        Post-rejection behaviour in analytic (``Z > 0``) mode:
        "backoff" re-engages after the 50-100 ms rejection backoff
        (faithful to the per-object benchmark clients but death-spirals
        under sustained overload at large N); "think" returns the
        virtual client to the think pool (the fallback response served
        it), so rejection sheds load — the regime proactive rejection
        is designed for.  Exact closed-loop (``Z == 0``) and open-loop
        runs ignore this and always use the faithful backoff.
    """

    think_time: Optional[float] = None
    process: str = "poisson"
    burst_multiplier: float = 4.0
    dwell_normal: float = 1.0
    dwell_burst: float = 0.25
    feedback_interval: float = 0.005
    reject_reentry: str = "backoff"

    def __post_init__(self) -> None:
        if self.process not in POPULATION_PROCESSES:
            raise ValueError(
                f"unknown population process {self.process!r}; "
                f"choose from {POPULATION_PROCESSES}"
            )
        if self.reject_reentry not in REJECT_REENTRY_MODES:
            raise ValueError(
                f"unknown reject_reentry {self.reject_reentry!r}; "
                f"choose from {REJECT_REENTRY_MODES}"
            )
        if self.think_time is not None and self.think_time < 0.0:
            raise ValueError(f"think_time must be >= 0, got {self.think_time}")
        if self.feedback_interval <= 0.0:
            raise ValueError(
                f"feedback_interval must be positive, got {self.feedback_interval}"
            )
        if self.process == "mmpp":
            if self.burst_multiplier <= 0.0:
                raise ValueError(
                    f"burst_multiplier must be positive, got {self.burst_multiplier}"
                )
            if self.dwell_normal <= 0.0 or self.dwell_burst <= 0.0:
                raise ValueError(
                    "mmpp dwell times must be positive, got "
                    f"{self.dwell_normal}/{self.dwell_burst}"
                )

    def effective_think_time(self, config) -> float:
        """The think time Z this population runs with under ``config``."""
        if self.think_time is not None:
            return self.think_time
        return config.think_time

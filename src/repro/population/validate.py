"""Validation harness: aggregate population vs per-object clients.

The aggregate backend's claim is *behavioural equivalence at the
boundary*: for the same (system, N, seed), a population run must
reproduce the per-object closed-loop clients' throughput and latency
tail within tight bands.  This module runs both backends side by side
in the exact closed-loop regime (``Z == 0``, every completion re-issues
— the regime where the aggregate makes no analytic approximation) and
gates the comparison:

* throughput within ``THROUGHPUT_TOLERANCE`` (±5 %),
* p99 success latency within ``P99_TOLERANCE`` (±10 %).

The harness runs via ``repro-experiments population --validate`` (CI's
``population-validate`` job) and via the tier-1 test suite
(``tests/test_population.py``), so the equivalence claim is enforced,
not aspirational.  The analytic (``Z > 0``) mode's approximations —
exponential think, shared retry budget, feedback-tick rate updates —
are documented in ``docs/WORKLOADS.md`` and validated separately at
coarser tolerances by the tests.

The two backends cannot be bit-identical: the aggregate draws
arrivals, cids and timing from pooled RNG streams where object clients
own per-cid streams, and its lazy deadline queues quantise timeouts to
the feedback tick.  Equivalence is therefore statistical, which is
exactly what the figures consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.runner import RunSpec, run_experiment
from repro.population.spec import PopulationSpec

#: Relative tolerance for the throughput comparison.
THROUGHPUT_TOLERANCE = 0.05

#: Relative tolerance for the p99 success-latency comparison.
P99_TOLERANCE = 0.10

#: Population sizes compared (paper-scale closed-loop client counts).
VALIDATION_SWEEP = (50, 100, 200)

#: Systems compared: with and without proactive rejection.
VALIDATION_SYSTEMS = ("idem", "paxos")

#: Short runs keep the harness in smoke-test territory; the window is
#: long enough for ~20k+ operations per arm at these client counts.
DURATION = 0.4
WARMUP = 0.15


@dataclass
class ValidationRow:
    """One (system, N) comparison between the two backends."""

    system: str
    clients: int
    ref_throughput: float
    pop_throughput: float
    ref_p99_ms: float
    pop_p99_ms: float

    @property
    def throughput_error(self) -> float:
        if self.ref_throughput == 0.0:
            return 0.0 if self.pop_throughput == 0.0 else float("inf")
        return abs(self.pop_throughput - self.ref_throughput) / self.ref_throughput

    @property
    def p99_error(self) -> float:
        if self.ref_p99_ms == 0.0:
            return 0.0 if self.pop_p99_ms == 0.0 else float("inf")
        return abs(self.pop_p99_ms - self.ref_p99_ms) / self.ref_p99_ms

    @property
    def ok(self) -> bool:
        return (
            self.throughput_error <= THROUGHPUT_TOLERANCE
            and self.p99_error <= P99_TOLERANCE
        )


@dataclass
class ValidationReport:
    """All rows of one validation sweep."""

    rows: list[ValidationRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.rows) and all(row.ok for row in self.rows)

    def render(self) -> str:
        lines = [
            "Population backend validation (closed loop, object clients "
            "vs aggregate):",
            "",
            f"  {'system':8s} {'N':>5s} {'ref tput':>10s} {'pop tput':>10s} "
            f"{'err':>6s} {'ref p99':>9s} {'pop p99':>9s} {'err':>6s}  verdict",
        ]
        for row in self.rows:
            lines.append(
                f"  {row.system:8s} {row.clients:>5d} "
                f"{row.ref_throughput:>10.1f} {row.pop_throughput:>10.1f} "
                f"{row.throughput_error * 100:>5.1f}% "
                f"{row.ref_p99_ms:>8.3f} {row.pop_p99_ms:>8.3f} "
                f"{row.p99_error * 100:>5.1f}%  "
                + ("ok" if row.ok else "FAIL")
            )
        verdict = (
            f"PASS (throughput within ±{THROUGHPUT_TOLERANCE * 100:.0f}%, "
            f"p99 within ±{P99_TOLERANCE * 100:.0f}%)"
            if self.ok
            else "FAIL"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def validation_pair(
    system: str, clients: int, seed: int = 1
) -> tuple[RunSpec, RunSpec]:
    """The (reference, population) specs of one comparison row.

    Both run the exact closed loop: think time 0, same seed, same
    duration/warmup.  The only difference is the backend.
    """
    reference = RunSpec(
        system=system,
        clients=clients,
        duration=DURATION,
        warmup=WARMUP,
        seed=seed,
    )
    population = RunSpec(
        system=system,
        clients=clients,
        duration=DURATION,
        warmup=WARMUP,
        seed=seed,
        population=PopulationSpec(think_time=0.0),
    )
    return reference, population


def validate_population(
    systems: tuple[str, ...] = VALIDATION_SYSTEMS,
    sweep: tuple[int, ...] = VALIDATION_SWEEP,
    seed: int = 1,
) -> ValidationReport:
    """Run the full equivalence sweep and gate it."""
    report = ValidationReport()
    for system in systems:
        for clients in sweep:
            reference_spec, population_spec = validation_pair(
                system, clients, seed
            )
            reference = run_experiment(reference_spec)
            population = run_experiment(population_spec)
            report.rows.append(
                ValidationRow(
                    system=system,
                    clients=clients,
                    ref_throughput=reference.throughput,
                    pop_throughput=population.throughput,
                    ref_p99_ms=reference.latency.p99 * 1e3,
                    pop_p99_ms=population.latency.p99 * 1e3,
                )
            )
    return report

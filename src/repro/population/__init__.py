"""``repro.population`` — aggregate million-client workload backend.

Every client elsewhere in the repo is a simulated object with its own
timers and RNG streams, which caps realistic populations at a few
hundred.  This package collapses N virtual clients into **one**
:class:`AggregateClientNode` driving a single aggregate arrival process
(Poisson, Markov-modulated for bursts, or schedule-modulated), with
closed-loop feedback approximated analytically: the effective open-loop
rate ``lambda_eff(t) = thinkers(t) / Z`` is recomputed on a periodic
feedback tick from the think-pool population instead of firing one
timer per client.  Per-virtual-client at-most-once state is fabricated
on demand (seeded cid draws, one monotone onr counter), so memory and
event cost are O(active requests), not O(N) — "1M users" at roughly
one extra event per request.

:class:`PopulationSpec` is the serialisable knob (rides campaign
payloads like :class:`~repro.workload.open_loop.ArrivalSpec`);
:mod:`repro.population.validate` proves the aggregate backend
reproduces the per-object closed-loop curves at small N before anyone
trusts it at large N.  See ``docs/WORKLOADS.md``.
"""

from repro.population.aggregate import AggregateClientNode, dissemination_mode
from repro.population.spec import (
    POPULATION_PROCESSES,
    REJECT_REENTRY_MODES,
    PopulationSpec,
)

__all__ = [
    "AggregateClientNode",
    "POPULATION_PROCESSES",
    "REJECT_REENTRY_MODES",
    "PopulationSpec",
    "dissemination_mode",
]

"""IDEM — the paper's contribution.

A crash-fault-tolerant state-machine replication protocol that prevents
overload-induced tail latency through *collaborative proactive
rejection*: every replica runs a local acceptance test on each incoming
client request and immediately notifies the client when it opts not to
process it.  Clients that collect ``n - f`` rejections abandon the
operation and resort to their local fallback.

Public entry points:

* :class:`IdemConfig` — all protocol parameters (Sections 4, 5, 7.1).
* :class:`IdemReplica` — the replica (request handling, REQUIRE/PROPOSE/
  COMMIT agreement on ids, forwarding, implicit GC, view changes).
* :class:`IdemClient` — the client (pessimistic/optimistic rejection
  handling, fallback, backoff).
* :mod:`repro.core.acceptance` — pluggable acceptance tests (tail drop
  and the paper's prioritised active-queue-management test).
"""

from repro.core.acceptance import (
    AcceptanceTest,
    AdaptiveThreshold,
    AlwaysAccept,
    AqmPriorityTest,
    CostAwareTest,
    PriorityClassTest,
    TailDrop,
    make_acceptance_test,
)
from repro.core.client import IdemClient
from repro.core.config import IdemConfig
from repro.core.replica import IdemReplica

__all__ = [
    "AcceptanceTest",
    "AdaptiveThreshold",
    "AlwaysAccept",
    "AqmPriorityTest",
    "CostAwareTest",
    "IdemClient",
    "IdemConfig",
    "IdemReplica",
    "PriorityClassTest",
    "TailDrop",
    "make_acceptance_test",
]

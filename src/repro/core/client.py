"""The IDEM client (paper Section 5.3).

The client multicasts each request to all replicas and then observes one
of three terminal situations:

* **Success** — a REPLY arrives: the operation completed.
* **Failure** — all ``n`` replicas rejected: abandon immediately.
* **Ambivalence** — ``n - f`` rejections: the remaining ``f`` replicas
  may have crashed.  A *pessimistic* client aborts immediately; an
  *optimistic* client (the evaluation's default) waits a short grace
  period (5 ms) for a late reply or the missing rejections before
  abandoning the operation.

Abandoning triggers the local fallback and a randomised 50–100 ms
backoff before the next operation (Section 7.1).

An optional *early warning* callback implements the optimisation the
paper sketches at the end of Section 5.3: it fires as soon as the
``n - f``-th rejection arrives, so the application can start preparing
its fallback while the optimistic client still waits for a late reply.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.app.commands import Command
from repro.net.addresses import Address
from repro.protocols.clients import BaseClient
from repro.protocols.messages import Reject, Reply, Request, Rid
from repro.sim.timers import Timer


class IdemClient(BaseClient):
    """A closed-loop IDEM client with configurable rejection strategy."""

    def __init__(
        self,
        *args,
        early_warning: Optional[Callable[[Command], None]] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.early_warning = early_warning
        self._rejecting_replicas: set[int] = set()
        self._grace_timer = Timer(self.loop, self._on_grace_timeout)
        self._grace_rid: Optional[Rid] = None
        # Outcome-state statistics (success/ambivalence/failure).
        self.ambivalent_aborts = 0
        self.failure_aborts = 0
        self.early_warnings = 0

    def _reset_operation_state(self) -> None:
        self._rejecting_replicas.clear()
        self._grace_timer.cancel()
        self._grace_rid = None

    def _send_request(self, request: Request) -> None:
        self.network.multicast(self.address, self.replicas, request)

    def _on_reply(self, src: Address, message: Reply) -> None:
        if message.rid != self.current_rid:
            return
        self._grace_timer.cancel()
        self._finish_success()

    def _on_reject(self, src: Address, message: Reject) -> None:
        self.metrics.note_reject_message(self.loop.now)
        if message.rid != self.current_rid:
            return
        if self.obs is not None:
            self.obs.on_reject_recv(message.rid, src.index)
        self._rejecting_replicas.add(src.index)
        count = len(self._rejecting_replicas)
        config = self.config
        if count >= config.n:
            # Failure state: certain the request will never execute.
            self.failure_aborts += 1
            self._grace_timer.cancel()
            self._finish_rejected()
        elif count >= config.n - config.f:
            # Ambivalence state (Section 5.3).
            if not config.optimistic_client:
                self.ambivalent_aborts += 1
                self._finish_rejected()
            elif self._grace_rid != self.current_rid:
                self._grace_rid = self.current_rid
                self._grace_timer.start(config.optimistic_grace)
                if self.early_warning is not None:
                    # Give the application a head start on its fallback
                    # while we still hope for a late reply.
                    self.early_warnings += 1
                    self.early_warning(self.current_command)

    def _on_grace_timeout(self) -> None:
        if self._grace_rid is None or self._grace_rid != self.current_rid:
            return
        self.ambivalent_aborts += 1
        self._finish_rejected()

    def _finish_rejected(self) -> None:
        self._grace_timer.cancel()
        self._grace_rid = None
        super()._finish_rejected()

"""Multi-leader IDEM (Mencius-style), with collaborative rejection.

The paper's related-work section expects that "the concept of
collaborative overload prevention can be integrated into such
multi-leader protocols with little adjustments"; this module is that
integration, built in the style of Mencius (Mao et al., OSDI '08):

* In the fault-free fast mode (**view 0**) the sequence space is
  partitioned round-robin: replica ``i`` owns slots ``i+1, i+n+1, ...``
  and proposes only on its own slots — there is no single leader to
  saturate.
* Each request has a static **coordinator** (``cid mod n``): replicas
  that accept the request send their REQUIREs to the coordinator, which
  proposes the id on its own slots once ``f+1`` replicas back it, and
  answers the client after execution.  Acceptance tests, forwarding,
  caching and fetching are inherited from IDEM unchanged — proactive
  rejection is untouched by the ordering change, exactly the
  separation-of-concerns argument of the paper's Section 4.2.
* Idle owners release their slots with bulk **SKIP** messages whenever
  they observe a proposal beyond their next owned slot, keeping
  execution contiguous (the Mencius "skip" idea).
* Any crash suspicion falls back to **single-leader IDEM**: the
  ordinary view change elects the leader of view ``v >= 1`` and from
  then on the protocol behaves exactly like `IdemReplica` (the fast
  mode is not re-entered).  This trades Mencius' revocation machinery
  for the already-verified view-change path — a deliberate
  simplification, documented here.
"""

from __future__ import annotations

from typing import Any

from repro.core.replica import IdemReplica
from repro.net.addresses import Address
from repro.protocols.messages import (
    Propose,
    Rid,
    RequireBatch,
    Skip,
    SkipAck,
)

# Upper bound on slots released by a single SKIP message.
_MAX_SKIP_RANGE = 4096


class MultiLeaderIdemReplica(IdemReplica):
    """IDEM with Mencius-style partitioned proposing in the fault-free case."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # The next slot this replica owns and has not used or skipped.
        self._my_next_slot = self.index + 1
        self._handlers[Skip] = self._on_skip
        self._handlers[SkipAck] = self._on_skip_ack
        self.stats["skips"] = 0

    # ------------------------------------------------------------------
    # Slot ownership (fast mode = view 0)
    # ------------------------------------------------------------------

    @property
    def fast_mode(self) -> bool:
        """Whether the partitioned, leaderless fast mode is active."""
        return self.view == 0 and self._vc_target is None

    def owner_of(self, sqn: int) -> int:
        """The replica owning slot ``sqn`` in fast mode."""
        return (sqn - 1) % self.config.n

    def coordinator_of(self, rid: Rid) -> int:
        """The replica that orders (and answers) this client's requests."""
        return rid[0] % self.config.n

    def _proposer_of(self, view: int, sqn: int) -> int:
        if view == 0:
            return self.owner_of(sqn)
        return self.leader_of(view)

    def _advance_my_slot(self, past: int) -> None:
        """Move our next owned slot to the first one >= ``past``."""
        if self._my_next_slot >= past:
            return
        remainder = (past - 1) % self.config.n
        delta = (self.index - remainder) % self.config.n
        self._my_next_slot = past + delta

    # ------------------------------------------------------------------
    # REQUIRE routing: to the request's coordinator
    # ------------------------------------------------------------------

    def _route_require(self, rid: Rid) -> None:
        if not self.fast_mode:
            super()._route_require(rid)
            return
        if self.coordinator_of(rid) == self.index:
            self._note_require(rid, self.index)
        else:
            self._require_outbox.append(rid)
            if len(self._require_outbox) >= self.config.require_batch_max:
                self._require_timer.cancel()
                self._flush_requires()
            elif not self._require_timer.running:
                self._require_timer.start(self.config.require_flush_delay)

    def _flush_requires(self) -> None:
        if not self.fast_mode:
            super()._flush_requires()
            return
        if self.halted or not self._require_outbox:
            return
        # Split the outbox by coordinator and ship one batch to each.
        by_coordinator: dict[int, list[Rid]] = {}
        for rid in self._require_outbox:
            by_coordinator.setdefault(self.coordinator_of(rid), []).append(rid)
        self._require_outbox.clear()
        from repro.net.addresses import replica_address

        for coordinator, rids in by_coordinator.items():
            if coordinator == self.index:
                for rid in rids:
                    self._note_require(rid, self.index)
            else:
                self.send(replica_address(coordinator), RequireBatch(tuple(rids)))

    def _on_require_batch(self, src: Address, message: RequireBatch) -> None:
        if not self.fast_mode:
            super()._on_require_batch(src, message)
            return
        for rid in message.rids:
            if self.coordinator_of(rid) == self.index:
                self._note_require(rid, src.index)

    # ------------------------------------------------------------------
    # Proposing on our own slots + skips
    # ------------------------------------------------------------------

    def _flush_proposals(self) -> None:
        if not self.fast_mode:
            super()._flush_proposals()
            return
        if self.halted:
            return
        config = self.config
        hint = self.acceptance.threshold_hint()
        while self._propose_queue and self._window_has_room():
            batch = tuple(self._propose_queue[: config.batch_max])
            del self._propose_queue[: len(batch)]
            sqn = self._my_next_slot
            self._my_next_slot += config.n
            for rid in batch:
                self.proposed_rids[rid] = sqn
            self._open_instance(sqn, 0, batch)
            self.multicast_peers(Propose(0, sqn, batch, hint))
            self.stats["proposals"] += 1
            if sqn >= self.next_sqn:
                self.next_sqn = sqn + 1
        if self._propose_queue and not self._batch_timer.running:
            self._batch_timer.start(config.batch_delay)
        if not self._progress_timer.running:
            self._progress_timer.start()
        self._try_execute()

    def _on_propose(self, src: Address, message: Propose) -> None:
        if message.view == 0 and src.index != self.owner_of(message.sqn):
            return  # only the owner may propose on a slot in fast mode
        super()._on_propose(src, message)
        if self.fast_mode:
            self._maybe_skip(message.sqn)

    def _maybe_skip(self, frontier: int) -> None:
        """Release our owned slots below an observed frontier."""
        if self._propose_queue:
            return  # our own proposals will fill those slots
        if self._my_next_slot >= frontier:
            return
        start = self._my_next_slot
        end = min(frontier, start + _MAX_SKIP_RANGE * self.config.n)
        self._advance_my_slot(end)
        self.stats["skips"] += 1
        self._install_skips(self.index, start, end)
        self.multicast_peers(Skip(0, start, end))

    def _install_skips(self, owner: int, from_sqn: int, to_sqn: int) -> None:
        """Create committed-on-fast-path no-op instances for owned slots."""
        for sqn in range(from_sqn, to_sqn):
            if self.owner_of(sqn) != owner:
                continue
            if sqn <= self.exec_sqn or sqn in self.instances:
                continue
            self._open_instance(sqn, 0, ())
            if sqn >= self.next_sqn:
                self.next_sqn = sqn + 1
        self._try_execute()

    def _on_skip(self, src: Address, message: Skip) -> None:
        if not self.fast_mode:
            return
        self._install_skips(src.index, message.from_sqn, message.to_sqn)
        self.send(src, SkipAck(0, message.from_sqn, message.to_sqn))

    def _on_skip_ack(self, src: Address, message: SkipAck) -> None:
        if self.view != 0:
            return
        for sqn in range(message.from_sqn, message.to_sqn):
            if self.owner_of(sqn) != self.index:
                continue
            instance = self.instances.get(sqn)
            if instance is not None and not instance.executed:
                instance.commits.add(src.index)
        self._try_execute()

    # ------------------------------------------------------------------
    # Fallback: skip the suspected owner's view directly
    # ------------------------------------------------------------------

    def _on_progress_timeout(self) -> None:
        if self.halted or not self.fast_mode:
            super()._on_progress_timeout()
            return
        if not self._has_outstanding_work():
            return
        # The stalled slot identifies the suspect: its owner stopped
        # proposing/skipping.  Fall back to the first single-leader view
        # that is NOT led by the suspect, instead of burning a full
        # timeout on a view the dead replica would have to lead.
        missing = self.exec_sqn + 1
        instance = self.instances.get(missing)
        if instance is None or not instance.committed(self.config.quorum):
            self._probe_gap()
            suspect = self.owner_of(missing)
        else:
            suspect = None
        target = 1
        if suspect is not None and self.leader_of(target) == suspect:
            target = suspect + 1  # leader_of(suspect + 1) != suspect for n >= 2
        self._start_view_change(target)

    # ------------------------------------------------------------------
    # Replies: the coordinator answers its clients (fast mode)
    # ------------------------------------------------------------------

    def _on_executed(self, rid: Rid, request, result: Any) -> None:
        entry = self.active.pop(rid, None)
        if entry is not None:
            self.acceptance.observe_completion(self.loop.now - entry.accept_time)
        if self.view == 0:
            responsible = self.coordinator_of(rid) == self.index
        else:
            responsible = self.is_leader
        if responsible:
            self._reply_to_client(rid, result)
        else:
            self._record_reply(rid, result)

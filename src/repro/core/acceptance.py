"""Acceptance tests: the local accept/reject decision (paper Section 5.1).

The test may be non-deterministic and is deliberately decoupled from the
rest of the protocol; IDEM only requires a boolean per fresh client
request.  Implementations provided:

* :class:`AlwaysAccept` — rejection disabled (IDEM_noPR).
* :class:`TailDrop` — reject only once the number of locally active
  requests reaches the threshold (IDEM_noAQM).
* :class:`AqmPriorityTest` — the paper's default: tail drop for the
  currently prioritised client group, probabilistic early rejection for
  everyone else, with a shared pseudo-random function so replicas tend
  to reach unanimous decisions.
* :class:`PriorityClassTest` and :class:`CostAwareTest` — the "further
  options" the paper sketches: static request priority categories, and
  admission weighted by a request's estimated resource cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.app.commands import Command, KvOp
from repro.protocols.messages import Rid
from repro.sim.rng import request_hash_unit


class AcceptanceTest(ABC):
    """Decides whether a replica accepts a fresh client request."""

    # Why the most recent decision came out the way it did; updated on
    # every accept() call whether anyone reads it or not, so observing
    # it (repro.obs) cannot change behaviour.
    last_reason: str = "accepted"

    @abstractmethod
    def accept(
        self,
        rid: Rid,
        now: float,
        active_count: int,
        command: Optional[Command] = None,
    ) -> bool:
        """Return True to accept the request, False to reject it.

        ``active_count`` is the replica's number of currently active
        (accepted, unexecuted) client requests; ``command`` is the
        request body, for tests that inspect the operation itself.
        """

    def observe_completion(self, queueing_delay: float) -> None:
        """Feedback hook: an accepted request executed after spending
        ``queueing_delay`` seconds in this replica's active set.

        The default acceptance tests ignore it; adaptive tests use it to
        steer their threshold.
        """

    def threshold_hint(self) -> Optional[int]:
        """Value to piggyback on outgoing proposals (leader side), or
        None.  Only adaptive tests advertise one."""
        return None

    def adopt_hint(self, hint: int, now: float) -> None:
        """Apply a threshold hint received from the current leader.

        Default: ignore.  Adaptive tests cap their threshold with it.
        """


class AlwaysAccept(AcceptanceTest):
    """Accept everything — proactive rejection disabled."""

    def accept(
        self,
        rid: Rid,
        now: float,
        active_count: int,
        command: Optional[Command] = None,
    ) -> bool:
        return True


class TailDrop(AcceptanceTest):
    """Accept while there is a free slot; reject once the queue is full."""

    def __init__(self, threshold: int):
        if threshold < 1:
            raise ValueError(f"threshold must be at least 1, got {threshold}")
        self.threshold = threshold

    def accept(
        self,
        rid: Rid,
        now: float,
        active_count: int,
        command: Optional[Command] = None,
    ) -> bool:
        decision = active_count < self.threshold
        self.last_reason = "accepted" if decision else "queue-full"
        return decision


class AqmPriorityTest(AcceptanceTest):
    """The paper's prioritised active-queue-management test.

    Clients are partitioned into groups of ``threshold`` clients each;
    one group is prioritised per ``time_slice``.  Prioritised clients
    experience plain tail drop.  Non-prioritised clients are rejected
    with probability ``p = active_count / threshold`` once the load
    passes ``start_fraction`` of the threshold — evaluated through a
    pseudo-random function of the *request id*, so all replicas flip the
    same coin and mostly agree.

    The number of groups adapts to the highest client id observed,
    mirroring a deployment where the client population is configured.
    """

    def __init__(
        self,
        threshold: int,
        start_fraction: float = 0.6,
        time_slice: float = 2.0,
        salt: int = 0,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be at least 1, got {threshold}")
        if time_slice <= 0:
            raise ValueError(f"time slice must be positive, got {time_slice}")
        self.threshold = threshold
        self.start_fraction = start_fraction
        self.time_slice = time_slice
        self.salt = salt
        self._group_count = 1

    def group_of(self, cid: int) -> int:
        """The priority group of client ``cid`` (at most ``threshold`` each)."""
        return cid // self.threshold

    def prioritized_group(self, now: float) -> int:
        """The group prioritised during the time slice containing ``now``."""
        return int(now / self.time_slice) % self._group_count

    def accept(
        self,
        rid: Rid,
        now: float,
        active_count: int,
        command: Optional[Command] = None,
    ) -> bool:
        if active_count >= self.threshold:
            self.last_reason = "queue-full"
            return False  # full: tail drop applies to everyone
        cid, onr = rid
        group = self.group_of(cid)
        if group >= self._group_count:
            self._group_count = group + 1
        if group == self.prioritized_group(now):
            self.last_reason = "accepted"
            return True  # prioritised clients are only subject to tail drop
        fraction = active_count / self.threshold
        if fraction < self.start_fraction:
            self.last_reason = "accepted"
            return True
        # Shared coin: the same request id yields the same draw on every
        # replica, nudging the group toward a unanimous decision.
        decision = request_hash_unit(cid, onr, self.salt) >= fraction
        self.last_reason = "accepted" if decision else "aqm-early"
        return decision


class PriorityClassTest(AcceptanceTest):
    """Static request priority categories (paper Section 5.1, "Further
    Options").

    Each request is mapped to a priority class by ``class_of`` (a
    deterministic function of the request id and command, so all
    replicas agree).  Class ``k`` starts being rejected once the load
    fraction exceeds ``start_fractions[k]``; beyond its start fraction a
    request is rejected with probability growing to 1 at full load,
    decided by the shared per-request coin.  Lower start fractions mean
    lower priority.  Classes absent from the mapping use 1.0 — i.e.
    plain tail drop (highest priority).
    """

    def __init__(
        self,
        threshold: int,
        class_of: Callable[[Rid, Optional[Command]], int],
        start_fractions: dict[int, float],
        salt: int = 0,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be at least 1, got {threshold}")
        for klass, fraction in start_fractions.items():
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(
                    f"start fraction for class {klass} must be in [0, 1], "
                    f"got {fraction}"
                )
        self.threshold = threshold
        self.class_of = class_of
        self.start_fractions = dict(start_fractions)
        self.salt = salt

    def accept(
        self,
        rid: Rid,
        now: float,
        active_count: int,
        command: Optional[Command] = None,
    ) -> bool:
        if active_count >= self.threshold:
            self.last_reason = "queue-full"
            return False
        fraction = active_count / self.threshold
        start = self.start_fractions.get(self.class_of(rid, command), 1.0)
        if fraction < start:
            self.last_reason = "accepted"
            return True
        if start >= 1.0:
            self.last_reason = "accepted"
            return True
        # Rejection probability ramps from 0 at the start fraction to 1
        # at full load; the shared coin keeps replicas aligned.
        probability = (fraction - start) / (1.0 - start)
        decision = request_hash_unit(rid[0], rid[1], self.salt) >= probability
        self.last_reason = "accepted" if decision else "priority-early"
        return decision


class CostAwareTest(AcceptanceTest):
    """Admission weighted by a request's estimated resource cost (paper
    Section 5.1, "Further Options").

    ``cost_of`` estimates how many "slot equivalents" a request will
    consume (e.g. a SCAN of 10 records ≈ 10 point operations).  A
    request is rejected if the estimated cost does not fit into the
    remaining capacity; expensive requests are additionally rejected
    early (probabilistically, shared coin) so cheap requests retain
    access under pressure.
    """

    def __init__(
        self,
        threshold: int,
        cost_of: Optional[Callable[[Optional[Command]], float]] = None,
        early_fraction: float = 0.5,
        salt: int = 0,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be at least 1, got {threshold}")
        if not 0.0 <= early_fraction <= 1.0:
            raise ValueError(
                f"early fraction must be in [0, 1], got {early_fraction}"
            )
        self.threshold = threshold
        self.cost_of = cost_of or default_command_cost
        self.early_fraction = early_fraction
        self.salt = salt

    def accept(
        self,
        rid: Rid,
        now: float,
        active_count: int,
        command: Optional[Command] = None,
    ) -> bool:
        cost = max(1.0, self.cost_of(command))
        if active_count + cost > self.threshold:
            self.last_reason = "cost-overflow"
            return False  # would overflow the remaining capacity
        fraction = active_count / self.threshold
        if cost <= 1.0 or fraction < self.early_fraction:
            self.last_reason = "accepted"
            return True
        # The more expensive the request and the fuller the replica,
        # the more likely an early rejection (1 at full load for an
        # infinitely expensive request).
        pressure = (fraction - self.early_fraction) / (1.0 - self.early_fraction)
        probability = pressure * (1.0 - 1.0 / cost)
        decision = request_hash_unit(rid[0], rid[1], self.salt) >= probability
        self.last_reason = "accepted" if decision else "cost-early"
        return decision


class AdaptiveThreshold(AcceptanceTest):
    """A self-tuning reject threshold (automating the paper's Section
    7.5 observation that RT can be chosen to target a desired latency).

    Wraps any threshold-based acceptance test and steers its
    ``threshold`` with an AIMD controller fed by the replica's *local*
    queueing delay (acceptance → execution), a signal every replica
    observes without coordination — in keeping with the collaborative,
    leaderless design:

    * observed delay above ``target_delay`` → multiplicative decrease;
    * delay comfortably below target while rejections are happening →
      additive increase (there is spare latency headroom).

    The threshold stays inside ``[min_threshold, max_threshold]``; the
    protocol's ``r_max`` accounting uses the configured maximum, so the
    implicit-GC window stays valid whatever the controller does.
    """

    def __init__(
        self,
        inner: AcceptanceTest,
        target_delay: float = 1.0e-3,
        min_threshold: int = 5,
        max_threshold: int = 200,
        interval: float = 0.25,
        decrease: float = 0.85,
        increase: int = 2,
    ):
        if not hasattr(inner, "threshold"):
            raise TypeError("adaptive control needs a threshold-based inner test")
        if target_delay <= 0:
            raise ValueError(f"target delay must be positive, got {target_delay}")
        if not 1 <= min_threshold <= max_threshold:
            raise ValueError(
                f"invalid threshold bounds [{min_threshold}, {max_threshold}]"
            )
        if not 0 < decrease < 1:
            raise ValueError(f"decrease factor must be in (0, 1), got {decrease}")
        self.inner = inner
        self.target_delay = target_delay
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.interval = interval
        self.decrease = decrease
        self.increase = increase
        self._controlled = min(max(inner.threshold, min_threshold), max_threshold)
        self.inner.threshold = self._controlled
        self._window_start: Optional[float] = None
        self._delay_sum = 0.0
        self._delay_count = 0
        self._rejected_in_window = 0
        # A hint received from the current leader caps the threshold for
        # hint_lifetime seconds (the leader sits deepest in the pipeline
        # and sees congestion the followers' local signals miss).
        self.hint_lifetime = 1.0
        self._hint: Optional[int] = None
        self._hint_time = -float("inf")
        self.adjustments: list[tuple[float, int]] = []

    @property
    def threshold(self) -> int:
        """The currently effective threshold (lives on the inner test)."""
        return self.inner.threshold

    @property
    def last_reason(self) -> str:
        """Reason of the inner test's most recent decision."""
        return self.inner.last_reason

    def threshold_hint(self) -> Optional[int]:
        return self._controlled

    def adopt_hint(self, hint: int, now: float) -> None:
        self._hint = max(self.min_threshold, min(hint, self.max_threshold))
        self._hint_time = now
        self._apply_effective(now)

    def _apply_effective(self, now: float) -> None:
        effective = self._controlled
        if self._hint is not None and now - self._hint_time < self.hint_lifetime:
            effective = min(effective, self._hint)
        self.inner.threshold = effective

    def accept(
        self,
        rid: Rid,
        now: float,
        active_count: int,
        command: Optional[Command] = None,
    ) -> bool:
        self._maybe_adjust(now)
        decision = self.inner.accept(rid, now, active_count, command)
        if not decision:
            self._rejected_in_window += 1
        return decision

    def observe_completion(self, queueing_delay: float) -> None:
        self._delay_sum += queueing_delay
        self._delay_count += 1

    def _maybe_adjust(self, now: float) -> None:
        if self._window_start is None:
            self._window_start = now
            return
        if now - self._window_start < self.interval:
            return
        if self._delay_count:
            mean_delay = self._delay_sum / self._delay_count
            controlled = self._controlled
            if mean_delay > self.target_delay:
                controlled = max(
                    self.min_threshold, int(controlled * self.decrease)
                )
            elif mean_delay < 0.7 * self.target_delay and self._rejected_in_window:
                controlled = min(self.max_threshold, controlled + self.increase)
            if controlled != self._controlled:
                self._controlled = controlled
                self.adjustments.append((now, controlled))
        self._apply_effective(now)
        self._window_start = now
        self._delay_sum = 0.0
        self._delay_count = 0
        self._rejected_in_window = 0


def default_command_cost(command: Optional[Command]) -> float:
    """Slot-equivalent cost estimate for the built-in KV operations."""
    if command is None:
        return 1.0
    if command.op is KvOp.SCAN:
        return float(max(1, command.scan_length))
    return 1.0


def make_acceptance_test(config) -> AcceptanceTest:
    """Build the acceptance test selected by an :class:`IdemConfig`."""
    if not config.rejection_enabled or config.acceptance == "always":
        return AlwaysAccept()
    if config.acceptance == "taildrop":
        return TailDrop(config.reject_threshold)
    if config.acceptance == "aqm":
        return AqmPriorityTest(
            config.reject_threshold,
            config.aqm_start_fraction,
            config.aqm_time_slice,
            config.reject_salt,
        )
    if config.acceptance == "cost":
        return CostAwareTest(config.reject_threshold, salt=config.reject_salt)
    if config.acceptance == "adaptive":
        inner = AqmPriorityTest(
            config.reject_threshold,
            config.aqm_start_fraction,
            config.aqm_time_slice,
            config.reject_salt,
        )
        return AdaptiveThreshold(
            inner,
            target_delay=config.adaptive_target_delay,
            min_threshold=config.adaptive_min_threshold,
            max_threshold=config.reject_threshold_cap,
        )
    raise ValueError(f"unknown acceptance test: {config.acceptance!r}")

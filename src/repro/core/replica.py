"""The IDEM replica (paper Sections 4 and 5).

Request flow:

1. A client multicasts its REQUEST to all replicas.
2. Each replica runs its local acceptance test.  Rejection sends an
   immediate REJECT to the client and caches the body; acceptance stores
   the request, occupies an *active slot* and sends the id to the leader
   in a (batched) REQUIRE.
3. The leader proposes an id once ``f + 1`` replicas required it, in
   id-based batches (PROPOSE).  Replicas COMMIT to everyone; an instance
   is committed with ``f + 1`` endorsements, the leader's proposal
   counting as one.
4. Replicas execute committed instances in sequence order, fetching
   missing bodies (FETCH / forward), and the leader replies.
5. Slots free on execution; the window advances by *implicit garbage
   collection*: observing sequence number ``s`` proves that ``f + 1``
   replicas executed everything up to ``s - n*r`` (Theorem 6.1).

The forwarding mechanism (Section 5.2) guarantees that a request
accepted by one correct replica is eventually executed everywhere:
delayed forwarding after 10 ms, a cache of recently rejected requests,
and on-demand fetching.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from repro.app.state_machine import StateMachine
from repro.core.acceptance import make_acceptance_test
from repro.core.config import IdemConfig
from repro.net.addresses import Address
from repro.net.network import Network
from repro.protocols.base import BaseReplica, Instance
from repro.protocols.messages import (
    Fetch,
    Forward,
    Propose,
    Reject,
    Request,
    RequireBatch,
    Rid,
)
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry
from repro.sim.timers import Timer


class ActiveRequest:
    """A request occupying one of this replica's active slots."""

    __slots__ = ("request", "accept_time", "forwarded")

    def __init__(self, request: Request, accept_time: float):
        self.request = request
        self.accept_time = accept_time
        self.forwarded = False


class IdemReplica(BaseReplica):
    """One IDEM replica."""

    def __init__(
        self,
        index: int,
        loop: EventLoop,
        network: Network,
        config: IdemConfig,
        state_machine: StateMachine,
        rng: RngRegistry,
    ):
        super().__init__(index, loop, network, config, state_machine, rng)
        self.config: IdemConfig = config
        self.acceptance = make_acceptance_test(config)
        # Accepted, not yet executed client requests (the slots).
        self.active: dict[Rid, ActiveRequest] = {}
        # Newest active rid per client, for stale-slot supersession.
        self._latest_active: dict[int, Rid] = {}
        # Bodies we own: active requests plus committed ones not yet
        # garbage collected (needed to serve FETCHes).
        self.request_store: dict[Rid, Request] = {}
        # Recently rejected requests (Section 5.2).
        self.rejected_cache: OrderedDict[Rid, Request] = OrderedDict()
        # Leader state: who required which id, and what was proposed.
        self.require_counts: dict[Rid, set[int]] = {}
        self._require_first_seen: dict[Rid, float] = {}
        self.proposed_rids: dict[Rid, int] = {}
        # REQUIRE batching.
        self._require_outbox: list[Rid] = []
        self._require_timer = Timer(loop, self._flush_requires)
        # Body fetching (rate limited per id).
        self._fetching: dict[Rid, float] = {}
        self._handlers.update(
            {
                RequireBatch: self._on_require_batch,
                Propose: self._on_propose,
                Forward: self._on_forward,
                Fetch: self._on_fetch,
            }
        )
        loop.call_after(config.forward_check_interval, self._forward_sweep)

    # ------------------------------------------------------------------
    # Client requests and the acceptance test
    # ------------------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Number of occupied active slots (``r_now`` in the paper)."""
        return len(self.active)

    def _probe_timers(self) -> tuple:
        return super()._probe_timers() + (self._require_timer,)

    def probe_state(self) -> dict[str, float]:
        state = super().probe_state()
        state["active_slots"] = float(len(self.active))
        threshold = getattr(self.acceptance, "threshold", None)
        if threshold is not None:
            state["admission_threshold"] = float(threshold)
        state["request_store"] = float(len(self.request_store))
        state["rejected_cache"] = float(len(self.rejected_cache))
        # Active entries the dedup check has killed (onr at or below the
        # client's executed operation number).  Invariantly transient:
        # _release_dedup_dead frees them on the client's next request,
        # so a sustained non-zero count is the active-slot leak
        # (the active_set_leak drift rule).
        executed_onr = self.executed_onr
        state["dead_slots"] = float(
            sum(
                1
                for rid in self.active
                if executed_onr.get(rid[0], 0) >= rid[1]
            )
        )
        return state

    def _on_request(self, src: Address, message: Request) -> None:
        self.stats["requests_seen"] += 1
        rid = message.rid
        if self._maybe_resend_reply(src, rid):
            return
        if rid in self.active or rid in self.request_store:
            # Duplicate (client retransmission over fair-loss links) of a
            # request we already hold: refresh the REQUIRE in case the
            # original was lost on the way to the leader.
            entry = self.active.get(rid)
            if (
                entry is not None
                and rid not in self.proposed_rids
                and rid not in self._require_outbox
            ):
                self._route_require(rid)
            return
        if self.acceptance.accept(
            rid, self.loop.now, len(self.active), message.command
        ):
            if self.obs is not None:
                self.obs.on_accept(
                    rid, len(self.active), getattr(self.acceptance, "threshold", None)
                )
            self._accept_request(message)
        else:
            self.stats["rejected"] += 1
            if self.obs is not None:
                self.obs.on_reject(
                    rid,
                    len(self.active),
                    getattr(self.acceptance, "threshold", None),
                    self.acceptance.last_reason,
                )
            self._release_dedup_dead(rid[0])
            self._cache_rejected(message)
            self.send(src, Reject(rid))

    def _accept_request(self, request: Request) -> None:
        """Occupy a slot for ``request`` and hand its id to the ordering stage."""
        rid = request.rid
        self.active[rid] = ActiveRequest(request, self.loop.now)
        self.request_store[rid] = request
        self.stats["accepted"] += 1
        self._supersede_stale_active(rid)
        self._release_dedup_dead(rid[0])
        self._route_require(rid)
        if not self._progress_timer.running:
            self._progress_timer.start()

    def _supersede_stale_active(self, rid: Rid) -> None:
        """A newer request from a client supersedes its older, still
        *unproposed* active entry (Section 4.3: the operation number
        distinguishes a client's latest request from older ones).  The
        superseded body moves to the rejected cache so a late proposal
        by another replica can still be served.  This bounds active-set
        growth during ordering stalls, when clients abandon operations
        and issue new ones faster than slots can drain.
        """
        cid, onr = rid
        previous = self._latest_active.get(cid)
        if previous is not None and previous[1] < onr:
            entry = self.active.get(previous)
            if entry is not None and previous not in self.proposed_rids:
                del self.active[previous]
                self.request_store.pop(previous, None)
                self._cache_rejected(entry.request)
        self._latest_active[cid] = rid

    def _release_dedup_dead(self, cid: int) -> None:
        """Free active slots of ``cid`` that the dedup check has killed.

        A request id with ``onr <= executed_onr[cid]`` can never execute
        again: ``_note_require`` and ``_resolve_bodies`` both skip it,
        so nothing will ever pop its active entry.  Supersession
        (:meth:`_supersede_stale_active`) only reclaims the client's
        single *previous unproposed* entry — it misses proposed-but-dead
        entries, and on a leader that is rejecting everything it never
        runs at all.  Under a reject-retry storm (each retry bumps
        ``onr``, executed elsewhere via forwards) the leaked slots pin
        the active set at the threshold permanently (the metastable
        wedge analysed in ``docs/RESILIENCE.md``).  Sweeping the
        client's dead entries on every request — accepted or rejected —
        closes the leak; bodies move to the rejected cache so a late
        proposal or fetch by another replica can still be served.
        """
        executed = self.executed_onr.get(cid, 0)
        if not executed:
            return
        dead = sorted(
            rid for rid in self.active if rid[0] == cid and rid[1] <= executed
        )
        for rid in dead:
            entry = self.active.pop(rid)
            self.request_store.pop(rid, None)
            self._cache_rejected(entry.request)

    def _route_require(self, rid: Rid) -> None:
        """Announce an accepted id to whoever orders it (the leader)."""
        if self.is_leader and self._vc_target is None:
            self._note_require(rid, self.index)
        else:
            self._require_outbox.append(rid)
            if len(self._require_outbox) >= self.config.require_batch_max:
                self._require_timer.cancel()
                self._flush_requires()
            elif not self._require_timer.running:
                self._require_timer.start(self.config.require_flush_delay)

    def _cache_rejected(self, request: Request) -> None:
        cache = self.rejected_cache
        cache[request.rid] = request
        while len(cache) > self.config.rejected_cache_size:
            cache.popitem(last=False)

    # ------------------------------------------------------------------
    # REQUIRE phase
    # ------------------------------------------------------------------

    def _flush_requires(self) -> None:
        if self.halted or not self._require_outbox:
            return
        if self._vc_target is not None:
            # Hold requires while the view change is in progress; they
            # are re-sent once the new view is installed.
            self._require_timer.start(self.config.require_flush_delay * 4)
            return
        batch = tuple(self._require_outbox)
        self._require_outbox.clear()
        self.send_to_leader(RequireBatch(batch))

    def _on_require_batch(self, src: Address, message: RequireBatch) -> None:
        if not self.is_leader or self._vc_target is not None:
            return  # the sender will re-require after the view change
        for rid in message.rids:
            self._note_require(rid, src.index)

    def _note_require(self, rid: Rid, replica_index: int) -> None:
        cid, onr = rid
        if self.executed_onr.get(cid, 0) >= onr:
            return
        if rid in self.proposed_rids:
            return
        supporters = self.require_counts.get(rid)
        if supporters is None:
            supporters = set()
            self.require_counts[rid] = supporters
            self._require_first_seen[rid] = self.loop.now
        supporters.add(replica_index)
        if len(supporters) >= self.config.quorum:
            del self.require_counts[rid]
            self._require_first_seen.pop(rid, None)
            self.proposed_rids[rid] = -1  # assigned a sqn at flush time
            self._queue_proposal(rid)

    # ------------------------------------------------------------------
    # PROPOSE phase (id-based batches)
    # ------------------------------------------------------------------

    def _flush_proposals(self) -> None:
        if self.halted or self._vc_target is not None or not self.is_leader:
            return
        config = self.config
        hint = self.acceptance.threshold_hint()
        while self._propose_queue and self._window_has_room():
            batch = tuple(self._propose_queue[: config.batch_max])
            del self._propose_queue[: len(batch)]
            sqn = self.next_sqn
            self.next_sqn = sqn + 1
            for rid in batch:
                self.proposed_rids[rid] = sqn
            self._open_instance(sqn, self.view, batch)
            if self.obs is not None:
                self.obs.on_propose(self.view, sqn, batch)
            self.multicast_peers(Propose(self.view, sqn, batch, hint))
            self.stats["proposals"] += 1
        if self._propose_queue and not self._batch_timer.running:
            # Window backpressure: retry once the window advances.
            self._batch_timer.start(config.batch_delay)
        if not self._progress_timer.running:
            self._progress_timer.start()

    def _on_propose(self, src: Address, message: Propose) -> None:
        if (
            message.threshold_hint is not None
            and src.index == self.leader_of(self.view)
        ):
            self.acceptance.adopt_hint(message.threshold_hint, self.loop.now)
        self._accept_proposal(message.view, message.sqn, message.rids)

    def _resend_proposal(self, dst: Address, instance: Instance) -> None:
        self.send(dst, Propose(instance.view, instance.sqn, instance.rids))

    # ------------------------------------------------------------------
    # Bodies: store, fetch, forward
    # ------------------------------------------------------------------

    def _resolve_bodies(self, instance: Instance) -> Optional[list[tuple[Rid, Request]]]:
        bodies: list[tuple[Rid, Request]] = []
        missing: list[Rid] = []
        for rid in instance.rids:
            request = self.request_store.get(rid)
            if request is None:
                request = self.rejected_cache.pop(rid, None)
                if request is not None:
                    # The group accepted a request we rejected: adopt it.
                    self.request_store[rid] = request
            if request is None:
                cid, onr = rid
                if self.executed_onr.get(cid, 0) >= onr:
                    continue  # duplicate; no body needed
                missing.append(rid)
            else:
                bodies.append((rid, request))
        if missing:
            self._fetch_bodies(missing)
            return None
        return bodies

    def _fetch_bodies(self, rids: list[Rid]) -> None:
        now = self.loop.now
        for rid in rids:
            last = self._fetching.get(rid, -1.0)
            if now - last < self.config.forward_timeout:
                continue
            self._fetching[rid] = now
            self.stats["fetches"] += 1
            if self.obs is not None:
                self.obs.on_fetch(rid)
            self.multicast_peers(Fetch(rid))

    def _on_fetch(self, src: Address, message: Fetch) -> None:
        rid = message.rid
        request = self.request_store.get(rid) or self.rejected_cache.get(rid)
        if request is not None:
            self.send(src, Forward(request))

    def _on_forward(self, src: Address, message: Forward) -> None:
        request = message.request
        rid = request.rid
        cid, onr = rid
        if self.executed_onr.get(cid, 0) >= onr:
            return
        if rid in self.request_store:
            return
        self._fetching.pop(rid, None)
        self.rejected_cache.pop(rid, None)
        if self.obs is not None:
            self.obs.on_adopt(rid)
        # Forwarded requests are accepted regardless of the current load
        # (Section 4.3); this may temporarily exceed the threshold.
        self._accept_request(request)
        self._try_execute()

    def _forward_sweep(self) -> None:
        """Periodic implementation of delayed forwarding (Section 5.2)."""
        if self.halted:
            return
        now = self.loop.now
        timeout = self.config.forward_timeout
        stale = [
            entry
            for entry in self.active.values()
            if not entry.forwarded and now - entry.accept_time > timeout
        ]
        for entry in stale:
            entry.forwarded = True
            self.stats["forwards"] += 1
            if self.obs is not None:
                self.obs.on_forward(entry.request.rid)
            self.multicast_peers(Forward(entry.request))
        # Prune require bookkeeping for ids that never reached a quorum
        # (e.g. the client aborted and every other replica rejected).
        expired = [
            rid
            for rid, first in self._require_first_seen.items()
            if now - first > 2.0
        ]
        for rid in expired:
            self.require_counts.pop(rid, None)
            self._require_first_seen.pop(rid, None)
        # Retry stalled executions (e.g. a lost Forward answer).
        self._try_execute()
        self.loop.call_after(self.config.forward_check_interval, self._forward_sweep)

    # ------------------------------------------------------------------
    # Execution, slots and implicit garbage collection
    # ------------------------------------------------------------------

    def _on_executed(self, rid: Rid, request: Request, result: Any) -> None:
        entry = self.active.pop(rid, None)  # free the slot
        if entry is not None:
            self.acceptance.observe_completion(self.loop.now - entry.accept_time)
        # Executing (cid, onr) dedup-kills every lower active entry of
        # the client; free them now rather than waiting for its next
        # request (which during think time can be a second away).
        self._release_dedup_dead(rid[0])
        if self.is_leader:
            self._reply_to_client(rid, result)
        else:
            self._record_reply(rid, result)

    def _has_outstanding_work(self) -> bool:
        return bool(self._unexecuted) or bool(self.active)

    def _advance_window(self, observed_sqn: int) -> None:
        """Implicit GC (Theorem 6.1): seeing ``observed_sqn`` proves that
        ``f + 1`` replicas executed everything up to ``observed_sqn - r_max``."""
        candidate = observed_sqn - self.config.r_max
        new_start = min(candidate + 1, self.exec_sqn + 1)
        if new_start <= self.window_start:
            return
        for sqn in range(self.window_start, new_start):
            instance = self.instances.pop(sqn, None)
            if instance is None:
                continue
            self._unexecuted.discard(sqn)
            for rid in instance.rids:
                self.request_store.pop(rid, None)
                self.proposed_rids.pop(rid, None)
        self.window_start = new_start

    def _gc_after_execute(self, sqn: int) -> None:
        # Executing an instance is itself an observation of its sequence
        # number; implicit GC replaces the base window truncation.
        self._advance_window(sqn)

    def _lag_threshold(self) -> int:
        # Implicit GC only retains r_max instances behind the newest
        # observed sequence number, so a replica further behind than
        # that can no longer recover proposals and needs a checkpoint.
        return self.config.r_max

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------

    def _after_state_transfer(self) -> None:
        # Drop active slots, stored bodies, leader bookkeeping and
        # pending fetches for requests the snapshot already covers —
        # without this a replica that catches up via checkpoint (e.g.
        # after recovering from a crash) keeps fetching and re-proposing
        # ids that are long executed.
        def covered(rid: Rid) -> bool:
            return self.executed_onr.get(rid[0], 0) >= rid[1]

        for rid in [r for r in self.active if covered(r)]:
            del self.active[rid]
        for rid in [r for r in self.request_store if covered(r)]:
            del self.request_store[rid]
        for rid in [r for r in self.proposed_rids if covered(r)]:
            del self.proposed_rids[rid]
        for rid in [r for r in self._fetching if covered(r)]:
            del self._fetching[rid]
        for rid in [r for r in self.require_counts if covered(r)]:
            del self.require_counts[rid]
            self._require_first_seen.pop(rid, None)

    def _after_view_installed(self) -> None:
        """Re-anchor leader bookkeeping and re-require active requests.

        Accepted requests whose REQUIREs reached only the old leader
        must be re-announced so the new leader can propose them.
        """
        self.require_counts.clear()
        self._require_first_seen.clear()
        self.proposed_rids = {
            rid: sqn
            for sqn, instance in self.instances.items()
            if not instance.executed
            for rid in instance.rids
        }
        self._require_outbox.clear()
        if self.is_leader:
            for rid in self.active:
                self._note_require(rid, self.index)
        else:
            self._require_outbox.extend(self.active)
            if self._require_outbox:
                self._require_timer.cancel()
                self._flush_requires()

    def crash(self) -> None:
        super().crash()
        self._require_timer.cancel()

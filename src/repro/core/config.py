"""IDEM protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.config import ProtocolConfig


@dataclass
class IdemConfig(ProtocolConfig):
    """Parameters of IDEM on top of the shared protocol configuration.

    Attributes
    ----------
    reject_threshold:
        ``r`` / ``RT`` from the paper: how many concurrently accepted
        client-issued requests each replica allows before rejecting.
        The evaluation's default is 50 (Section 7.1).
    rejection_enabled:
        ``False`` yields IDEM_noPR — the protocol with proactive
        rejection disabled, used as the overhead baseline.
    acceptance:
        Which acceptance test to run: ``"aqm"`` (the paper's prioritised
        active-queue-management test, Section 5.1), ``"taildrop"``
        (IDEM_noAQM), ``"cost"`` (admission weighted by estimated
        request cost — one of the paper's "further options") or
        ``"always"``.  Custom tests can be assigned directly to
        ``IdemReplica.acceptance``.
    aqm_start_fraction:
        Load fraction of ``reject_threshold`` at which AQM starts
        probabilistically rejecting non-prioritised clients (60%).
    aqm_time_slice:
        Duration of each prioritisation time slice (2 s in the paper).
    reject_salt:
        Seed of the shared pseudo-random function replicas use to reach
        (near-)unanimous rejection decisions.
    forward_timeout:
        Delayed forwarding: an accepted request is relayed to the other
        replicas if not executed within this time (10 ms, Section 7.1).
    forward_check_interval:
        Granularity of the sweep that implements the forward timeout.
    rejected_cache_size:
        How many recently rejected requests each replica caches to avoid
        fetches if the group accepts them anyway (Section 5.2).
    require_batch_max / require_flush_delay:
        REQUIRE messages carry batches of ids; a batch is flushed when
        full or after this delay.
    optimistic_client / optimistic_grace:
        Client strategy in the ambivalence state (Section 5.3): the
        optimistic client waits up to ``optimistic_grace`` (5 ms) after
        ``n - f`` rejections for a late reply before abandoning.
    """

    reject_threshold: int = 50
    rejection_enabled: bool = True
    acceptance: str = "aqm"
    aqm_start_fraction: float = 0.6
    aqm_time_slice: float = 2.0
    reject_salt: int = 0
    forward_timeout: float = 0.010
    forward_check_interval: float = 0.005
    rejected_cache_size: int = 2048
    require_batch_max: int = 64
    require_flush_delay: float = 100e-6
    optimistic_client: bool = True
    optimistic_grace: float = 0.005
    # Adaptive threshold control (acceptance="adaptive"): steer the
    # threshold so local queueing delay tracks this target, within
    # [adaptive_min_threshold, reject_threshold_cap].  The cap — not the
    # momentary threshold — defines r_max for implicit GC.
    adaptive_target_delay: float = 1.0e-3
    adaptive_min_threshold: int = 5
    reject_threshold_cap: int = 200

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.reject_threshold < 1:
            raise ValueError(
                f"reject threshold must be at least 1, got {self.reject_threshold}"
            )
        if not 0.0 <= self.aqm_start_fraction <= 1.0:
            raise ValueError(
                f"AQM start fraction must be in [0, 1], got {self.aqm_start_fraction}"
            )
        if self.window_size < self.r_max:
            raise ValueError(
                "window size must be at least n * reject_threshold "
                f"(= {self.r_max}) for implicit garbage collection, "
                f"got {self.window_size}"
            )

    @property
    def r_max(self) -> int:
        """Maximum concurrently active requests in the system: n * r.

        Under adaptive control the momentary threshold moves, so the
        bound uses the controller's cap.
        """
        per_replica = (
            self.reject_threshold_cap
            if self.acceptance == "adaptive"
            else self.reject_threshold
        )
        return self.n * per_replica

"""The finding record detlint checkers produce and reporters consume."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Finding:
    """One rule violation at one source location.

    ``source_line`` is the stripped text of the offending line; besides
    making reports readable it is the baseline's matching context, so
    suppressions survive line-number drift.
    """

    rule: str
    module: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""
    suppressed_by: Optional[str] = None  # "pragma" | "baseline" | None
    suppression_reason: str = ""

    @property
    def active(self) -> bool:
        """Whether this finding still fails the gate."""
        return self.suppressed_by is None

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_jsonable(self) -> dict:
        return {
            "rule": self.rule,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
            "suppressed_by": self.suppressed_by,
            "suppression_reason": self.suppression_reason,
        }


@dataclass
class CheckContext:
    """What a family checker gets to work with for one file."""

    module: str
    path: str
    lines: list[str] = field(default_factory=list)
    active_rules: set[str] = field(default_factory=set)

    def make(self, rule: str, node, message: str) -> Finding:
        """Build a finding anchored at an AST node."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        source = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule=rule,
            module=self.module,
            path=self.path,
            line=line,
            col=col,
            message=message,
            source_line=source,
        )

"""The detlint engine: walk files, run checkers, apply suppressions."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis import camp, config, det, perfrule, purity
from repro.analysis.baseline import PLACEHOLDER_REASON, Baseline
from repro.analysis.findings import CheckContext, Finding
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.rules import RULES

_FAMILY_CHECKERS = {
    "DET": det.check,
    "OBS": purity.check,
    "CAMP": camp.check,
    "PERF": perfrule.check,
}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)
    baseline: Baseline = field(default_factory=Baseline)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def pragma_suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by == "pragma"]

    @property
    def baseline_suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by == "baseline"]

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no active findings, no parse errors)."""
        return not self.active and not self.parse_errors


def module_name_for(path: Path) -> str:
    """Dotted module name of a source file, anchored at the ``repro`` dir."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return ".".join(parts[-1:]) if parts else str(path)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_file(
    path: Path,
    baseline: Baseline,
    module: Optional[str] = None,
    rules_filter: Optional[set[str]] = None,
) -> list[Finding]:
    """Lint one file; returns findings with suppression state applied."""
    source = Path(path).read_text(encoding="utf-8")
    return _lint_text(
        source,
        module or module_name_for(Path(path)),
        str(path),
        baseline,
        rules_filter,
    )


def lint_source(
    source: str,
    module: str,
    baseline: Optional[Baseline] = None,
    rules_filter: Optional[set[str]] = None,
) -> list[Finding]:
    """Lint a source string as dotted ``module`` (fixture-test entry)."""
    return _lint_text(
        source, module, f"<{module}>", baseline or Baseline(), rules_filter
    )


def _lint_text(
    source: str,
    module: str,
    path: str,
    baseline: Baseline,
    rules_filter: Optional[set[str]],
) -> list[Finding]:
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    active_rules = config.rules_for_module(module)
    if rules_filter is not None:
        active_rules &= rules_filter
    if not active_rules:
        return []
    context = CheckContext(
        module=module, path=path, lines=lines, active_rules=active_rules
    )
    findings: list[Finding] = []
    wanted_families = {RULES[rule_id].family for rule_id in active_rules}
    for family, checker in _FAMILY_CHECKERS.items():
        if family in wanted_families:
            findings.extend(checker(context, tree))
    findings.sort(key=Finding.sort_key)
    pragmas = parse_pragmas(lines)
    for finding in findings:
        pragma = pragmas.get(finding.line)
        if pragma is not None and pragma.covers(finding.rule):
            finding.suppressed_by = "pragma"
            finding.suppression_reason = pragma.reason
            continue
        entry = baseline.match(finding)
        if entry is not None:
            reason = entry.reason.strip()
            if not reason or reason == PLACEHOLDER_REASON:
                # A placeholder justification is no justification: the
                # entry suppresses nothing, the finding stays active,
                # and the gate fails hard until a real reason replaces
                # the "TODO" stamped by --update-baseline.
                continue
            finding.suppressed_by = "baseline"
            finding.suppression_reason = entry.reason
    return findings


def lint_paths(
    paths: Iterable[Path],
    baseline: Optional[Baseline] = None,
    rules_filter: Optional[set[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths``."""
    report = LintReport(baseline=baseline or Baseline())
    for path in iter_python_files(paths):
        try:
            report.findings.extend(
                lint_file(path, report.baseline, rules_filter=rules_filter)
            )
        except SyntaxError as error:
            report.parse_errors.append(f"{path}: {error}")
        report.files_scanned += 1
    report.findings.sort(key=Finding.sort_key)
    return report

"""The detlint engine: walk files, run checkers, apply suppressions.

v2 is project-wide: the tree is parsed once into a
:class:`~repro.analysis.index.ProjectIndex`, the per-module family
checkers (DET/OBS/CAMP/PROTO/PERF) run per file as before, and the
interprocedural pass (:mod:`repro.analysis.interproc`) chases calls
across modules for OBS005.  An optional :class:`LintCache` keyed on
module content hashes (plus the import-dependency closure) makes a warm
run over an unchanged tree re-analyse nothing.

Suppression (pragmas, baseline) is applied *after* analysis on every
run — cached entries hold raw findings only, so suppression edits never
need cache invalidation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis import camp, config, det, interproc, perfrule, proto, purity
from repro.analysis.baseline import PLACEHOLDER_REASON, Baseline
from repro.analysis.findings import CheckContext, Finding
from repro.analysis.incremental import LintCache
from repro.analysis.index import ProjectIndex, build_index
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.rules import RULES

_FAMILY_CHECKERS = {
    "DET": det.check,
    "OBS": purity.check,
    "CAMP": camp.check,
    "PROTO": proto.check,
    "PERF": perfrule.check,
}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)
    baseline: Baseline = field(default_factory=Baseline)
    #: Modules the engine actually ran checkers over this run.
    modules_analysed: list[str] = field(default_factory=list)
    #: Modules served whole from the incremental cache.
    modules_cached: list[str] = field(default_factory=list)
    #: Whether an incremental cache was in play (stats become meaningful).
    incremental: bool = False

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def pragma_suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by == "pragma"]

    @property
    def baseline_suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by == "baseline"]

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no active findings, no parse errors)."""
        return not self.active and not self.parse_errors


def module_name_for(path: Path) -> str:
    """Dotted module name of a source file.

    Anchored at the ``repro`` package dir; repo tooling under ``tools/``
    anchors there instead (``tools/overhead_guard.py`` ->
    ``tools.overhead_guard``) so scopes can address it.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("repro", "tools"):
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == anchor:
                return ".".join(parts[index:])
    return ".".join(parts[-1:]) if parts else str(path)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _module_findings(
    context: CheckContext, tree: ast.AST
) -> list[Finding]:
    """Raw per-module findings (no suppression state)."""
    findings: list[Finding] = []
    wanted_families = {RULES[rule_id].family for rule_id in context.active_rules}
    for family, checker in _FAMILY_CHECKERS.items():
        if family in wanted_families:
            findings.extend(checker(context, tree))
    return findings


def _apply_suppressions(
    findings: list[Finding], lines: list[str], baseline: Baseline
) -> None:
    """Mark findings suppressed by pragmas or justified baseline entries."""
    pragmas = parse_pragmas(lines)
    for finding in findings:
        pragma = pragmas.get(finding.line)
        if pragma is not None and pragma.covers(finding.rule):
            finding.suppressed_by = "pragma"
            finding.suppression_reason = pragma.reason
            continue
        entry = baseline.match(finding)
        if entry is not None:
            reason = entry.reason.strip()
            if not reason or reason == PLACEHOLDER_REASON:
                # A placeholder justification is no justification: the
                # entry suppresses nothing, the finding stays active,
                # and the gate fails hard until a real reason replaces
                # the "TODO" stamped by --update-baseline.
                continue
            finding.suppressed_by = "baseline"
            finding.suppression_reason = entry.reason


def _context_for(
    module: str, path: str, source: str, rules_filter: Optional[set[str]]
) -> Optional[CheckContext]:
    active_rules = config.rules_for_module(module)
    if rules_filter is not None:
        active_rules &= rules_filter
    if not active_rules:
        return None
    return CheckContext(
        module=module,
        path=path,
        lines=source.splitlines(),
        active_rules=active_rules,
    )


def _lint_index(
    index: ProjectIndex,
    baseline: Baseline,
    rules_filter: Optional[set[str]],
    cache: Optional[LintCache],
    report: LintReport,
) -> None:
    """Run the v2 pipeline over an already-built index into ``report``."""
    # rules_filter changes what a module's findings mean, so a filtered
    # run bypasses the cache entirely rather than poisoning it.
    use_cache = cache is not None and rules_filter is None
    names = sorted(index.modules)
    raw_by_module: dict[str, list[Finding]] = {}
    dirty: list[str] = []
    closures: dict[str, dict[str, str]] = {}
    for name in names:
        closure_hashes = {name: index.modules[name].content_hash}
        for dep in index.dep_closure(name):
            closure_hashes[dep] = index.modules[dep].content_hash
        closures[name] = closure_hashes
        cached = cache.lookup(name, closure_hashes) if use_cache else None
        if cached is not None:
            raw_by_module[name] = cached
            report.modules_cached.append(name)
        else:
            dirty.append(name)
    if dirty:
        # The cross-module pass needs summaries for *callees* of dirty
        # modules; the index holds every parsed module, so computing
        # facts over it once covers all of them.
        facts, summaries = interproc.analyse(index)
        for name in dirty:
            info = index.modules[name]
            context = _context_for(name, info.path, info.source, rules_filter)
            findings: list[Finding] = []
            if context is not None:
                findings = _module_findings(context, info.tree)
                findings.extend(
                    interproc.check_module(context, index, facts, summaries)
                )
                findings.sort(key=Finding.sort_key)
            raw_by_module[name] = findings
            report.modules_analysed.append(name)
            if use_cache:
                cache.store(name, closures[name], findings)
    if use_cache:
        cache.drop_missing(set(names))
        cache.save()
    for name in names:
        findings = raw_by_module.get(name, [])
        if findings:
            _apply_suppressions(
                findings, index.modules[name].source.splitlines(), baseline
            )
        report.findings.extend(findings)
    report.findings.sort(key=Finding.sort_key)


def lint_paths(
    paths: Iterable[Path],
    baseline: Optional[Baseline] = None,
    rules_filter: Optional[set[str]] = None,
    cache: Optional[LintCache] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` (the project entry point)."""
    report = LintReport(baseline=baseline or Baseline(), incremental=cache is not None)
    files = iter_python_files(paths)
    index, errors = build_index((module_name_for(path), path) for path in files)
    report.files_scanned = len(files)
    report.parse_errors.extend(errors)
    _lint_index(index, report.baseline, rules_filter, cache, report)
    return report


def lint_project(
    sources: dict[str, str],
    baseline: Optional[Baseline] = None,
    rules_filter: Optional[set[str]] = None,
) -> LintReport:
    """Lint in-memory ``{module: source}`` as one project (fixtures)."""
    report = LintReport(baseline=baseline or Baseline())
    index = ProjectIndex()
    for name, source in sources.items():
        try:
            index.add_source(name, source, f"<{name}>")
        except SyntaxError as error:
            report.parse_errors.append(f"<{name}>: {error}")
    report.files_scanned = len(sources)
    _lint_index(index, report.baseline, rules_filter, None, report)
    return report


def lint_file(
    path: Path,
    baseline: Baseline,
    module: Optional[str] = None,
    rules_filter: Optional[set[str]] = None,
) -> list[Finding]:
    """Lint one file in isolation (no cross-module context)."""
    source = Path(path).read_text(encoding="utf-8")
    return _lint_text(
        source,
        module or module_name_for(Path(path)),
        str(path),
        baseline,
        rules_filter,
    )


def lint_source(
    source: str,
    module: str,
    baseline: Optional[Baseline] = None,
    rules_filter: Optional[set[str]] = None,
) -> list[Finding]:
    """Lint a source string as dotted ``module`` (fixture-test entry).

    Runs the per-module checkers only; cross-module analysis needs
    :func:`lint_project` / :func:`lint_paths`.
    """
    return _lint_text(
        source, module, f"<{module}>", baseline or Baseline(), rules_filter
    )


def _lint_text(
    source: str,
    module: str,
    path: str,
    baseline: Baseline,
    rules_filter: Optional[set[str]],
) -> list[Finding]:
    tree = ast.parse(source, filename=path)
    context = _context_for(module, path, source, rules_filter)
    if context is None:
        return []
    findings = _module_findings(context, tree)
    findings.sort(key=Finding.sort_key)
    _apply_suppressions(findings, context.lines, baseline)
    return findings
